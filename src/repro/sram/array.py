"""The simulated SRAM bank.

An :class:`SRAMArray` is the analog-domain stand-in for the paper's physical
SRAM: every cell carries a static manufacturing mismatch, two NBTI aging
accumulators (one per inverter), and per-power-up noise.  The power-on state
of a cell is the sign of::

    offset = mismatch + dvth(aged while holding 0) - dvth(aged while holding 1)
    power_on = (offset + noise) > 0

so stressing a cell holding value ``v`` biases its future power-on state
toward ``~v`` — the paper's data-directed aging (§2.2), and the reason the
decoded payload is the *complement* of the power-on state (§4.3).

Time is explicit: callers advance it with :meth:`hold` (powered, holding
data — this is what ages cells), :meth:`shelve` (unpowered — this is what
lets aging recover), and :meth:`operate` (powered, running a write workload).

Capture engine
--------------

The receiver's hot path is §4.3's power-cycle/majority-vote loop, so the
array keeps two cache layers keyed on the aging state:

- The noise-free :meth:`offsets` vector is memoised and recomputed only when
  an aging event (``hold``/``operate``/``shelve``/external state mutation)
  changes it — repeated analysis reads are one cached-vector copy.
- Power-on sampling works from a *capture cache*: the expensive power-law
  ``k * t^n`` terms of both inverters plus a **noise band** — the cells whose
  offset lies within ``NOISE_TAIL_SIGMA`` noise sigmas of the decision
  threshold.  Cells outside the band power on to ``sign(offset)`` (the
  probability of a Gaussian draw beyond 8 sigma is ~6e-16, far below any
  observable error-rate resolution); only the band is re-evaluated per
  capture, with the exact logarithmic-recovery increment applied to its
  relax clocks.

Shelf gaps between captures are uniform across cells, so they are deferred
as one scalar (:meth:`repro.physics.nbti.NBTIState.flush_relax`) instead of
a full-array add.  A rigorous drift bound (the recovery increment is largest
for the least-relaxed cell) decides when accumulated shelf time has moved
out-of-band offsets enough to force a cache refresh, so arbitrarily long
capture sequences stay correct.  Code that mutates aging state behind the
array's back (e.g. snapshot restore) must call
:meth:`invalidate_analog_caches`.
"""

from __future__ import annotations

import math

import numpy as np

from .. import metrics, telemetry
from ..errors import ConfigurationError, PowerError
from ..bitutils import as_bit_array
from ..physics.hci import HCIModel
from ..physics.nbti import NBTIState
from ..rng import make_rng
from .remanence import RemanenceModel
from .technology import TechnologyProfile

#: Direct hot-path instrument: one attribute test while metrics stay
#: disabled (same contract as the telemetry null-span, docs/metrics.md).
_CAPTURE_CELLS_TOTAL = metrics.counter(
    "repro_capture_cells_total",
    "Cells evaluated across all power-on captures",
)


def _locked_shift(nbti, stress_seconds: np.ndarray) -> np.ndarray:
    """``k * t^n`` with zero-stress cells skipped.

    Elementwise-identical to ``nbti.dvth_unrecovered``: nonzero entries go
    through the same ``np.power`` call and scale, zero entries are exactly
    ``k * 0**n == 0.0``.  Skipping the zeros matters because the libm
    ``pow`` slow path for a zero base costs ~4x the finite-base path, and
    freshly staged banks are half zeros per inverter.
    """
    nz = np.flatnonzero(stress_seconds)
    if nz.size == stress_seconds.size:
        return nbti.k_scale * np.power(stress_seconds, nbti.time_exponent)
    full = np.zeros_like(stress_seconds)
    if nz.size:
        full[nz] = nbti.k_scale * np.power(
            stress_seconds[nz], nbti.time_exponent
        )
    return full


def _recovered_fraction(nbti, relax_seconds: np.ndarray):
    """``min(c * log1p(r/tau), ceiling)``; uniform clocks take a scalar.

    After a tray-wide stress every relax clock in a state is the same
    value, so one ``log1p`` stands in for the full-array pass — the
    subsequent broadcast multiplies are the same double operations the
    elementwise form performs.
    """
    lo = relax_seconds.min()
    if lo == relax_seconds.max():
        return np.minimum(
            nbti.rec_log_coeff * np.log1p(lo / nbti.rec_tau_s),
            nbti.rec_ceiling,
        )
    return np.minimum(
        nbti.rec_log_coeff * np.log1p(relax_seconds / nbti.rec_tau_s),
        nbti.rec_ceiling,
    )


class SRAMArray:
    """A bank of simulated 6T cells.

    Parameters
    ----------
    n_bits:
        Number of cells.
    technology:
        The :class:`TechnologyProfile` describing the cells' physics.
    rng:
        Seed or generator for process variation and power-up noise.
    row_width:
        Physical row width in cells; defines the 2-D die layout used for
        spatially correlated variation and Moran's I analysis.
    """

    #: Power-up noise is evaluated only for cells within this many noise
    #: sigmas of the decision threshold; everything further out powers on to
    #: the sign of its offset (tail probability ~6e-16 per cell per capture).
    NOISE_TAIL_SIGMA = 8.0

    #: Fraction of the current noise sigma that out-of-band offsets may
    #: drift (through deferred shelf-time recovery) before the capture cache
    #: is refreshed.  With the 8-sigma band this leaves a >7-sigma guard.
    OFFSET_DRIFT_BUDGET = 0.5

    def __init__(
        self,
        n_bits: int,
        technology: TechnologyProfile,
        *,
        rng: "int | np.random.Generator | None" = None,
        row_width: int = 256,
    ):
        if n_bits <= 0:
            raise ConfigurationError(f"n_bits must be positive, got {n_bits}")
        if row_width <= 0:
            raise ConfigurationError(f"row_width must be positive, got {row_width}")
        from ..physics.variation import sample_mismatch

        self._rng = make_rng(rng)
        self.technology = technology
        self.n_bits = int(n_bits)
        self.row_width = int(row_width)

        self.mismatch = sample_mismatch(
            n_bits,
            row_width=row_width,
            correlated_share=technology.correlated_share,
            coarse_tile=technology.coarse_tile,
            rng=self._rng,
        ).astype(np.float64)

        self._nbti = technology.nbti_model()
        self._accel = technology.acceleration_model()
        self._hci = HCIModel()
        self._remanence = RemanenceModel(
            technology.remanence_tau_s, temp_nominal_k=technology.temp_nominal_k
        )

        #: Aging accrued while the cell held 1 / held 0.
        self.age_when_1 = NBTIState.fresh(n_bits)
        self.age_when_0 = NBTIState.fresh(n_bits)

        self.powered = False
        self.vdd: float | None = None
        self.temp_k = technology.temp_nominal_k
        self.toggle_count = 0.0

        self._data: np.ndarray | None = None
        self._retained: np.ndarray | None = None
        self._off_seconds = 0.0

        #: Bumped on every stress event; both caches key on it.
        self._aging_epoch = 0
        self._offsets_cache: "tuple | None" = None
        self._capture_cache: "dict | None" = None

        #: Cheap always-on counters the telemetry layer snapshots around
        #: capture bursts: power-on samples taken, noise-band cells
        #: re-evaluated, and capture-cache rebuilds.  Plain int bumps —
        #: microseconds against millisecond-scale captures.
        self.capture_stats = {
            "captures": 0,
            "band_cells": 0,
            "cache_refreshes": 0,
        }

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_kib(
        cls,
        kib: float,
        technology: TechnologyProfile,
        *,
        rng: "int | np.random.Generator | None" = None,
        row_width: int = 256,
    ) -> "SRAMArray":
        """An array of ``kib`` KiB (8192 cells per KiB)."""
        return cls(int(kib * 8192), technology, rng=rng, row_width=row_width)

    @property
    def n_bytes(self) -> int:
        """Capacity in bytes."""
        return self.n_bits // 8

    # -- environment -----------------------------------------------------------

    def set_ambient(self, temp_k: float) -> None:
        """Set the ambient temperature (the thermal chamber knob).

        The new temperature is validated against the *live* operating point:
        a powered array at stress Vdd gets the (derated) envelope for that
        supply, not the nominal-supply envelope.
        """
        vdd = self.vdd if self.powered else self.technology.vdd_nominal
        self.technology.check_operating_point(vdd, temp_k)
        self.temp_k = float(temp_k)

    def set_voltage(self, vdd: float) -> None:
        """Change the supply voltage while powered (the supply knob)."""
        self._require_power()
        self.technology.check_operating_point(vdd, self.temp_k)
        self.vdd = float(vdd)

    # -- power events ------------------------------------------------------------

    def apply_power(self, vdd: "float | None" = None) -> np.ndarray:
        """Power the array up and return a copy of its power-on state.

        Cells whose charge survived the power gap (see
        :class:`RemanenceModel`) return their previous value instead of the
        true power-on state — the effect the paper's harness eliminates by
        draining the rail.
        """
        if self.powered:
            raise PowerError("array is already powered")
        vdd = self.technology.vdd_nominal if vdd is None else float(vdd)
        self.technology.check_operating_point(vdd, self.temp_k)

        state = self._sample_power_on()
        if self._retained is not None:
            keep = self._remanence.retained_mask(
                self.n_bits, self._off_seconds, self.temp_k, self._rng
            )
            state[keep] = self._retained[keep]
        self._retained = None
        self._off_seconds = 0.0

        self.powered = True
        self.vdd = vdd
        self._data = state
        return state.copy()

    def remove_power(self, *, drain: bool = True) -> None:
        """Cut power.  ``drain=True`` pulls the rail to ground, destroying
        remanence (the paper's measurement discipline, §5)."""
        self._require_power()
        self._retained = None if drain else self._data.copy()
        self._off_seconds = 0.0
        self.powered = False
        self.vdd = None
        self._data = None

    def power_cycle(
        self,
        *,
        off_seconds: float = 1.0,
        drain: bool = True,
        vdd: "float | None" = None,
    ) -> np.ndarray:
        """Cut power, wait ``off_seconds``, reapply, return the power-on
        state.  The off time counts as shelf time for aging recovery."""
        if self.powered:
            self.remove_power(drain=drain)
        self.shelve(off_seconds)
        return self.apply_power(vdd)

    def capture_power_on_states(
        self,
        n_captures: int,
        *,
        off_seconds: float = 1.0,
        drain: bool = True,
    ) -> np.ndarray:
        """Capture ``n_captures`` successive power-on states (§4.3's
        sampling loop); returns shape ``(n_captures, n_bits)``.

        Drained captures run on the batch path: one capture-cache pass plus
        a single ``(n_captures, band)`` noise draw.  The result is
        bit-identical to calling :meth:`power_cycle` ``n_captures`` times —
        one big Gaussian draw consumes the generator exactly like the
        equivalent sequence of per-capture draws.  Undrained captures (and a
        first capture that can still see remanence) fall back to the cycle
        path because the retained-cell masks interleave with the noise
        stream.
        """
        if n_captures <= 0:
            raise ConfigurationError(f"need at least one capture, got {n_captures}")
        with telemetry.trace(
            "sram.capture",
            n_bits=self.n_bits,
            n_captures=n_captures,
            drain=drain,
        ) as span:
            stats_before = dict(self.capture_stats)
            samples = np.empty((n_captures, self.n_bits), dtype=np.uint8)
            start = 0
            if drain and self._retained is not None:
                # Remanence from an earlier undrained power-off reaches into
                # the first capture only; take it the general way, then batch.
                samples[0] = self.power_cycle(off_seconds=off_seconds, drain=True)
                start = 1
            if drain:
                self._capture_batch_drained(samples, start, off_seconds)
            else:
                for i in range(start, n_captures):
                    samples[i] = self.power_cycle(
                        off_seconds=off_seconds, drain=False
                    )
            for key, before in stats_before.items():
                span.count(f"sram.{key}", self.capture_stats[key] - before)
            _CAPTURE_CELLS_TOTAL.inc(n_captures * self.n_bits)
            return samples

    # -- memory operations ----------------------------------------------------

    def write(self, bits: "np.ndarray | bytes", bit_offset: int = 0) -> None:
        """Store ``bits`` starting at ``bit_offset`` (digital write)."""
        self._require_power()
        bits = as_bit_array(bits)
        if bit_offset < 0 or bit_offset + bits.size > self.n_bits:
            raise ConfigurationError(
                f"write of {bits.size} bits at offset {bit_offset} exceeds "
                f"array size {self.n_bits}"
            )
        region = self._data[bit_offset : bit_offset + bits.size]
        self.toggle_count += float(np.count_nonzero(region != bits))
        region[...] = bits

    def fill(self, value: int) -> None:
        """Write a single logic value to every cell (the §5.1.2 workload)."""
        if value not in (0, 1):
            raise ConfigurationError(f"fill value must be 0 or 1, got {value}")
        self._require_power()
        self.toggle_count += float(np.count_nonzero(self._data != value))
        self._data[...] = value

    def read(self, n_bits: "int | None" = None, bit_offset: int = 0) -> np.ndarray:
        """Read stored bits (digital read; never disturbs the analog state)."""
        self._require_power()
        n_bits = self.n_bits - bit_offset if n_bits is None else n_bits
        if bit_offset < 0 or n_bits < 0 or bit_offset + n_bits > self.n_bits:
            raise ConfigurationError(
                f"read of {n_bits} bits at offset {bit_offset} exceeds "
                f"array size {self.n_bits}"
            )
        return self._data[bit_offset : bit_offset + n_bits].copy()

    # -- the passage of time ----------------------------------------------------

    def hold(self, seconds: float) -> None:
        """Remain powered, holding the current contents, for ``seconds``.

        This is the encoding primitive: the active inverter of every cell
        accrues NBTI stress at the current (Vdd, T) acceleration factor while
        the inactive inverter's recovery clock runs.
        """
        self._require_power()
        if seconds < 0:
            raise ConfigurationError(f"negative duration: {seconds}")
        if seconds == 0:
            return
        self.technology.check_operating_point(self.vdd, self.temp_k)
        af = self._accel.factor(self.vdd, self.temp_k)
        with telemetry.trace(
            "physics.stress",
            seconds=seconds,
            vdd=self.vdd,
            temp_k=self.temp_k,
            acceleration=af,
        ) as span:
            holding_1 = self._data.astype(np.float64)
            holding_0 = 1.0 - holding_1
            self._nbti.stress(self.age_when_1, af * seconds * holding_1)
            self._nbti.stress(self.age_when_0, af * seconds * holding_0)
            self._nbti.relax(self.age_when_1, seconds * holding_0)
            self._nbti.relax(self.age_when_0, seconds * holding_1)
            span.count("physics.stress_seconds_equivalent", af * seconds)
        self._bump_aging_epoch()

    def shelve(self, seconds: float) -> None:
        """Remain unpowered for ``seconds``: both inverters recover and any
        undrained remanence decays.

        The recovery increment is uniform across cells, so it is deferred as
        a scalar (O(1)) and folded into the per-cell clocks on demand.
        """
        if self.powered:
            raise PowerError("cannot shelve a powered array")
        if seconds < 0:
            raise ConfigurationError(f"negative duration: {seconds}")
        if seconds == 0:
            return
        self._nbti.relax_uniform(self.age_when_1, seconds)
        self._nbti.relax_uniform(self.age_when_0, seconds)
        if telemetry.active():
            telemetry.count("physics.relax_seconds", seconds)
        if self._retained is not None:
            self._off_seconds += seconds

    def operate(
        self,
        seconds: float,
        *,
        duty: float = 0.5,
        writes_per_second: float = 1e6,
    ) -> None:
        """Run a general-purpose write workload for ``seconds`` (§5.1.4).

        Each cell alternates values on sub-millisecond scales, so each
        inverter sees duty-scaled AC stress (no recovery re-lock) while its
        recovery clock advances only during the fraction of time it is
        unbiased.  The net effect — about half the natural-recovery rate plus
        negligible counter-stress — reproduces the paper's ~1.2x-per-week
        versus ~1.4x-per-week observation.
        """
        self._require_power()
        if seconds < 0:
            raise ConfigurationError(f"negative duration: {seconds}")
        if not 0.0 <= duty <= 1.0:
            raise ConfigurationError(f"duty must be in [0, 1], got {duty}")
        if seconds == 0:
            return
        self.technology.check_operating_point(self.vdd, self.temp_k)
        af = self._accel.factor(self.vdd, self.temp_k)
        with telemetry.trace(
            "physics.operate", seconds=seconds, duty=duty, acceleration=af
        ) as span:
            self._nbti.stress_ac(self.age_when_1, af * seconds * duty)
            self._nbti.stress_ac(self.age_when_0, af * seconds * duty)
            self._nbti.relax(self.age_when_1, seconds * (1.0 - duty))
            self._nbti.relax(self.age_when_0, seconds * (1.0 - duty))
            span.count("physics.ac_stress_seconds_equivalent", af * seconds * duty)
        # Cells toggle only while the workload is actually writing them.
        self.toggle_count += writes_per_second * seconds * duty
        self._bump_aging_epoch()
        # Contents after a random workload are whatever was last written;
        # callers that care write explicitly afterwards.

    # -- observables --------------------------------------------------------------

    def offsets(self) -> np.ndarray:
        """Noise-free effective offsets: positive means the cell prefers to
        power on to 1.  Diagnostic view of the analog domain.

        Memoised: recomputed only after aging state changes (stress, shelf
        time, external mutation); otherwise returns a copy of the cached
        vector.
        """
        return self._exact_offsets().copy()

    def grid_shape(self) -> tuple[int, int]:
        """Die layout ``(rows, row_width)`` used for spatial statistics."""
        return (-(-self.n_bits // self.row_width), self.row_width)

    # -- cache management ---------------------------------------------------------

    def invalidate_analog_caches(self) -> None:
        """Drop the offsets and capture caches.

        Required after mutating ``mismatch``, ``age_when_1``/``age_when_0``
        or ``toggle_count`` directly (e.g. restoring a snapshot); the
        array's own mutators invalidate automatically.
        """
        self._bump_aging_epoch()

    def _bump_aging_epoch(self) -> None:
        self._aging_epoch += 1
        self._offsets_cache = None
        self._capture_cache = None

    def _aging_key(self) -> tuple:
        st1, st0 = self.age_when_1, self.age_when_0
        return (
            self._aging_epoch,
            st1.pending_relax,
            st0.pending_relax,
            st1.flushes,
            st0.flushes,
        )

    def _exact_offsets(self) -> np.ndarray:
        """The offsets vector, memoised; callers must not mutate it."""
        cached = self._offsets_cache
        if cached is not None and cached[0] == self._aging_key():
            return cached[1]
        vec = (
            self.mismatch
            + self._nbti.dvth(self.age_when_0)
            - self._nbti.dvth(self.age_when_1)
        )
        # dvth() flushed any deferred relax; key on the post-flush state.
        self._offsets_cache = (self._aging_key(), vec)
        return vec

    def _effective_noise_sigma(self) -> float:
        sigma = self._hci.noise_widening(
            self.toggle_count, self.technology.noise_sigma
        )
        # Power-up noise is thermal: sigma scales as sqrt(T/Tnom), so a cold
        # capture is slightly cleaner and a hot one slightly noisier.
        return sigma * float(np.sqrt(self.temp_k / self.technology.temp_nominal_k))

    def _refresh_capture_cache(self, sigma: float) -> dict:
        """Rebuild the sampling cache at the current (flushed) aging state."""
        st1, st0 = self.age_when_1, self.age_when_0
        st1.flush_relax()
        st0.flush_relax()
        offs = self._exact_offsets()
        full1 = self._nbti.dvth_unrecovered(st1)
        full0 = self._nbti.dvth_unrecovered(st0)
        band = np.flatnonzero(np.abs(offs) < self.NOISE_TAIL_SIGMA * sigma)
        self._capture_cache = {
            "aging_epoch": self._aging_epoch,
            "flushes": (st1.flushes, st0.flushes),
            "sigma_ref": sigma,
            "decision_base": (offs > 0.0).astype(np.uint8),
            "band": band,
            "mismatch_b": self.mismatch[band],
            "full1_b": full1[band],
            "full0_b": full0[band],
            "r1_b": st1.relax_seconds[band],
            "r0_b": st0.relax_seconds[band],
            "r1_min": float(st1.relax_seconds.min()) if self.n_bits else 0.0,
            "r0_min": float(st0.relax_seconds.min()) if self.n_bits else 0.0,
            "full_max": float(full1.max()) + float(full0.max()),
        }
        self.capture_stats["cache_refreshes"] += 1
        return self._capture_cache

    def _capture_cache_valid(
        self, cache: "dict | None", sigma: float, extra_relax: float = 0.0
    ) -> bool:
        """True when sampling may keep using ``cache``.

        The cache was built at some flushed relax state; shelf time since
        then only *adds* recovery.  The recovery increment ``c*(log1p((r+p)/
        tau) - log1p(r/tau))`` is monotonically decreasing in ``r``, so the
        worst-case out-of-band offset drift is bounded by the least-relaxed
        cell's increment times the largest power-law magnitudes.  While that
        bound stays under ``OFFSET_DRIFT_BUDGET`` noise sigmas, out-of-band
        decisions cannot change (>7-sigma guard) and in-band cells — which
        are recomputed exactly every capture — need no refresh either.
        """
        if cache is None or cache["aging_epoch"] != self._aging_epoch:
            return False
        st1, st0 = self.age_when_1, self.age_when_0
        if (st1.flushes, st0.flushes) != cache["flushes"]:
            return False
        if sigma > cache["sigma_ref"] * (1.0 + 1e-12):
            return False
        if cache["full_max"] == 0.0:
            return True  # unstressed cells have nothing to recover
        nbti = self._nbti
        tau = nbti.rec_tau_s
        p1 = st1.pending_relax + extra_relax
        p0 = st0.pending_relax + extra_relax
        d1 = math.log1p((cache["r1_min"] + p1) / tau) - math.log1p(
            cache["r1_min"] / tau
        )
        d0 = math.log1p((cache["r0_min"] + p0) / tau) - math.log1p(
            cache["r0_min"] / tau
        )
        drift = nbti.rec_log_coeff * cache["full_max"] * max(d1, d0)
        return drift <= self.OFFSET_DRIFT_BUDGET * sigma

    def _band_decisions(
        self, cache: dict, sigma: float, noise: np.ndarray
    ) -> np.ndarray:
        """Exact power-on decisions for the noise-band cells.

        Applies the deferred recovery increment to the band's relax clocks
        and re-evaluates the same offset expression :meth:`offsets` uses —
        identical physics, restricted to the cells noise can actually flip.
        """
        nbti = self._nbti
        tau = nbti.rec_tau_s
        r1 = cache["r1_b"] + self.age_when_1.pending_relax
        r0 = cache["r0_b"] + self.age_when_0.pending_relax
        rec1 = np.minimum(nbti.rec_log_coeff * np.log1p(r1 / tau), nbti.rec_ceiling)
        rec0 = np.minimum(nbti.rec_log_coeff * np.log1p(r0 / tau), nbti.rec_ceiling)
        offs = (
            cache["mismatch_b"]
            + cache["full0_b"] * (1.0 - rec0)
            - cache["full1_b"] * (1.0 - rec1)
        )
        return (offs + sigma * noise > 0.0).astype(np.uint8)

    # -- internals -----------------------------------------------------------------

    def _sample_power_on(self) -> np.ndarray:
        sigma = self._effective_noise_sigma()
        cache = self._capture_cache
        if not self._capture_cache_valid(cache, sigma):
            cache = self._refresh_capture_cache(sigma)
        state = cache["decision_base"].copy()
        band = cache["band"]
        if band.size:
            noise = self._rng.standard_normal(band.size)
            state[band] = self._band_decisions(cache, sigma, noise)
        stats = self.capture_stats
        stats["captures"] += 1
        stats["band_cells"] += int(band.size)
        return state

    def _capture_batch_drained(
        self, samples: np.ndarray, start: int, off_seconds: float
    ) -> None:
        """Fill ``samples[start:]`` with drained power cycles.

        Bit-identical to the equivalent :meth:`power_cycle` sequence: the
        per-capture relax bookkeeping, cache-refresh schedule and noise
        consumption are the same — the only difference is that once the
        drift bound guarantees no mid-burst refresh, the remaining captures'
        noise is drawn in a single ``(remaining, band)`` call.
        """
        n = samples.shape[0]
        if start >= n:
            return
        vdd = self.technology.vdd_nominal
        st1, st0 = self.age_when_1, self.age_when_0
        nbti = self._nbti
        noise_block: "np.ndarray | None" = None
        block_row = 0
        for i in range(start, n):
            if self.powered:
                self.remove_power(drain=True)
            nbti.relax_uniform(st1, off_seconds)
            nbti.relax_uniform(st0, off_seconds)
            self.technology.check_operating_point(vdd, self.temp_k)
            sigma = self._effective_noise_sigma()
            cache = self._capture_cache
            if not self._capture_cache_valid(cache, sigma):
                cache = self._refresh_capture_cache(sigma)
                noise_block, block_row = None, 0
            band = cache["band"]
            if (
                noise_block is None
                and band.size
                and i < n - 1
                and self._capture_cache_valid(
                    cache, sigma, extra_relax=(n - 1 - i) * off_seconds
                )
            ):
                # No refresh can occur for the rest of the burst: hoist the
                # remaining captures' noise into one draw (stream-order
                # identical to per-capture draws).
                noise_block = self._rng.standard_normal((n - i, band.size))
                block_row = 0
            row = samples[i]
            row[...] = cache["decision_base"]
            if band.size:
                if noise_block is not None:
                    noise = noise_block[block_row]
                    block_row += 1
                else:
                    noise = self._rng.standard_normal(band.size)
                row[band] = self._band_decisions(cache, sigma, noise)
            stats = self.capture_stats
            stats["captures"] += 1
            stats["band_cells"] += int(band.size)
            self.powered = True
            self.vdd = vdd
        self._data = samples[n - 1].copy()

    # -- fleet capture (repro.core.fleetcapture) --------------------------------

    def _fleet_refresh_capture_cache(self, sigma: float) -> dict:
        """Rebuild the capture cache with the fleet kernel's shared-term math.

        Contents are bit-identical to :meth:`_refresh_capture_cache`: the
        power-law magnitude ``k * t^n`` is evaluated once per inverter and
        shared between the offsets and the locked-in values — the same
        composition :meth:`NBTIModel.dvth` uses — zero-stress cells skip the
        ``t^n`` ufunc (``0**n == 0`` exactly), and uniform relax clocks
        collapse the recovered fraction to one scalar (the per-element
        double operations are unchanged).  tests/sram/test_fleet_capture.py
        pins the equality against the reference rebuild.
        """
        st1, st0 = self.age_when_1, self.age_when_0
        st1.flush_relax()
        st0.flush_relax()
        nbti = self._nbti
        full1 = _locked_shift(nbti, st1.stress_seconds)
        full0 = _locked_shift(nbti, st0.stress_seconds)
        offs = (
            self.mismatch
            + full0 * (1.0 - _recovered_fraction(nbti, st0.relax_seconds))
            - full1 * (1.0 - _recovered_fraction(nbti, st1.relax_seconds))
        )
        self._offsets_cache = (self._aging_key(), offs)
        band = np.flatnonzero(np.abs(offs) < self.NOISE_TAIL_SIGMA * sigma)
        self._capture_cache = {
            "aging_epoch": self._aging_epoch,
            "flushes": (st1.flushes, st0.flushes),
            "sigma_ref": sigma,
            "decision_base": (offs > 0.0).astype(np.uint8),
            "band": band,
            "mismatch_b": self.mismatch[band],
            "full1_b": full1[band],
            "full0_b": full0[band],
            "r1_b": st1.relax_seconds[band],
            "r0_b": st0.relax_seconds[band],
            "r1_min": float(st1.relax_seconds.min()) if self.n_bits else 0.0,
            "r0_min": float(st0.relax_seconds.min()) if self.n_bits else 0.0,
            "full_max": float(full1.max()) + float(full0.max()),
        }
        self.capture_stats["cache_refreshes"] += 1
        return self._capture_cache

    def plan_fleet_capture(
        self,
        n_captures: int,
        off_seconds: float = 1.0,
        *,
        vdd: "float | None" = None,
    ) -> "dict | None":
        """Stage this array's slice of a fleet-stacked capture burst.

        Validates the operating point, performs the same capture-cache
        refresh (and deferred-relax flush) the burst's first per-capture
        loop iteration would, and — when the drift bound guarantees no
        mid-burst refresh — returns the stacking record the fleet kernel
        concatenates: the cached band arrays, the noise sigma, and both
        inverters' per-capture ``pending_relax`` trajectories (accumulated
        float-by-float exactly as ``n_captures`` deferred shelf gaps
        would).  Returns ``None`` when the burst cannot be guaranteed
        refresh-free, the array is powered, or remanence could reach the
        first capture; callers then take the exact per-capture loop, which
        is bit-identical either way.
        """
        if n_captures < 1:
            raise ConfigurationError(
                f"need at least one capture, got {n_captures}"
            )
        if self.powered or self._retained is not None:
            return None
        vdd = self.technology.vdd_nominal if vdd is None else float(vdd)
        self.technology.check_operating_point(vdd, self.temp_k)
        off = float(off_seconds)
        sigma = self._effective_noise_sigma()
        cache = self._capture_cache
        if not self._capture_cache_valid(cache, sigma):
            cache = self._fleet_refresh_capture_cache(sigma)
        if not self._capture_cache_valid(
            cache, sigma, extra_relax=(n_captures - 1) * off
        ):
            return None
        p1 = self.age_when_1.pending_relax
        p0 = self.age_when_0.pending_relax
        pend1, pend0 = [], []
        for _ in range(n_captures):
            pend1.append(p1)
            pend0.append(p0)
            p1 += off  # relax_uniform's exact scalar accumulation
            p0 += off
        nbti = self._nbti
        return {
            "cache": cache,
            "sigma": sigma,
            "pend1": pend1,
            "pend0": pend0,
            "tau": nbti.rec_tau_s,
            "coeff": nbti.rec_log_coeff,
            "ceiling": nbti.rec_ceiling,
        }

    def commit_fleet_capture(
        self, n_captures: int, off_seconds: float, band_size: int
    ) -> None:
        """Apply the state the equivalent per-capture loop would have left.

        Each capture's power-down advances both recovery clocks by
        ``off_seconds`` — deferred scalar adds, applied one capture at a
        time so the accumulated ``pending_relax`` floats match the loop's
        trajectory bit-for-bit — and the capture stats advance by the
        whole burst.
        """
        st1, st0 = self.age_when_1, self.age_when_0
        nbti = self._nbti
        for _ in range(n_captures):
            nbti.relax_uniform(st1, off_seconds)
            nbti.relax_uniform(st0, off_seconds)
        if telemetry.active():
            telemetry.count(
                "physics.relax_seconds", n_captures * float(off_seconds)
            )
        stats = self.capture_stats
        stats["captures"] += n_captures
        stats["band_cells"] += n_captures * int(band_size)

    def _require_power(self) -> None:
        if not self.powered:
            raise PowerError("array is not powered")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.powered else "off"
        return (
            f"SRAMArray({self.n_bits} bits, {self.technology.name}, power {state})"
        )
