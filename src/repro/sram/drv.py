"""Data Retention Voltage (DRV) modelling.

The paper's background cites DRV fingerprinting (Holcomb et al., its refs
[18, 19]): every cell has a minimum supply voltage below which it can no
longer hold data, and the per-cell DRV spectrum is another analog-domain
fingerprint.  The model ties DRV to the same mismatch that decides the
power-on race — symmetric cells retain to lower voltages; heavily
mismatched cells fail earlier and collapse toward their preferred state.

Two uses in this library:

- :func:`retention_failures` — which cells lose their data when the rail
  droops to ``vdd_hold`` (brown-out behaviour for the supply model);
- :func:`drv_fingerprint` — the binary fingerprint "does cell i retain at
  test voltage V*", an alternative identifier to the power-on state.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .array import SRAMArray


def cell_drv(
    array: SRAMArray,
    *,
    drv_nominal_fraction: float = 0.35,
    drv_spread_fraction: float = 0.08,
) -> np.ndarray:
    """Per-cell data retention voltage (volts).

    ``DRV_i = Vnom * (f0 + f1 * |offset_i|)``: a balanced cell holds data
    down to ~f0 of nominal; mismatch (manufacturing plus aging skew) raises
    the retention floor because the weak side gives up sooner.
    """
    if not 0 < drv_nominal_fraction < 1:
        raise ConfigurationError("drv_nominal_fraction must be in (0, 1)")
    if drv_spread_fraction < 0:
        raise ConfigurationError("drv_spread_fraction must be >= 0")
    vnom = array.technology.vdd_nominal
    return vnom * (
        drv_nominal_fraction + drv_spread_fraction * np.abs(array.offsets())
    )


def retention_failures(
    array: SRAMArray, vdd_hold: float, **drv_kwargs
) -> np.ndarray:
    """Boolean mask of cells that cannot hold data at ``vdd_hold``.

    A failing cell collapses to its power-on preference (the race winner),
    losing whatever was stored.
    """
    if vdd_hold < 0:
        raise ConfigurationError("hold voltage must be >= 0")
    return cell_drv(array, **drv_kwargs) > vdd_hold


def apply_brownout(array: SRAMArray, vdd_hold: float, **drv_kwargs) -> int:
    """Droop the rail to ``vdd_hold`` while data is held: failing cells
    collapse to their preferred power-on value.  Returns the number of
    cells that lost their data.  The array must be powered."""
    if not array.powered:
        from ..errors import PowerError

        raise PowerError("brown-out needs a powered array holding data")
    failures = retention_failures(array, vdd_hold, **drv_kwargs)
    if not failures.any():
        return 0
    preferred = (array.offsets() > 0).astype(np.uint8)
    data = array.read()
    data[failures] = preferred[failures]
    array.write(data)
    return int(failures.sum())


def drv_fingerprint(array: SRAMArray, test_voltage: float, **drv_kwargs) -> np.ndarray:
    """The DRV fingerprint: bit i is 1 iff cell i retains at
    ``test_voltage`` (refs [18, 19]'s identifier)."""
    if test_voltage <= 0:
        raise ConfigurationError("test voltage must be positive")
    return (~retention_failures(array, test_voltage, **drv_kwargs)).astype(np.uint8)
