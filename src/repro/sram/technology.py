"""Per-technology SRAM parameter sets.

A :class:`TechnologyProfile` bundles everything the simulator needs to know
about one silicon process + device family: nominal and absolute-maximum
operating points, the mismatch/noise magnitudes of its cells, and the NBTI
constants calibrated against the paper's measurements (see
:mod:`repro.sram.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError, OverstressError
from ..physics.acceleration import AccelerationModel
from ..physics.constants import (
    NBTI_ACTIVATION_ENERGY_EV,
    NBTI_TIME_EXPONENT,
    NBTI_VOLTAGE_EXPONENT,
    NOMINAL_TEMP_K,
)
from ..physics.nbti import NBTIModel


@dataclass(frozen=True)
class TechnologyProfile:
    """Analog-domain parameters of one SRAM technology.

    All mismatch-related quantities are in *normalized sigma units*: the
    per-cell mismatch offset is N(0, 1) and NBTI shifts are expressed on the
    same scale.
    """

    name: str
    node_nm: float
    vdd_nominal: float
    vdd_abs_max: float
    temp_nominal_k: float = NOMINAL_TEMP_K
    temp_abs_max_k: float = NOMINAL_TEMP_K + 100.0

    #: Per-power-up thermal noise sigma; cells with |offset| below a few
    #: noise sigmas are the paper's "noisy" cells that majority voting
    #: filters (§4.3).
    noise_sigma: float = 0.05

    #: Variance share of the spatially correlated mismatch component
    #: (wafer gradient); sets the unstressed Moran's I (~0.01, Table 2).
    correlated_share: float = 0.01
    coarse_tile: int = 8

    #: NBTI constants (normalized-sigma scale); see calibration module.
    nbti_k_scale: float = 1.0e-6
    nbti_time_exponent: float = NBTI_TIME_EXPONENT
    nbti_rec_ceiling: float = 0.35
    nbti_rec_log_coeff: float = 0.055
    nbti_rec_tau_s: float = 86400.0

    #: Acceleration-law constants.
    voltage_exponent: float = NBTI_VOLTAGE_EXPONENT
    activation_energy_ev: float = NBTI_ACTIVATION_ENERGY_EV

    #: Data-remanence time constant at nominal temperature (seconds): how
    #: long a cell holds its value without power before decaying.
    remanence_tau_s: float = 0.25

    #: Joint (Vdd, T) envelope derating: every volt of overdrive above
    #: nominal lowers the absolute-maximum temperature by this many kelvin.
    #: Datasheets publish exactly this kind of safe-operating-area corner;
    #: zero (the default) keeps the independent V/T limits.
    derate_k_per_v: float = 0.0

    def __post_init__(self) -> None:
        if self.vdd_nominal <= 0:
            raise ConfigurationError(f"{self.name}: nominal Vdd must be positive")
        if self.vdd_abs_max < self.vdd_nominal:
            raise ConfigurationError(
                f"{self.name}: abs-max Vdd below nominal "
                f"({self.vdd_abs_max} < {self.vdd_nominal})"
            )
        if self.noise_sigma < 0:
            raise ConfigurationError(f"{self.name}: noise sigma must be >= 0")
        if not 0 <= self.correlated_share < 1:
            raise ConfigurationError(f"{self.name}: correlated share out of range")
        if self.remanence_tau_s <= 0:
            raise ConfigurationError(f"{self.name}: remanence tau must be positive")
        if self.derate_k_per_v < 0:
            raise ConfigurationError(f"{self.name}: derating must be >= 0")

    # -- derived models -------------------------------------------------------

    def acceleration_model(self) -> AccelerationModel:
        """The aging-acceleration law for this technology."""
        return AccelerationModel(
            vdd_nominal=self.vdd_nominal,
            temp_nominal_k=self.temp_nominal_k,
            voltage_exponent=self.voltage_exponent,
            activation_energy_ev=self.activation_energy_ev,
        )

    def nbti_model(self) -> NBTIModel:
        """The NBTI stress/recovery law for this technology."""
        return NBTIModel(
            k_scale=self.nbti_k_scale,
            time_exponent=self.nbti_time_exponent,
            rec_ceiling=self.nbti_rec_ceiling,
            rec_log_coeff=self.nbti_rec_log_coeff,
            rec_tau_s=self.nbti_rec_tau_s,
        )

    def temp_max_k(self, vdd: float) -> float:
        """Absolute-maximum temperature at supply ``vdd`` after derating."""
        overdrive = max(0.0, vdd - self.vdd_nominal)
        return self.temp_abs_max_k - self.derate_k_per_v * overdrive

    def check_operating_point(self, vdd: float, temp_k: float) -> None:
        """Raise :class:`OverstressError` outside absolute maximum ratings.

        The temperature limit is the *derated* one for the given supply, so
        a (stress-Vdd, high-T) corner that each axis alone would allow can
        still be rejected.
        """
        if vdd <= 0:
            raise ConfigurationError(f"Vdd must be positive, got {vdd}")
        if temp_k <= 0:
            raise ConfigurationError(f"temperature must be positive, got {temp_k}")
        if vdd > self.vdd_abs_max:
            raise OverstressError(
                f"{self.name}: {vdd} V exceeds absolute maximum "
                f"{self.vdd_abs_max} V"
            )
        temp_limit = self.temp_max_k(vdd)
        if temp_k > temp_limit:
            detail = (
                f" (derated from {self.temp_abs_max_k} K at {vdd} V)"
                if temp_limit < self.temp_abs_max_k
                else ""
            )
            raise OverstressError(
                f"{self.name}: {temp_k} K exceeds absolute maximum "
                f"{temp_limit} K{detail}"
            )

    def with_k_scale(self, k_scale: float) -> "TechnologyProfile":
        """Copy of this profile with a different NBTI magnitude (used by the
        calibration helpers and by device-to-device variation)."""
        return replace(self, nbti_k_scale=k_scale)
