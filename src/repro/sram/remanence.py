"""SRAM data remanence.

A powered-off SRAM cell holds its charge for a short while; power-cycling
too quickly returns the *previous contents* rather than the true power-on
state.  The paper's harness eliminates this by driving the supply to ground
(§5); the simulator models it so that the harness has something real to
eliminate and so tests can demonstrate why draining matters.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..physics.constants import BOLTZMANN_EV, NOMINAL_TEMP_K


class RemanenceModel:
    """Per-cell exponential charge decay while unpowered.

    The probability that a cell still remembers its pre-power-off value
    after ``t`` unpowered seconds is ``exp(-t / tau(T))``; leakage roughly
    doubles every ~10 C, captured by an Arrhenius factor on ``tau``.
    """

    def __init__(
        self,
        tau_nominal_s: float,
        *,
        temp_nominal_k: float = NOMINAL_TEMP_K,
        leakage_activation_ev: float = 0.6,
    ):
        if tau_nominal_s <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau_nominal_s}")
        if temp_nominal_k <= 0:
            raise ConfigurationError("nominal temperature must be positive")
        if leakage_activation_ev < 0:
            raise ConfigurationError("activation energy must be >= 0")
        self.tau_nominal_s = tau_nominal_s
        self.temp_nominal_k = temp_nominal_k
        self.leakage_activation_ev = leakage_activation_ev

    def tau(self, temp_k: float) -> float:
        """Retention time constant at ``temp_k`` (hotter leaks faster)."""
        if temp_k <= 0:
            raise ConfigurationError("temperature must be positive")
        exponent = (
            self.leakage_activation_ev
            / BOLTZMANN_EV
            * (1.0 / temp_k - 1.0 / self.temp_nominal_k)
        )
        return self.tau_nominal_s * float(np.exp(exponent))

    def retention_probability(
        self, off_seconds: "float | np.ndarray", temp_k: float
    ) -> "float | np.ndarray":
        """Probability a cell retains its value after ``off_seconds``.

        ``off_seconds`` may be a scalar or an array of gap lengths; the
        return type matches.
        """
        off = np.asarray(off_seconds, dtype=np.float64)
        if np.any(off < 0):
            raise ConfigurationError("off time must be >= 0")
        p = np.exp(-off / self.tau(temp_k))
        return float(p) if np.ndim(off_seconds) == 0 else p

    def retained_mask(
        self,
        n_cells: int,
        off_seconds: float,
        temp_k: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boolean mask of cells that kept their value across the power gap."""
        p = self.retention_probability(off_seconds, temp_k)
        if p <= 0.0:
            return np.zeros(n_cells, dtype=bool)
        if p >= 1.0:
            return np.ones(n_cells, dtype=bool)
        return rng.random(n_cells) < p

    def retained_masks(
        self,
        n_cells: int,
        off_seconds: float,
        temp_k: float,
        rng: np.random.Generator,
        n_gaps: int,
    ) -> np.ndarray:
        """``(n_gaps, n_cells)`` retention masks for a burst of equal gaps.

        Row ``i`` is bit-identical to the ``i``-th of ``n_gaps`` sequential
        :meth:`retained_mask` calls on the same generator — ``rng.random``
        fills a 2-D array in row-major stream order — so batch consumers can
        pre-draw a capture sequence's remanence without perturbing
        reproducibility.
        """
        if n_gaps <= 0:
            raise ConfigurationError(f"need at least one gap, got {n_gaps}")
        p = self.retention_probability(off_seconds, temp_k)
        if p <= 0.0:
            return np.zeros((n_gaps, n_cells), dtype=bool)
        if p >= 1.0:
            return np.ones((n_gaps, n_cells), dtype=bool)
        return rng.random((n_gaps, n_cells)) < p
