"""The SRAM analog-domain simulator.

This package is the substitution for the paper's physical devices: a bank of
6T cells whose power-on state is decided by a race between per-cell
manufacturing mismatch, accumulated NBTI skew, and per-power-up thermal
noise (paper §2).  See DESIGN.md §2 for the substitution argument and
:mod:`repro.sram.calibration` for how the constants are anchored to the
paper's measured error rates.
"""

from .array import SRAMArray
from .calibration import solve_k_scale
from .remanence import RemanenceModel
from .technology import TechnologyProfile

__all__ = ["SRAMArray", "RemanenceModel", "TechnologyProfile", "solve_k_scale"]
