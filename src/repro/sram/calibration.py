"""Calibration of NBTI constants against the paper's measurements.

CALIBRATION NOTE (referenced from DESIGN.md §4)
-----------------------------------------------

The observable in Invisible Bits is not a raw threshold-voltage shift but the
*digitized outcome of the power-up race*: a cell encodes its target bit once
the aging skew ``D(t)`` exceeds its manufacturing mismatch ``m ~ N(0, 1)``.
A device stressed holding one value for time ``t`` at conditions with
acceleration factor ``af`` therefore shows bit error rate::

    error(t) = P(m > D(af * t)) = Phi(-k * (af * t)^n)

The paper reports that error falls roughly logarithmically in stress time
over 2-10 h (Figure 6) and gives one (stress condition, time, bit rate)
anchor per device (Table 4).  Fitting ``Phi(-k t^n)`` to the MSP432 curve's
end points (≈33% at 2 h, 6.5% at 10 h) yields an *effective* exponent
``n ≈ 0.75`` — larger than the textbook reaction-diffusion NBTI exponent
(~0.16-0.25) because the race observable compounds the raw shift with the
race's load-line slope.  We therefore calibrate ``n`` on the observable and
solve ``k`` per device from its Table 4 anchor with
:func:`solve_k_scale`.

Recovery constants come from Figure 7: error grows ≈1.4x after one week,
≈1.6x after one month and ≈2.0x at 14 weeks of shelving, logarithmic in
time.  With ``f_rec(t) = c * ln(1 + t / tau)``, ``tau`` = 1 day and
``c = 0.055`` reproduce those three points within a few percent (see
tests/sram/test_calibration.py).
"""

from __future__ import annotations

import math

from scipy.stats import norm

from ..errors import ConfigurationError
from ..physics.acceleration import AccelerationModel
from ..units import celsius_to_kelvin
from .technology import TechnologyProfile


def error_to_shift(target_error: float) -> float:
    """Aging shift (normalized sigma units) that yields ``target_error``.

    Inverse of ``error = Phi(-D)``; only errors below 50% are reachable by
    aging (a fresh device already sits at 50%).
    """
    if not 0.0 < target_error < 0.5:
        raise ConfigurationError(
            f"target error must be in (0, 0.5), got {target_error}"
        )
    return float(-norm.ppf(target_error))


def shift_to_error(shift: float) -> float:
    """Predicted single-copy bit error rate for an aging shift ``shift``."""
    if shift < 0:
        raise ConfigurationError(f"shift must be >= 0, got {shift}")
    return float(norm.cdf(-shift))


def solve_k_scale(
    target_error: float,
    *,
    vdd_stress: float,
    temp_stress_c: float,
    stress_seconds: float,
    vdd_nominal: float,
    time_exponent: float,
    voltage_exponent: float,
    activation_energy_ev: float,
    temp_nominal_k: "float | None" = None,
) -> float:
    """Solve the NBTI magnitude ``k`` from one measured anchor point.

    Given that stressing at (``vdd_stress``, ``temp_stress_c``) for
    ``stress_seconds`` produced single-copy error ``target_error`` (Table 4
    reports these per device), return the ``k`` for which
    ``Phi(-k * (af * t)^n)`` hits the anchor exactly.
    """
    if stress_seconds <= 0:
        raise ConfigurationError("anchor stress time must be positive")
    kwargs = {} if temp_nominal_k is None else {"temp_nominal_k": temp_nominal_k}
    accel = AccelerationModel(
        vdd_nominal=vdd_nominal,
        voltage_exponent=voltage_exponent,
        activation_energy_ev=activation_energy_ev,
        **kwargs,
    )
    eq_seconds = accel.equivalent_seconds(
        vdd_stress, celsius_to_kelvin(temp_stress_c), stress_seconds
    )
    return error_to_shift(target_error) / eq_seconds**time_exponent


def calibrate_profile(
    profile: TechnologyProfile,
    *,
    target_error: float,
    vdd_stress: float,
    temp_stress_c: float,
    stress_seconds: float,
) -> TechnologyProfile:
    """Return ``profile`` with its ``nbti_k_scale`` solved from an anchor."""
    k = solve_k_scale(
        target_error,
        vdd_stress=vdd_stress,
        temp_stress_c=temp_stress_c,
        stress_seconds=stress_seconds,
        vdd_nominal=profile.vdd_nominal,
        time_exponent=profile.nbti_time_exponent,
        voltage_exponent=profile.voltage_exponent,
        activation_energy_ev=profile.activation_energy_ev,
        temp_nominal_k=profile.temp_nominal_k,
    )
    return profile.with_k_scale(k)


def predicted_error(
    profile: TechnologyProfile,
    *,
    vdd: float,
    temp_c: float,
    stress_seconds: float,
) -> float:
    """Closed-form single-copy error after stressing a fresh device.

    Useful for planning (Figure 15) without running the full simulator.
    """
    accel = profile.acceleration_model()
    eq = accel.equivalent_seconds(vdd, celsius_to_kelvin(temp_c), stress_seconds)
    shift = profile.nbti_model().shift_after(eq)
    return shift_to_error(shift)


def stress_time_for_error(
    profile: TechnologyProfile,
    *,
    vdd: float,
    temp_c: float,
    target_error: float,
) -> float:
    """Stress seconds needed at (V, T) to reach ``target_error`` on a fresh
    device — the planning inverse of :func:`predicted_error`."""
    accel = profile.acceleration_model()
    af = accel.factor(vdd, celsius_to_kelvin(temp_c))
    shift = error_to_shift(target_error)
    n = profile.nbti_time_exponent
    k = profile.nbti_k_scale
    if k <= 0:
        raise ConfigurationError("profile has zero NBTI magnitude")
    return math.exp(math.log(shift / k) / n) / af
