"""AES block cipher (FIPS-197), implemented from scratch.

No external crypto dependency exists in the offline evaluation environment,
and the paper's argument depends on cipher *mode* behaviour, so the cipher
is implemented here in full: S-boxes derived from the GF(2^8) inverse plus
affine map, the standard key schedule for 128/192/256-bit keys, and
numpy-vectorized encryption/decryption over batches of blocks (a 64 KiB
SRAM image is 4096 blocks — per-block Python AES would dominate every
experiment's runtime).

State layout note: FIPS-197 states are column-major 4x4 byte matrices; this
implementation keeps each block as a flat 16-byte row and implements
ShiftRows/MixColumns with precomputed flat index maps, which is both faster
and harder to get wrong than repeated reshapes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, KeyLengthError

# -- GF(2^8) tables -------------------------------------------------------------


def _build_gf_tables() -> tuple[np.ndarray, np.ndarray]:
    """Exp/log tables for GF(2^8) with the AES polynomial 0x11B."""
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator 0x03
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    exp[255:510] = exp[0:255]
    return exp, log


_GF_EXP, _GF_LOG = _build_gf_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) (exposed for tests and the MixColumns tables)."""
    if a == 0 or b == 0:
        return 0
    return int(_GF_EXP[_GF_LOG[a] + _GF_LOG[b]])


def _build_sboxes() -> tuple[np.ndarray, np.ndarray]:
    sbox = np.zeros(256, dtype=np.uint8)
    for value in range(256):
        inv = 0 if value == 0 else int(_GF_EXP[255 - _GF_LOG[value]])
        out = 0
        for bit in range(8):
            out |= (
                ((inv >> bit) ^ (inv >> ((bit + 4) % 8)) ^ (inv >> ((bit + 5) % 8))
                 ^ (inv >> ((bit + 6) % 8)) ^ (inv >> ((bit + 7) % 8))
                 ^ (0x63 >> bit)) & 1
            ) << bit
        sbox[value] = out
    inv_sbox = np.zeros(256, dtype=np.uint8)
    inv_sbox[sbox] = np.arange(256, dtype=np.uint8)
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sboxes()

# MixColumns multiplication tables for the constants AES needs.
_MUL = {
    c: np.array([gf_mul(c, v) for v in range(256)], dtype=np.uint8)
    for c in (2, 3, 9, 11, 13, 14)
}

# Flat-index permutations for ShiftRows on a row-major 16-byte block whose
# FIPS-197 column-major state index is (row + 4*col) -> flat byte r + 4c.
_SHIFT_ROWS = np.array(
    [(4 * ((i // 4 + i % 4) % 4)) + i % 4 for i in range(16)], dtype=np.intp
)
_INV_SHIFT_ROWS = np.zeros(16, dtype=np.intp)
_INV_SHIFT_ROWS[_SHIFT_ROWS] = np.arange(16, dtype=np.intp)

_ROUNDS_BY_KEYLEN = {16: 10, 24: 12, 32: 14}
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8]


class AES:
    """The AES block cipher for one key; encrypts/decrypts batches of blocks."""

    block_bytes = 16

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEYLEN:
            raise KeyLengthError(
                f"AES keys are 16/24/32 bytes, got {len(key)}"
            )
        self.key = bytes(key)
        self.n_rounds = _ROUNDS_BY_KEYLEN[len(key)]
        self._round_keys = self._expand_key(self.key)

    # -- key schedule ------------------------------------------------------------

    def _expand_key(self, key: bytes) -> np.ndarray:
        """Round keys as an array of shape (n_rounds + 1, 16)."""
        nk = len(key) // 4
        words: list[list[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.n_rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [int(SBOX[b]) for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [int(SBOX[b]) for b in temp]
            words.append([w ^ t for w, t in zip(words[i - nk], temp)])
        flat = np.array(words, dtype=np.uint8).reshape(self.n_rounds + 1, 16)
        return flat

    # -- round primitives (vectorized over blocks) ----------------------------------

    @staticmethod
    def _mix_columns(state: np.ndarray) -> np.ndarray:
        cols = state.reshape(-1, 4, 4)  # (blocks, column, row-in-column)
        a0, a1, a2, a3 = (cols[:, :, i] for i in range(4))
        m2, m3 = _MUL[2], _MUL[3]
        out = np.empty_like(cols)
        out[:, :, 0] = m2[a0] ^ m3[a1] ^ a2 ^ a3
        out[:, :, 1] = a0 ^ m2[a1] ^ m3[a2] ^ a3
        out[:, :, 2] = a0 ^ a1 ^ m2[a2] ^ m3[a3]
        out[:, :, 3] = m3[a0] ^ a1 ^ a2 ^ m2[a3]
        return out.reshape(-1, 16)

    @staticmethod
    def _inv_mix_columns(state: np.ndarray) -> np.ndarray:
        cols = state.reshape(-1, 4, 4)
        a0, a1, a2, a3 = (cols[:, :, i] for i in range(4))
        m9, m11, m13, m14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
        out = np.empty_like(cols)
        out[:, :, 0] = m14[a0] ^ m11[a1] ^ m13[a2] ^ m9[a3]
        out[:, :, 1] = m9[a0] ^ m14[a1] ^ m11[a2] ^ m13[a3]
        out[:, :, 2] = m13[a0] ^ m9[a1] ^ m14[a2] ^ m11[a3]
        out[:, :, 3] = m11[a0] ^ m13[a1] ^ m9[a2] ^ m14[a3]
        return out.reshape(-1, 16)

    # -- block operations --------------------------------------------------------------

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt an array of shape ``(n, 16)`` uint8 blocks."""
        state = self._check_blocks(blocks) ^ self._round_keys[0]
        for rnd in range(1, self.n_rounds):
            state = SBOX[state]
            state = state[:, _SHIFT_ROWS]
            state = self._mix_columns(state)
            state ^= self._round_keys[rnd]
        state = SBOX[state]
        state = state[:, _SHIFT_ROWS]
        state ^= self._round_keys[self.n_rounds]
        return state

    def decrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Decrypt an array of shape ``(n, 16)`` uint8 blocks."""
        state = self._check_blocks(blocks) ^ self._round_keys[self.n_rounds]
        state = state[:, _INV_SHIFT_ROWS]
        state = INV_SBOX[state]
        for rnd in range(self.n_rounds - 1, 0, -1):
            state ^= self._round_keys[rnd]
            state = self._inv_mix_columns(state)
            state = state[:, _INV_SHIFT_ROWS]
            state = INV_SBOX[state]
        state ^= self._round_keys[0]
        return state

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block (test-vector convenience)."""
        arr = np.frombuffer(block, dtype=np.uint8).reshape(1, 16)
        return self.encrypt_blocks(arr).tobytes()

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        arr = np.frombuffer(block, dtype=np.uint8).reshape(1, 16)
        return self.decrypt_blocks(arr).tobytes()

    @staticmethod
    def _check_blocks(blocks: np.ndarray) -> np.ndarray:
        blocks = np.asarray(blocks, dtype=np.uint8)
        if blocks.ndim != 2 or blocks.shape[1] != 16:
            raise ConfigurationError(
                f"expected blocks of shape (n, 16), got {blocks.shape}"
            )
        return blocks.copy()
