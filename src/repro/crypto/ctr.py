"""AES-CTR: the stream mode Invisible Bits advocates (paper §4.1, §6).

CTR turns AES into a stream cipher, which is *error-neutral*: bit errors in
the recovered ciphertext are exactly the bit errors in the plaintext — the
property that lets ECC work after decryption.  The nonce is derived from the
manufacturer's device ID (footnote 4) so identical messages produce
different payloads on different devices.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..errors import ConfigurationError, NonceError
from .aes_core import AES

_NONCE_BYTES = 12
_COUNTER_BYTES = 4


def nonce_from_device_id(device_id: bytes) -> bytes:
    """Derive the 96-bit CTR nonce from a device ID (paper footnote 4).

    IDs shorter or longer than 96 bits are normalised through SHA-256 so any
    vendor ID format works; the derivation is public (the nonce need not be
    secret, only unique per device)."""
    if not device_id:
        raise NonceError("device ID must not be empty")
    if len(device_id) == _NONCE_BYTES:
        return bytes(device_id)
    return hashlib.sha256(device_id).digest()[:_NONCE_BYTES]


class AesCtr:
    """AES in counter mode with a 96-bit nonce / 32-bit block counter."""

    def __init__(self, key: bytes, nonce: bytes):
        self._aes = AES(key)
        if len(nonce) != _NONCE_BYTES:
            raise NonceError(
                f"nonce must be {_NONCE_BYTES} bytes, got {len(nonce)} "
                "(use nonce_from_device_id)"
            )
        self.nonce = bytes(nonce)

    def keystream(self, n_bytes: int, *, initial_counter: int = 0) -> np.ndarray:
        """``n_bytes`` of keystream as a uint8 array."""
        if n_bytes < 0:
            raise ConfigurationError(f"negative keystream length {n_bytes}")
        if n_bytes == 0:
            return np.zeros(0, dtype=np.uint8)
        n_blocks = -(-n_bytes // 16)
        if initial_counter < 0 or initial_counter + n_blocks > 2**32:
            raise NonceError("CTR counter would overflow 32 bits")
        counters = np.arange(
            initial_counter, initial_counter + n_blocks, dtype=np.uint64
        )
        blocks = np.zeros((n_blocks, 16), dtype=np.uint8)
        blocks[:, :_NONCE_BYTES] = np.frombuffer(self.nonce, dtype=np.uint8)
        # Big-endian 32-bit counter in the last four bytes.
        for shift, col in zip((24, 16, 8, 0), range(12, 16)):
            blocks[:, col] = (counters >> shift) & 0xFF
        return self._aes.encrypt_blocks(blocks).reshape(-1)[:n_bytes]

    def process(self, data: "bytes | np.ndarray") -> np.ndarray:
        """Encrypt or decrypt (CTR is an involution): bytes in, bytes out.

        Array input must hold byte values in 0..255; anything else is
        rejected (``np.asarray(..., dtype=np.uint8)`` used to wrap values
        > 255 silently, corrupting the stream without a trace).
        """
        from ..bitutils import as_byte_array

        buf = as_byte_array(data)
        return buf ^ self.keystream(buf.size)

    def encrypt(self, plaintext: "bytes | np.ndarray") -> bytes:
        return self.process(plaintext).tobytes()

    def decrypt(self, ciphertext: "bytes | np.ndarray") -> bytes:
        return self.process(ciphertext).tobytes()

    def process_bits(self, bits: np.ndarray) -> np.ndarray:
        """Encrypt/decrypt a bit array (payloads are bit-level objects).

        The bit length must be a byte multiple; SRAM payloads always are.
        """
        from ..bitutils import bits_to_bytes, bytes_to_bits

        return bytes_to_bits(self.process(bits_to_bytes(bits)).tobytes())
