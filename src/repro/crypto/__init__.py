"""Cryptography layered on Invisible Bits (paper §4.1, §6).

A from-scratch FIPS-197 AES (validated against the standard's vectors in
the test suite) with the two modes the paper contrasts:

- :class:`AesCtr` — the stream mode the paper advocates: error-neutral
  (bit errors in ciphertext map 1:1 to plaintext) and, keyed with a
  pre-shared key and the device ID as nonce, the source of analog-domain
  plausible deniability;
- :class:`AesCbc` — the block mode the paper warns against: diffusion
  amplifies a 0.8% channel error into ~50% message error.

Plus :class:`NormalOperationPrng`, the §5.1.4 LFSR+LCG workload generator
(the host-side reference for the MiniCore firmware version).
"""

from .aes_core import AES
from .cbc import AesCbc
from .ctr import AesCtr, nonce_from_device_id
from .prng import GaloisLfsr32, Lcg31, NormalOperationPrng

__all__ = [
    "AES",
    "AesCbc",
    "AesCtr",
    "GaloisLfsr32",
    "Lcg31",
    "NormalOperationPrng",
    "nonce_from_device_id",
]
