"""AES-CBC: the block mode the paper warns against (§4.1).

CBC's diffusion means one flipped ciphertext bit garbles an entire 16-byte
block on decryption (and flips one bit of the next block): the paper
measures a 0.8% channel error becoming ~50% message error.  The ablation
bench ``benchmarks/test_ablation_cipher_mode.py`` reproduces that contrast
against :class:`repro.crypto.AesCtr`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .aes_core import AES


class AesCbc:
    """AES in CBC mode (no padding: callers supply whole blocks)."""

    def __init__(self, key: bytes, iv: bytes):
        self._aes = AES(key)
        if len(iv) != 16:
            raise ConfigurationError(f"IV must be 16 bytes, got {len(iv)}")
        self.iv = bytes(iv)

    def encrypt(self, plaintext: bytes) -> bytes:
        blocks = self._to_blocks(plaintext)
        out = np.empty_like(blocks)
        prev = np.frombuffer(self.iv, dtype=np.uint8)
        for i in range(blocks.shape[0]):
            out[i] = self._aes.encrypt_blocks((blocks[i] ^ prev).reshape(1, 16))[0]
            prev = out[i]
        return out.tobytes()

    def decrypt(self, ciphertext: bytes) -> bytes:
        blocks = self._to_blocks(ciphertext)
        # Decryption parallelizes: P_i = D(C_i) ^ C_{i-1}.
        decrypted = self._aes.decrypt_blocks(blocks)
        prev = np.vstack(
            [np.frombuffer(self.iv, dtype=np.uint8).reshape(1, 16), blocks[:-1]]
        )
        return (decrypted ^ prev).tobytes()

    @staticmethod
    def _to_blocks(data: bytes) -> np.ndarray:
        if len(data) == 0 or len(data) % 16:
            raise ConfigurationError(
                f"CBC needs whole 16-byte blocks, got {len(data)} bytes"
            )
        return np.frombuffer(bytes(data), dtype=np.uint8).reshape(-1, 16).copy()
