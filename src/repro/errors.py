"""Exception hierarchy for the Invisible Bits reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError``, ``ValueError`` from numpy,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class DeviceError(ReproError):
    """Base class for simulated-hardware failures."""


class PowerError(DeviceError):
    """An operation needed power (or the absence of it) and did not have it."""


class OverstressError(DeviceError):
    """The applied voltage or temperature exceeds the device's absolute
    maximum ratings and would destroy a real part."""


class DebugPortError(DeviceError):
    """The debug port was used in an invalid state (e.g. target unpowered)."""


class FirmwareError(DeviceError):
    """Firmware loading or execution failed."""


class RetryExhaustedError(DeviceError):
    """A retried operation kept failing until its attempt budget ran out.

    Raised by :meth:`repro.faults.retry.RetryPolicy.call` (and by the
    adaptive capture escalation in
    :meth:`repro.core.pipeline.InvisibleBits.receive` when the capture
    ceiling is reached with the payload still undecodable).  The final
    underlying failure is chained as ``__cause__``; :attr:`attempts`
    records how many tries were spent.
    """

    def __init__(self, message: str, *, attempts: int = 0):
        self.attempts = attempts
        super().__init__(message)


class QuarantinedDeviceError(DeviceError):
    """The target slot has been quarantined by a health ledger.

    :class:`repro.harness.rack.EncodingRack` stops dispatching work to a
    slot after it fails ``quarantine_after`` consecutive times; further
    operations on that slot raise this error instead of touching the
    (presumed-bad) hardware.  :attr:`slot` is the rack slot index.
    """

    def __init__(self, message: str, *, slot: "int | None" = None):
        self.slot = slot
        super().__init__(message)


class SlotError(ReproError):
    """A per-slot rack operation failed; the original error is chained.

    ``EncodingRack._map_slots`` wraps worker exceptions in this type so a
    single flaky board identifies itself (``slot`` index, device name)
    instead of killing the whole tray map anonymously.
    """

    def __init__(self, message: str, *, slot: int):
        self.slot = slot
        super().__init__(message)


class AssemblerError(ReproError):
    """The assembler rejected a source program."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EmulatorError(ReproError):
    """The CPU emulator hit an illegal state (bad opcode, bus fault...)."""


class CodecError(ReproError):
    """Base class for ECC encode/decode failures."""


class BlockLengthError(CodecError):
    """Input length is incompatible with the code's block structure."""


class DecodeFailure(CodecError):
    """A codeword was uncorrectable (used by codes that can detect this)."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyLengthError(CryptoError):
    """An AES key had an unsupported length."""


class NonceError(CryptoError):
    """A CTR nonce/counter combination was invalid or would overflow."""


class CapacityError(ReproError):
    """A payload does not fit in the target memory under the chosen coding."""


class ExtractionError(ReproError):
    """Message extraction failed end-to-end (e.g. residual errors after ECC
    corrupted a length header beyond recovery)."""


class ServiceError(ReproError):
    """Base class for :mod:`repro.service` frontend failures."""


class AdmissionError(ServiceError):
    """The service refused (shed) a job at admission time.

    Raised when every shard is tripped/quarantined, or when the target
    shard's queue is full and the submitter asked not to wait.  The job
    never entered a queue — resubmitting later is always safe.
    ``shard`` names the shard that refused, when one was selected.
    """

    def __init__(self, message: str, *, shard: "str | None" = None):
        self.shard = shard
        super().__init__(message)


class ServiceStoppedError(ServiceError):
    """The service is draining or stopped and accepts no new jobs."""


class JournalError(ServiceError):
    """The write-ahead journal or a checkpoint is unusable.

    Raised on CRC corruption *before* the final record (a torn tail is
    tolerated — that is the expected signature of a crash mid-append),
    on a manifest referencing device files that do not exist, or on a
    replay whose re-executed result diverges from the journaled one.
    """


class ServiceUnavailableError(ServiceError):
    """The service endpoint cannot be reached right now.

    Wraps connection-level failures (refused, reset, timed out) on the
    client side.  Distinct from :class:`ServiceError` proper so soak
    drivers can retry through a server restart window without also
    retrying real application failures.
    """


class CircuitOpenError(ServiceUnavailableError):
    """The client's circuit breaker is open for this endpoint.

    Calls fail fast without touching the socket until the cooldown
    elapses; the first call after the cooldown is the half-open probe.
    """
