"""Exception hierarchy for the Invisible Bits reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError``, ``ValueError`` from numpy,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class DeviceError(ReproError):
    """Base class for simulated-hardware failures."""


class PowerError(DeviceError):
    """An operation needed power (or the absence of it) and did not have it."""


class OverstressError(DeviceError):
    """The applied voltage or temperature exceeds the device's absolute
    maximum ratings and would destroy a real part."""


class DebugPortError(DeviceError):
    """The debug port was used in an invalid state (e.g. target unpowered)."""


class FirmwareError(DeviceError):
    """Firmware loading or execution failed."""


class AssemblerError(ReproError):
    """The assembler rejected a source program."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EmulatorError(ReproError):
    """The CPU emulator hit an illegal state (bad opcode, bus fault...)."""


class CodecError(ReproError):
    """Base class for ECC encode/decode failures."""


class BlockLengthError(CodecError):
    """Input length is incompatible with the code's block structure."""


class DecodeFailure(CodecError):
    """A codeword was uncorrectable (used by codes that can detect this)."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyLengthError(CryptoError):
    """An AES key had an unsupported length."""


class NonceError(CryptoError):
    """A CTR nonce/counter combination was invalid or would overflow."""


class CapacityError(ReproError):
    """A payload does not fit in the target memory under the chosen coding."""


class ExtractionError(ReproError):
    """Message extraction failed end-to-end (e.g. residual errors after ECC
    corrupted a length header beyond recovery)."""
