"""A low-overhead sampling profiler for soaks and services.

The PR-6 kernel made single-batch capture fast; finding the *next* hot
path needs whole-process visibility while a realistic soak runs.  This
module is a classic sampling profiler: a daemon thread wakes every
``interval_s`` seconds, snapshots every thread's Python stack via
:func:`sys._current_frames`, and counts identical stacks.  The output is
the **collapsed-stack** format flamegraph tooling consumes —

::

    repro.service.shards:execute_batch;repro.sram.array:capture 412

one line per unique stack, frames joined by ``;``, trailing sample
count — and is also readable by eye sorted by count.

Two clocks:

- ``mode="wall"`` (default) keeps every sample: blocked threads show
  their wait stacks, which is what you want for latency questions
  (where does a request *wait*?).
- ``mode="cpu"`` drops samples whose leaf frame is a known idle point
  (``time.sleep``, lock/queue waits, selector polls), approximating an
  on-CPU profile without platform timers.

Overhead is bounded by design: sampling does O(threads × depth) work per
tick and nothing at all between ticks; the service soak bench gates the
profiled/unprofiled throughput ratio at ≤ 1.25x
(``profiler_overhead_x`` in ``BENCH_substrate.json``).

Activation:

- in process — :class:`SamplingProfiler` or :func:`profiling`;
- CLI — the global ``--profile-out PATH`` flag profiles any ``repro``
  command;
- environment — ``REPRO_PROFILE=/path/to/profile.txt`` starts a global
  profiler at import and writes the collapsed stacks at exit
  (``REPRO_PROFILE_INTERVAL_MS`` tunes the tick, default 5 ms).
"""

from __future__ import annotations

import atexit
import os
import pathlib
import sys
import threading
import time
from contextlib import contextmanager

__all__ = [
    "SamplingProfiler",
    "profiling",
    "start_global_profiler",
    "stop_global_profiler",
]

#: Leaf frames that mean "this thread is parked", for mode="cpu".
_IDLE_LEAVES = {
    ("time", "sleep"),
    ("threading", "wait"),
    ("threading", "_wait_for_tstate_lock"),
    ("queue", "get"),
    ("selectors", "select"),
    ("ssl", "read"),
    ("socket", "accept"),
    ("socket", "recv"),
    ("socket", "recv_into"),
}

_MAX_DEPTH = 64


def _frame_label(frame) -> str:
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


class SamplingProfiler:
    """Count collapsed Python stacks at a fixed sampling interval."""

    def __init__(self, interval_s: float = 0.005, *, mode: str = "wall"):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        if mode not in ("wall", "cpu"):
            raise ValueError(f"mode must be 'wall' or 'cpu', got {mode!r}")
        self.interval_s = float(interval_s)
        self.mode = mode
        self.samples: "dict[tuple[str, ...], int]" = {}
        self.total_samples = 0
        self.dropped_idle = 0
        self.started_at: "float | None" = None
        self.duration_s = 0.0
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self.started_at is not None:
            self.duration_s += time.perf_counter() - self.started_at
            self.started_at = None
        return self

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(own_id)

    # -- sampling ------------------------------------------------------------

    def _sample(self, own_id: int) -> None:
        frames = sys._current_frames()
        collected = []
        for thread_id, frame in frames.items():
            if thread_id == own_id:
                continue
            stack = []
            depth = 0
            leaf = frame
            while frame is not None and depth < _MAX_DEPTH:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            if self.mode == "cpu":
                module = leaf.f_globals.get("__name__", "?")
                if (module, leaf.f_code.co_name) in _IDLE_LEAVES:
                    collected.append(None)
                    continue
            stack.reverse()
            collected.append(tuple(stack))
        del frames
        with self._lock:
            for stack in collected:
                if stack is None:
                    self.dropped_idle += 1
                    continue
                self.samples[stack] = self.samples.get(stack, 0) + 1
                self.total_samples += 1

    # -- output --------------------------------------------------------------

    def collapsed(self) -> str:
        """The samples in collapsed-stack format, heaviest stack first."""
        with self._lock:
            items = sorted(
                self.samples.items(), key=lambda kv: kv[1], reverse=True
            )
        return "\n".join(f"{';'.join(stack)} {count}" for stack, count in items)

    def write(self, path) -> pathlib.Path:
        """Write the collapsed stacks to ``path``; returns the path.

        The file always ends with a comment line carrying the sampling
        metadata, so an empty profile (a run too short to catch a single
        tick) is still distinguishable from a failed write.
        """
        path = pathlib.Path(path)
        body = self.collapsed()
        meta = (
            f"# repro-profile mode={self.mode} interval_s={self.interval_s:g} "
            f"samples={self.total_samples} dropped_idle={self.dropped_idle} "
            f"duration_s={self.duration_s:.3f}"
        )
        path.write_text(
            (body + "\n" if body else "") + meta + "\n", encoding="utf-8"
        )
        return path


@contextmanager
def profiling(path=None, *, interval_s: float = 0.005, mode: str = "wall"):
    """Profile the block; write collapsed stacks to ``path`` on exit.

    Yields the live :class:`SamplingProfiler` (so callers can also read
    ``collapsed()`` in memory when ``path`` is ``None``).
    """
    profiler = SamplingProfiler(interval_s, mode=mode).start()
    try:
        yield profiler
    finally:
        profiler.stop()
        if path is not None:
            profiler.write(path)


_global_profiler: "SamplingProfiler | None" = None
_global_path: "str | None" = None


def start_global_profiler(
    path, *, interval_s: float = 0.005, mode: str = "wall"
) -> SamplingProfiler:
    """Start (or return) the process-wide profiler writing to ``path``."""
    global _global_profiler, _global_path
    if _global_profiler is None:
        _global_profiler = SamplingProfiler(interval_s, mode=mode).start()
        _global_path = str(path)
        atexit.register(stop_global_profiler)
    return _global_profiler


def stop_global_profiler() -> "pathlib.Path | None":
    """Stop the process-wide profiler and flush its output file."""
    global _global_profiler, _global_path
    if _global_profiler is None:
        return None
    profiler, path = _global_profiler, _global_path
    _global_profiler = None
    _global_path = None
    profiler.stop()
    return profiler.write(path)


_env_profile = os.environ.get("REPRO_PROFILE")
if _env_profile:  # pragma: no cover - exercised via CI env, not unit tests
    _env_interval = float(os.environ.get("REPRO_PROFILE_INTERVAL_MS", "5"))
    start_global_profiler(_env_profile, interval_s=_env_interval / 1e3)
