"""Unit tests for unit conversions."""

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    celsius_to_kelvin,
    days,
    hours,
    kelvin_to_celsius,
    kib,
    minutes,
    seconds_to_hours,
    weeks,
)


def test_celsius_round_trip():
    assert kelvin_to_celsius(celsius_to_kelvin(25.0)) == pytest.approx(25.0)


def test_celsius_to_kelvin_known():
    assert celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert celsius_to_kelvin(85.0) == pytest.approx(358.15)


def test_below_absolute_zero_rejected():
    with pytest.raises(ConfigurationError):
        celsius_to_kelvin(-300.0)
    with pytest.raises(ConfigurationError):
        kelvin_to_celsius(-1.0)


def test_durations():
    assert hours(2) == 7200.0
    assert minutes(3) == 180.0
    assert days(1) == 86400.0
    assert weeks(2) == 14 * 86400.0
    assert seconds_to_hours(7200.0) == pytest.approx(2.0)


@pytest.mark.parametrize("fn", [hours, minutes, days, weeks])
def test_negative_durations_rejected(fn):
    with pytest.raises(ConfigurationError):
        fn(-1)


def test_kib():
    assert kib(64) == 65536
    with pytest.raises(ConfigurationError):
        kib(-1)
