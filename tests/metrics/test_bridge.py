"""TelemetryBridge: folding telemetry records into instruments."""

import pytest

from repro.metrics import MetricsRegistry, TelemetryBridge


@pytest.fixture
def rig():
    registry = MetricsRegistry()
    registry.enable()
    return registry, TelemetryBridge(registry)


def _value(registry, name, **labels):
    instrument = registry.get(name)
    key = tuple(str(labels[n]) for n in instrument.labelnames)
    return instrument.series()[key].value


def test_pre_registered_series_visible_before_traffic(rig):
    registry, _bridge = rig
    text = registry.expose()
    for name in (
        "repro_retry_attempts_total 0",
        "repro_slots_quarantined_total 0",
        "repro_ecc_corrections_total 0",
        "repro_escalation_captures_total 0",
        "repro_faults_injected_total 0",
    ):
        assert name in text


def test_default_registry_is_the_module_one():
    from repro import metrics

    bridge = TelemetryBridge()
    assert bridge.registry is metrics.registry


class TestCounterRecords:
    def test_curated_mappings(self, rig):
        registry, bridge = rig
        for name, value in (
            ("retry.attempts", 3),
            ("faults.injected", 2),
            ("slots.failed", 1),
            ("slots.quarantined", 1),
            ("escalation.captures", 10),
        ):
            bridge.emit({"type": "counter", "name": name, "value": value})
        assert _value(registry, "repro_retry_attempts_total") == 3.0
        assert _value(registry, "repro_faults_injected_total") == 2.0
        assert _value(registry, "repro_slots_failed_total") == 1.0
        assert _value(registry, "repro_slots_quarantined_total") == 1.0
        assert _value(registry, "repro_escalation_captures_total") == 10.0

    def test_corrections_suffix_folds_all_codes(self, rig):
        registry, bridge = rig
        bridge.emit(
            {"type": "counter", "name": "ecc.hamming.corrections", "value": 4}
        )
        bridge.emit(
            {"type": "counter", "name": "ecc.repetition.corrections", "value": 2}
        )
        bridge.emit(
            {"type": "counter", "name": "ecc.chase.corrections", "value": 1}
        )
        assert _value(registry, "repro_ecc_corrections_total") == 7.0

    def test_overruled_copies_kept_apart_from_corrections(self, rig):
        # Different units (copies vs data bits): folding them together
        # used to overstate ECC work by up to copies//2 per bit.
        registry, bridge = rig
        bridge.emit(
            {"type": "counter", "name": "ecc.repetition.overruled", "value": 5}
        )
        bridge.emit(
            {"type": "counter", "name": "ecc.repetition.corrections", "value": 2}
        )
        assert _value(registry, "repro_ecc_overruled_copies_total") == 5.0
        assert _value(registry, "repro_ecc_corrections_total") == 2.0

    def test_overruled_series_visible_before_traffic(self, rig):
        registry, _bridge = rig
        assert "repro_ecc_overruled_copies_total 0" in registry.expose()

    def test_events_catch_all(self, rig):
        registry, bridge = rig
        bridge.emit({"type": "counter", "name": "board.captures", "value": 5})
        assert _value(registry, "repro_events_total", event="board.captures") == 5.0

    def test_malformed_counter_records_ignored(self, rig):
        _registry, bridge = rig
        bridge.emit({"type": "counter"})
        bridge.emit({"type": "counter", "name": "x", "value": "not-a-number"})
        bridge.emit({"type": "unknown", "name": "x"})


class TestReceiveSpans:
    def test_folds_ber_margin_raw_and_degraded(self, rig):
        registry, bridge = rig
        bridge.emit(
            {
                "type": "span",
                "name": "channel.receive",
                "status": "ok",
                "attrs": {
                    "device": "MSP432P401",
                    "per_capture_flip_rate": [0.01, 0.02],
                    "vote_margin_hist": [0, 3, 0, 2],
                    "raw_error_vs": 0.07,
                    "degraded": True,
                },
            }
        )
        assert (
            _value(registry, "repro_receives_total",
                   device="MSP432P401", status="ok") == 1.0
        )
        ber = registry.get("repro_capture_ber").series()[("MSP432P401",)]
        assert ber.count == 2.0
        assert ber.sum == pytest.approx(0.03)
        margin = registry.get("repro_vote_margin").series()[("MSP432P401",)]
        assert margin.count == 5.0  # 3 bits at margin 1 + 2 bits at margin 3
        assert margin.sum == pytest.approx(3 * 1.0 + 2 * 3.0)
        assert (
            registry.get("repro_raw_ber").series()[("MSP432P401",)].value
            == pytest.approx(0.07)
        )
        assert (
            _value(registry, "repro_degraded_receives_total",
                   device="MSP432P401") == 1.0
        )

    def test_sparse_attrs_do_not_raise(self, rig):
        registry, bridge = rig
        bridge.emit({"type": "span", "name": "channel.receive", "attrs": {}})
        assert _value(registry, "repro_receives_total",
                      device="?", status="ok") == 1.0


class TestSendSpans:
    def test_stress_hours_only_on_ok(self, rig):
        registry, bridge = rig
        bridge.emit(
            {
                "type": "span",
                "name": "channel.send",
                "status": "ok",
                "attrs": {"device": "d1", "stress_hours": 10.0},
            }
        )
        bridge.emit(
            {
                "type": "span",
                "name": "channel.send",
                "status": "error",
                "attrs": {"device": "d1", "stress_hours": 7.0},
            }
        )
        assert _value(registry, "repro_sends_total",
                      device="d1", status="ok") == 1.0
        assert _value(registry, "repro_sends_total",
                      device="d1", status="error") == 1.0
        assert _value(registry, "repro_stress_hours_total", device="d1") == 10.0


class TestRackAndFleetSpans:
    def test_rack_phase_slot_statuses(self, rig):
        registry, bridge = rig
        bridge.emit(
            {
                "type": "span",
                "name": "rack.measure",
                "attrs": {"ok": 3, "failed": 1, "quarantined": 1},
            }
        )
        assert _value(registry, "repro_slots_total",
                      phase="measure", status="ok") == 3.0
        assert _value(registry, "repro_slots_total",
                      phase="measure", status="failed") == 1.0
        assert _value(registry, "repro_slots_total",
                      phase="measure", status="quarantined") == 1.0

    def test_fleet_encode(self, rig):
        registry, bridge = rig
        bridge.emit(
            {
                "type": "span",
                "name": "fleet.encode",
                "attrs": {"survivors": 3, "failed": 2, "winner_error": 0.04},
            }
        )
        assert registry.get("repro_fleet_survivors").series()[()].value == 3.0
        assert _value(registry, "repro_fleet_failures_total") == 2.0
        assert registry.get("repro_fleet_winner_error").series()[()].value == (
            pytest.approx(0.04)
        )

    def test_fleet_capture_folds_per_device_ber(self, rig):
        registry, bridge = rig
        bridge.emit(
            {
                "type": "span",
                "name": "fleet.capture",
                "attrs": {
                    "devices": 3,
                    "ber": [["dev-a", 0.06], ["dev-b", 0.09]],
                },
            }
        )
        hist = registry.get("repro_capture_ber")
        assert hist.series()[("dev-a",)].count == 1
        assert hist.series()[("dev-b",)].count == 1
        assert registry.get("repro_raw_ber").series()[("dev-a",)].value == (
            pytest.approx(0.06)
        )
        assert registry.get("repro_raw_ber").series()[("dev-b",)].value == (
            pytest.approx(0.09)
        )

    def test_fleet_capture_sparse_and_malformed_attrs(self, rig):
        registry, bridge = rig
        bridge.emit({"type": "span", "name": "fleet.capture", "attrs": {}})
        bridge.emit(
            {
                "type": "span",
                "name": "fleet.capture",
                "attrs": {"ber": [["dev-c"], None, ["dev-d", "bad"]]},
            }
        )
        assert registry.get("repro_capture_ber").series() == {}


def test_alert_records_counted_by_severity(rig):
    registry, bridge = rig
    bridge.emit({"type": "alert", "name": "raw-ber-ceiling", "severity": "page"})
    bridge.emit({"type": "alert", "name": "vote-margin-floor"})
    assert _value(registry, "repro_alerts_total", severity="page") == 2.0


def test_bridge_respects_disabled_registry():
    registry = MetricsRegistry()  # stays disabled
    bridge = TelemetryBridge(registry)
    bridge.emit({"type": "counter", "name": "retry.attempts", "value": 5})
    registry.enable()
    assert registry.get("repro_retry_attempts_total").series()[()].value == 0.0


def test_two_bridges_share_instruments(rig):
    registry, bridge = rig
    other = TelemetryBridge(registry)
    bridge.emit({"type": "counter", "name": "retry.attempts", "value": 1})
    other.emit({"type": "counter", "name": "retry.attempts", "value": 1})
    assert _value(registry, "repro_retry_attempts_total") == 2.0
