"""Instrument semantics: kinds, labels, the enable switch, exposition."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
    snapshot_delta,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.enable()
    return reg


class TestEnableSwitch:
    def test_disabled_by_default(self):
        reg = MetricsRegistry()
        assert not reg.enabled
        counter = reg.counter("repro_x_total")
        counter.inc(5)
        assert counter.series()[()].value == 0.0

    def test_disabled_fast_path_covers_all_kinds(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", labelnames=("device",))
        gauge = reg.gauge("g")
        hist = reg.histogram("h")
        counter.inc(1, device="a")
        # labels() pre-binds (and so creates) the series, but the inc
        # through it must still be swallowed.
        counter.labels(device="a").inc()
        gauge.set(3.0)
        gauge.inc()
        hist.observe(0.5)
        reg.enable()
        snap = reg.snapshot()["metrics"]
        assert snap["c_total"]["series"] == [
            {"labels": {"device": "a"}, "value": 0.0}
        ]
        assert snap["g"]["series"][0]["value"] == 0.0
        assert snap["h"]["series"][0]["count"] == 0.0

    def test_enable_is_retroactive_for_existing_instruments(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total")
        reg.enable()
        counter.inc(2)
        assert counter.series()[()].value == 2.0
        reg.disable()
        counter.inc(2)
        assert counter.series()[()].value == 2.0


class TestCounter:
    def test_inc_accumulates(self, registry):
        counter = registry.counter("captures_total", "help text")
        counter.inc()
        counter.inc(4)
        assert counter.series()[()].value == 5.0

    def test_labelled_series_are_independent(self, registry):
        counter = registry.counter("c_total", labelnames=("device",))
        counter.inc(1, device="a")
        counter.inc(2, device="b")
        series = counter.series()
        assert series[("a",)].value == 1.0
        assert series[("b",)].value == 2.0

    def test_negative_inc_rejected(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        counter = registry.counter("c_total", labelnames=("device",))
        with pytest.raises(ConfigurationError):
            counter.inc(1, slot="3")
        with pytest.raises(ConfigurationError):
            counter.inc(1)


class TestGauge:
    def test_set_overwrites_inc_accumulates(self, registry):
        gauge = registry.gauge("g")
        gauge.set(7.0)
        gauge.set(3.0)
        assert gauge.series()[()].value == 3.0
        gauge.inc(2.0)
        assert gauge.series()[()].value == 5.0


class TestHistogram:
    def test_bucket_placement_is_cumulative_in_exposition(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        text = registry.expose()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="4"} 3' in text
        assert 'h_bucket{le="+Inf"} 4' in text
        assert "h_count 4" in text

    def test_weighted_observe(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 3.0))
        hist.observe(2.0, n=10)
        state = hist.series()[()]
        assert state.count == 10.0
        assert state.sum == 20.0
        assert state.bucket_counts == [0.0, 10.0, 0.0]

    def test_boundary_lands_in_bucket(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)  # le is inclusive
        assert hist.series()[()].bucket_counts == [1.0, 0.0, 0.0]

    def test_nonpositive_weight_rejected(self, registry):
        hist = registry.histogram("h")
        with pytest.raises(ConfigurationError):
            hist.observe(1.0, n=0)

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("h2", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        a = registry.counter("c_total", labelnames=("device",))
        b = registry.counter("c_total", labelnames=("device",))
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total")

    def test_labelnames_mismatch_rejected(self, registry):
        registry.counter("x_total", labelnames=("device",))
        with pytest.raises(ConfigurationError):
            registry.counter("x_total", labelnames=("slot",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.counter("bad name")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", labelnames=("bad-label",))
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", labelnames=("a", "a"))

    def test_zero_label_series_visible_at_zero(self, registry):
        registry.counter("quiet_total", "never ticked")
        assert "quiet_total 0" in registry.expose()

    def test_reset_values_keeps_instruments(self, registry):
        counter = registry.counter("c_total")
        counter.inc(9)
        registry.reset_values()
        assert registry.get("c_total") is counter
        assert counter.series()[()].value == 0.0

    def test_bound_handle_updates_hot_series(self, registry):
        counter = registry.counter("c_total", labelnames=("device",))
        bound = counter.labels(device="a")
        bound.inc()
        bound.inc(2)
        assert counter.series()[("a",)].value == 3.0
        with pytest.raises(ConfigurationError):
            bound.inc(-1)


class TestExposition:
    def test_label_escaping(self, registry):
        counter = registry.counter("c_total", labelnames=("device",))
        counter.inc(1, device='we"ird\nname\\x')
        text = registry.expose()
        assert r'device="we\"ird\nname\\x"' in text

    def test_help_and_type_lines(self, registry):
        registry.counter("c_total", "what it counts")
        text = registry.expose()
        assert "# HELP c_total what it counts" in text
        assert "# TYPE c_total counter" in text

    def test_metric_names_sorted(self, registry):
        registry.counter("z_total")
        registry.counter("a_total")
        text = registry.expose()
        assert text.index("a_total") < text.index("z_total")

    def test_empty_registry_exposes_empty_string(self):
        assert MetricsRegistry().expose() == ""


class TestBuckets:
    def test_exponential(self):
        assert exponential_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)

    def test_linear(self):
        assert linear_buckets(1.0, 2.0, 3) == (1.0, 3.0, 5.0)

    def test_default_span(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert len(DEFAULT_BUCKETS) == 12
        assert all(b < a for b, a in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            exponential_buckets(0.0, 2.0, 3)
        with pytest.raises(ConfigurationError):
            exponential_buckets(1.0, 1.0, 3)
        with pytest.raises(ConfigurationError):
            linear_buckets(0.0, -1.0, 3)


class TestSnapshots:
    def test_snapshot_shape(self, registry):
        counter = registry.counter("c_total", labelnames=("device",))
        counter.inc(2, device="a")
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        snap = registry.snapshot()
        assert snap["schema"] == 1
        c = snap["metrics"]["c_total"]
        assert c["kind"] == "counter"
        assert c["series"] == [{"labels": {"device": "a"}, "value": 2.0}]
        h = snap["metrics"]["h"]["series"][0]
        assert h["buckets"] == {"1": 1.0, "+Inf": 0.0}
        assert h["count"] == 1.0

    def test_delta_subtracts_counters_passes_gauges(self, registry):
        counter = registry.counter("c_total")
        gauge = registry.gauge("g")
        counter.inc(5)
        gauge.set(10.0)
        old = registry.snapshot()
        counter.inc(3)
        gauge.set(4.0)
        delta = snapshot_delta(old, registry.snapshot())
        assert delta["metrics"]["c_total"]["series"][0]["value"] == 3.0
        assert delta["metrics"]["g"]["series"][0]["value"] == 4.0

    def test_delta_subtracts_histogram_buckets(self, registry):
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        old = registry.snapshot()
        hist.observe(0.5)
        hist.observe(5.0)
        delta = snapshot_delta(old, registry.snapshot())
        entry = delta["metrics"]["h"]["series"][0]
        assert entry["buckets"] == {"1": 1.0, "+Inf": 1.0}
        assert entry["count"] == 2.0
        assert entry["sum"] == pytest.approx(5.5)

    def test_new_series_counts_from_zero(self, registry):
        counter = registry.counter("c_total", labelnames=("device",))
        old = registry.snapshot()
        counter.inc(4, device="new")
        delta = snapshot_delta(old, registry.snapshot())
        assert delta["metrics"]["c_total"]["series"][0]["value"] == 4.0

    def test_snapshot_is_json_ready(self, registry):
        import json

        registry.histogram("h").observe(0.5)
        text = json.dumps(registry.snapshot())
        assert "h" in text and not math.isnan(len(text))
