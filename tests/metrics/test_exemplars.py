"""Histogram exemplars: last-sampled trace ids per bucket."""

from __future__ import annotations

from repro import metrics
from repro.metrics import MetricsRegistry, TelemetryBridge
from repro.telemetry import trace_context

T1 = "ab" * 16
T2 = "cd" * 16


def _histogram(registry):
    return registry.histogram(
        "test_latency_seconds",
        "test distribution",
        buckets=(0.1, 1.0),
    )


class TestExemplarCapture:
    def test_explicit_exemplar_lands_in_bucket(self):
        registry = MetricsRegistry(enabled=True)
        hist = _histogram(registry)
        hist.observe(0.05, exemplar=T1)
        entry = registry.snapshot()["metrics"]["test_latency_seconds"]
        exemplars = entry["series"][0]["exemplars"]
        assert exemplars == {"0.1": {"trace_id": T1, "value": 0.05}}

    def test_ambient_trace_context_is_the_fallback(self):
        registry = MetricsRegistry(enabled=True)
        hist = _histogram(registry)
        with trace_context(T2):
            hist.observe(0.5)
        entry = registry.snapshot()["metrics"]["test_latency_seconds"]
        assert entry["series"][0]["exemplars"]["1"]["trace_id"] == T2

    def test_no_trace_leaves_bucket_untouched(self):
        registry = MetricsRegistry(enabled=True)
        hist = _histogram(registry)
        hist.observe(0.05)
        entry = registry.snapshot()["metrics"]["test_latency_seconds"]
        assert "exemplars" not in entry["series"][0]

    def test_last_sampled_wins_per_bucket(self):
        registry = MetricsRegistry(enabled=True)
        hist = _histogram(registry)
        hist.observe(0.01, exemplar=T1)
        hist.observe(0.02, exemplar=T2)
        hist.observe(5.0, exemplar=T1)  # +Inf bucket keeps its own
        entry = registry.snapshot()["metrics"]["test_latency_seconds"]
        exemplars = entry["series"][0]["exemplars"]
        assert exemplars["0.1"]["trace_id"] == T2
        assert exemplars["+Inf"]["trace_id"] == T1

    def test_bound_handle_carries_exemplars_too(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram(
            "test_labelled_seconds",
            "labelled distribution",
            labelnames=("device",),
            buckets=(1.0,),
        )
        hist.labels(device="X").observe(0.5, exemplar=T1)
        entry = registry.snapshot()["metrics"]["test_labelled_seconds"]
        assert entry["series"][0]["exemplars"]["1"]["trace_id"] == T1


class TestExemplarExposition:
    def test_bucket_line_gets_openmetrics_suffix(self):
        registry = MetricsRegistry(enabled=True)
        hist = _histogram(registry)
        hist.observe(0.05, exemplar=T1)
        text = registry.expose()
        line = next(
            l for l in text.splitlines()
            if l.startswith('test_latency_seconds_bucket{le="0.1"}')
        )
        assert line.endswith(f'# {{trace_id="{T1}"}} 0.05')

    def test_bucket_line_without_exemplar_stays_bare(self):
        # The suffix is strictly additive: CI greps anchored on
        # `name_bucket{...} <count>` keep matching.
        registry = MetricsRegistry(enabled=True)
        hist = _histogram(registry)
        hist.observe(0.05)
        for line in registry.expose().splitlines():
            if line.startswith("test_latency_seconds_bucket"):
                assert "#" not in line.split("} ", 1)[1]


class TestBridgeSpanLatency:
    def _span(self, name, dur_ms, trace=T1):
        return {
            "type": "span",
            "name": name,
            "dur_ms": dur_ms,
            "status": "ok",
            "trace_id": trace,
            "attrs": {},
            "counters": {},
        }

    def test_request_path_spans_fold_into_latency_histogram(self):
        registry = MetricsRegistry(enabled=True)
        bridge = TelemetryBridge(registry)
        bridge.emit(self._span("service.submit", 200.0))
        bridge.emit(self._span("lane.capture", 40.0, trace=T2))
        bridge.emit(self._span("unrelated.span", 9999.0))
        entry = registry.snapshot()["metrics"]["repro_span_latency_seconds"]
        by_span = {
            s["labels"]["span"]: s for s in entry["series"] if s["count"]
        }
        assert set(by_span) == {"service.submit", "lane.capture"}
        assert by_span["service.submit"]["sum"] == 0.2
        # The span's own trace id rides along as the bucket exemplar.
        assert any(
            e["trace_id"] == T2
            for e in by_span["lane.capture"]["exemplars"].values()
        )

    def test_monitor_breakdown_and_dashboard(self):
        from repro.monitor import FleetMonitor

        registry = MetricsRegistry(enabled=True)
        monitor = FleetMonitor(registry=registry)
        monitor.feed(
            [
                self._span("service.submit", 100.0),
                self._span("service.submit", 300.0),
                self._span("service.journal", 2.0, trace=T2),
            ]
        )
        breakdown = monitor.latency_breakdown()
        assert breakdown["service.submit"]["count"] == 2
        assert breakdown["service.submit"]["mean_ms"] == 200.0
        assert breakdown["service.journal"]["exemplar"] == T2
        dashboard = monitor.dashboard()
        assert "request latency" in dashboard
        assert "service.submit" in dashboard
        report = monitor.report()
        assert "Request latency" in report
