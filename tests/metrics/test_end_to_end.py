"""The acceptance path: a real send/stress/receive filling the registry."""

import pytest

from repro import InvisibleBits, metrics, paper_end_to_end_scheme, telemetry
from repro.device import make_device
from repro.harness import ControlBoard


@pytest.fixture
def traced_roundtrip():
    """Run one full send/receive with the bridge riding telemetry."""
    metrics.enable()
    bridge = metrics.TelemetryBridge()
    telemetry.add_sink(bridge)
    try:
        device = make_device("MSP432P401", rng=7, sram_kib=2)
        channel = InvisibleBits(
            ControlBoard(device),
            scheme=paper_end_to_end_scheme(b"0123456789abcdef"),
            use_firmware=False,
        )
        sent = channel.send(b"invisible")
        result = channel.receive(expected_payload=sent.payload_bits)
    finally:
        telemetry.remove_sink(bridge)
    assert result.message == b"invisible"
    return metrics.registry.expose()


def test_exposition_has_labelled_channel_series(traced_roundtrip):
    text = traced_roundtrip
    # Labelled BER histogram and vote-margin buckets.
    assert 'repro_capture_ber_bucket{device="MSP432P401",le="+Inf"}' in text
    assert 'repro_vote_margin_bucket{device="MSP432P401",le="1"}' in text
    assert 'repro_raw_ber{device="MSP432P401"}' in text
    # Retry and quarantine series must be present even when untouched.
    assert "repro_retry_attempts_total" in text
    assert "repro_slots_quarantined_total" in text


def test_exposition_has_direct_hot_path_series(traced_roundtrip):
    text = traced_roundtrip
    assert 'repro_captures_total{device="MSP432P401"}' in text
    assert 'repro_messages_total{phase="send",device="MSP432P401"} 1' in text
    assert 'repro_messages_total{phase="receive",device="MSP432P401"} 1' in text
    cells = metrics.registry.get("repro_capture_cells_total")
    assert cells.series()[()].value > 0


def test_direct_instruments_silent_while_disabled():
    device = make_device("MSP432P401", rng=8, sram_kib=1)
    board = ControlBoard(device)
    assert not metrics.enabled()
    board.capture_power_on_states(3)
    metrics.enable()
    captures = metrics.registry.get("repro_captures_total")
    assert ("MSP432P401",) not in captures.series()


def test_bridge_replays_offline_trace(tmp_path):
    """The same aggregates are reachable from a recorded JSONL trace."""
    trace = tmp_path / "run.jsonl"
    sink = telemetry.JsonlSink(trace)
    telemetry.add_sink(sink)
    try:
        device = make_device("MSP432P401", rng=9, sram_kib=1)
        channel = InvisibleBits(
            ControlBoard(device),
            scheme=paper_end_to_end_scheme(None, copies=3),
            use_firmware=False,
        )
        sent = channel.send(b"off")
        channel.receive(expected_payload=sent.payload_bits)
    finally:
        telemetry.remove_sink(sink)
        sink.close()

    registry = metrics.MetricsRegistry(enabled=True)
    bridge = metrics.TelemetryBridge(registry)
    for record in telemetry.load_records(trace):
        bridge.emit(record)
    text = registry.expose()
    assert 'repro_receives_total{device="MSP432P401",status="ok"} 1' in text
    assert 'repro_raw_ber{device="MSP432P401"}' in text
