"""Bench snapshot format and the regression gate (no benches re-run)."""

import json

import pytest

from repro import bench


def _snap(metrics, sha=None, ts=1000.0):
    return bench.make_snapshot(metrics, ts=ts, git_sha=sha)


class TestSnapshots:
    def test_make_snapshot_normalizes_bare_numbers(self):
        snap = _snap({"wall_x": 12.5})
        entry = snap["metrics"]["wall_x"]
        assert entry == {"value": 12.5, "better": "lower", "unit": ""}
        assert snap["schema"] == bench.SCHEMA_VERSION
        assert snap["ts"] == 1000.0

    def test_make_snapshot_keeps_declared_direction(self):
        snap = _snap({"speedup": {"value": 7.0, "better": "higher",
                                  "unit": "x"}})
        assert snap["metrics"]["speedup"]["better"] == "higher"
        assert snap["metrics"]["speedup"]["unit"] == "x"

    def test_make_snapshot_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            _snap({"x": {"value": 1.0, "better": "sideways"}})

    def test_write_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_substrate.json"
        snap = _snap({"wall_x": 1.0}, sha="abc1234")
        bench.write_snapshot(snap, path)
        assert bench.load_snapshot(path) == snap
        assert path.read_text().endswith("\n")

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a bench snapshot"):
            bench.load_snapshot(path)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": 99, "metrics": {}}')
        with pytest.raises(ValueError, match="schema"):
            bench.load_snapshot(path)

    def test_append_history_is_jsonl(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        bench.append_history(_snap({"a": 1.0}), path)
        bench.append_history(_snap({"a": 2.0}), path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["metrics"]["a"]["value"] == 2.0


class TestCompare:
    def test_within_gate_is_ok(self):
        cmp = bench.compare_snapshots(
            _snap({"wall_x": 100.0}), _snap({"wall_x": 115.0}), gate_pct=20.0
        )
        assert cmp.ok
        assert cmp.deltas[0].status == "ok"
        assert cmp.deltas[0].pct == pytest.approx(15.0)

    def test_slowdown_past_gate_regresses(self):
        cmp = bench.compare_snapshots(
            _snap({"wall_x": 100.0}), _snap({"wall_x": 130.0}), gate_pct=20.0
        )
        assert not cmp.ok
        assert [d.name for d in cmp.regressions] == ["wall_x"]

    def test_direction_aware_for_higher_is_better(self):
        speedup = lambda v: _snap(
            {"speedup": {"value": v, "better": "higher", "unit": "x"}}
        )
        # A drop in a higher-is-better metric regresses...
        assert not bench.compare_snapshots(speedup(10.0), speedup(7.0)).ok
        # ...while the same-magnitude rise is an improvement.
        cmp = bench.compare_snapshots(speedup(10.0), speedup(13.0))
        assert cmp.ok
        assert cmp.deltas[0].status == "improved"

    def test_large_speedup_marked_improved_for_lower_is_better(self):
        cmp = bench.compare_snapshots(
            _snap({"wall_x": 100.0}), _snap({"wall_x": 50.0})
        )
        assert cmp.deltas[0].status == "improved"

    def test_added_and_removed_metrics_never_gate(self):
        cmp = bench.compare_snapshots(
            _snap({"old_only": 1.0}), _snap({"new_only": 1.0})
        )
        assert cmp.ok
        statuses = {d.name: d.status for d in cmp.deltas}
        assert statuses == {"new_only": "added", "old_only": "removed"}

    def test_zero_baseline_never_gates(self):
        cmp = bench.compare_snapshots(
            _snap({"wall_x": 0.0}), _snap({"wall_x": 5.0})
        )
        assert cmp.ok
        assert cmp.deltas[0].pct is None

    def test_negative_gate_rejected(self):
        with pytest.raises(ValueError):
            bench.compare_snapshots(_snap({}), _snap({}), gate_pct=-1.0)

    def test_shas_carried_through(self):
        cmp = bench.compare_snapshots(
            _snap({}, sha="aaa1111"), _snap({}, sha="bbb2222")
        )
        assert (cmp.old_sha, cmp.new_sha) == ("aaa1111", "bbb2222")


class TestRender:
    def test_table_and_ok_verdict(self):
        cmp = bench.compare_snapshots(
            _snap({"wall_x": 100.0}, sha="aaa1111"),
            _snap({"wall_x": 101.0}, sha="bbb2222"),
        )
        text = bench.render_comparison(cmp)
        assert "wall_x" in text
        assert "+1.0%" in text
        assert "no regressions beyond 20% gate (aaa1111 -> bbb2222)" in text

    def test_regression_named_in_verdict(self):
        cmp = bench.compare_snapshots(
            _snap({"wall_x": 100.0}), _snap({"wall_x": 200.0})
        )
        text = bench.render_comparison(cmp)
        assert "REGRESSED" in text
        assert text.rstrip().endswith("wall_x")


def test_current_git_sha_in_this_repo():
    sha = bench.current_git_sha()
    assert sha is None or (len(sha) >= 7 and sha.strip() == sha)


def test_current_git_sha_outside_a_repo(tmp_path):
    assert bench.current_git_sha(cwd=tmp_path) is None
