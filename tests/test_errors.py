"""Unit tests for the exception hierarchy contract."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    leaf_exceptions = [
        errors.ConfigurationError,
        errors.DeviceError,
        errors.PowerError,
        errors.OverstressError,
        errors.DebugPortError,
        errors.FirmwareError,
        errors.AssemblerError,
        errors.EmulatorError,
        errors.CodecError,
        errors.BlockLengthError,
        errors.DecodeFailure,
        errors.CryptoError,
        errors.KeyLengthError,
        errors.NonceError,
        errors.CapacityError,
        errors.ExtractionError,
        errors.RetryExhaustedError,
        errors.QuarantinedDeviceError,
        errors.SlotError,
    ]
    for exc in leaf_exceptions:
        assert issubclass(exc, errors.ReproError), exc


def test_device_family():
    for exc in (errors.PowerError, errors.OverstressError,
                errors.DebugPortError, errors.FirmwareError,
                errors.RetryExhaustedError, errors.QuarantinedDeviceError):
        assert issubclass(exc, errors.DeviceError)


def test_retry_exhausted_carries_attempts():
    err = errors.RetryExhaustedError("gave up", attempts=4)
    assert err.attempts == 4
    assert errors.RetryExhaustedError("bare").attempts == 0


def test_quarantined_carries_slot():
    assert errors.QuarantinedDeviceError("out", slot=3).slot == 3
    assert errors.QuarantinedDeviceError("out").slot is None


def test_slot_error_carries_slot():
    err = errors.SlotError("slot 2 broke", slot=2)
    assert err.slot == 2
    assert not issubclass(errors.SlotError, errors.DeviceError)


def test_codec_family():
    assert issubclass(errors.BlockLengthError, errors.CodecError)
    assert issubclass(errors.DecodeFailure, errors.CodecError)


def test_crypto_family():
    assert issubclass(errors.KeyLengthError, errors.CryptoError)
    assert issubclass(errors.NonceError, errors.CryptoError)


def test_assembler_error_line_prefix():
    err = errors.AssemblerError("bad thing", line=7)
    assert "line 7" in str(err)
    assert err.line == 7
    bare = errors.AssemblerError("no line info")
    assert bare.line is None


def test_single_except_clause_catches_library_failures():
    from repro.ecc import RepetitionCode

    with pytest.raises(errors.ReproError):
        RepetitionCode(2)
