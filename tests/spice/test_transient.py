"""Unit tests for the fixed-step transient solver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.spice.cell6t import Cell6T
from repro.spice.components import RampSupply
from repro.spice.transient import TransientSolver


@pytest.fixture
def cell():
    return Cell6T.predictive_45nm(m4_vth_offset=-0.03)


def test_ramp_supply_profile():
    supply = RampSupply(vdd=1.0, ramp_s=1e-9)
    assert supply.voltage(-1.0) == 0.0
    assert supply.voltage(0.5e-9) == pytest.approx(0.5)
    assert supply.voltage(5e-9) == 1.0


def test_ramp_supply_validation():
    with pytest.raises(ConfigurationError):
        RampSupply(vdd=0.0, ramp_s=1e-9)
    with pytest.raises(ConfigurationError):
        RampSupply(vdd=1.0, ramp_s=0.0)


def test_solver_output_shapes(cell):
    solver = TransientSolver(dt_s=1e-11)
    t, vdd, va, vb = solver.run(cell, RampSupply(1.0, 1e-9), 2e-9)
    assert t.shape == vdd.shape == va.shape == vb.shape
    assert t[0] == 0.0
    assert t[-1] == pytest.approx(2e-9)


def test_nodes_stay_within_rails(cell):
    solver = TransientSolver(dt_s=1e-11)
    t, vdd, va, vb = solver.run(cell, RampSupply(1.0, 1e-9), 5e-9)
    assert np.all(va >= 0.0) and np.all(vb >= 0.0)
    assert np.all(va <= vdd + 1e-12) and np.all(vb <= vdd + 1e-12)


def test_race_resolves_to_complementary_rails(cell):
    solver = TransientSolver(dt_s=1e-11)
    _, _, va, vb = solver.run(cell, RampSupply(1.0, 1e-9), 5e-9)
    assert va[-1] > 0.9
    assert vb[-1] < 0.1


def test_solver_validation(cell):
    with pytest.raises(ConfigurationError):
        TransientSolver(dt_s=0.0)
    with pytest.raises(ConfigurationError):
        TransientSolver(max_step_v=0.0)
    with pytest.raises(ConfigurationError):
        TransientSolver().run(cell, RampSupply(1.0, 1e-9), 0.0)
