"""Metastability at the circuit level: the perfectly symmetric cell.

The bit-level simulator's "noisy cells" are the ones whose offsets sit near
zero; at circuit level the same cells are the ones whose power-up race has
no winner within the transient window.  This test pins the correspondence.
"""

import pytest

from repro.spice import Cell6T, simulate_power_up


def test_perfectly_symmetric_cell_is_metastable():
    cell = Cell6T.predictive_45nm()  # zero mismatch anywhere
    result = simulate_power_up(cell)
    # With literally identical inverters the deterministic solver cannot
    # break the tie: both nodes track together and never separate.
    assert not result.resolved


def test_tiny_mismatch_resolves_slowly():
    """Near-metastable cells resolve, but later than healthy ones —
    the physical origin of power-up noise sensitivity."""
    marginal = Cell6T.predictive_45nm(m4_vth_offset=-0.002)
    healthy = Cell6T.predictive_45nm(m4_vth_offset=-0.05)
    t_marginal = simulate_power_up(marginal, duration_s=20e-9)
    t_healthy = simulate_power_up(healthy)
    assert t_healthy.resolved
    if t_marginal.resolved:
        assert t_marginal.settle_time_s >= t_healthy.settle_time_s


def test_mismatch_threshold_for_resolution():
    """Sweep mismatch: the race outcome is deterministic once mismatch
    clears the metastable window."""
    outcomes = []
    for mv in (0.005, 0.01, 0.03, 0.06):
        result = simulate_power_up(
            Cell6T.predictive_45nm(m4_vth_offset=-mv), duration_s=10e-9
        )
        outcomes.append((mv, result.resolved, result.power_on_state))
    resolved = [o for o in outcomes if o[1]]
    assert resolved, "at least the large-mismatch cells must resolve"
    # Every resolved cell lands on the M4-advantage outcome: state 1.
    assert all(state == 1 for _, _, state in resolved)
