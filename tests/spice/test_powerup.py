"""Power-up race experiments: the Figure 2 behaviour at circuit level."""

import pytest

from repro.spice import Cell6T, simulate_power_up


def test_m4_advantage_powers_on_to_one():
    """Paper §2.1: M4 turning on first pulls node A to Vdd -> state 1."""
    cell = Cell6T.predictive_45nm(m4_vth_offset=-0.03)
    result = simulate_power_up(cell)
    assert result.resolved
    assert result.power_on_state == 1


def test_m2_advantage_powers_on_to_zero():
    cell = Cell6T.predictive_45nm(m2_vth_offset=-0.03)
    result = simulate_power_up(cell)
    assert result.resolved
    assert result.power_on_state == 0


def test_aging_flips_the_race_figure_2b():
    """The paper's core mechanism: NBTI-age the winning pull-up (M4) until
    the other inverter wins the power-up race."""
    cell = Cell6T.predictive_45nm(m4_vth_offset=-0.03)
    assert simulate_power_up(cell).power_on_state == 1
    aged = cell.aged(m4_delta=0.08)  # stress while the cell holds 1
    result = simulate_power_up(aged)
    assert result.resolved
    assert result.power_on_state == 0


def test_aged_cell_settles_later_than_fresh():
    """Figure 2b's red waveforms settle later: the aged pull-up is slower."""
    fresh = Cell6T.predictive_45nm(m4_vth_offset=-0.03)
    slightly_aged = fresh.aged(m4_delta=0.02)  # not enough to flip
    t_fresh = simulate_power_up(fresh).settle_time_s
    t_aged = simulate_power_up(slightly_aged).settle_time_s
    assert simulate_power_up(slightly_aged).power_on_state == 1
    assert t_aged >= t_fresh


def test_settle_time_within_nanoseconds():
    """Paper: 'after 2 ns of powering the cell up, nodes settle'."""
    cell = Cell6T.predictive_45nm(m4_vth_offset=-0.03)
    result = simulate_power_up(cell)
    assert result.settle_time_s < 5e-9


def test_waveform_rows_exported():
    cell = Cell6T.predictive_45nm(m4_vth_offset=-0.03)
    rows = simulate_power_up(cell).waveform_rows()
    assert len(rows) > 100
    t, vdd, va, vb = rows[-1]
    assert vdd == pytest.approx(1.0)
