"""Unit tests for the 6T cell netlist."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.mosfet import MOSFET, MOSType
from repro.spice.cell6t import Cell6T, CellTransistors


@pytest.fixture
def cell():
    return Cell6T.predictive_45nm(m4_vth_offset=-0.03)


def test_factory_builds_valid_cell(cell):
    assert cell.transistors.m4_pmos.vth == pytest.approx(0.32)
    assert cell.transistors.m2_pmos.vth == pytest.approx(0.35)


def test_wrong_polarity_rejected():
    n = MOSFET(MOSType.NMOS, 0.35, 1e-4)
    p = MOSFET(MOSType.PMOS, 0.35, 1e-4)
    with pytest.raises(ConfigurationError):
        CellTransistors(m1_nmos=p, m2_pmos=p, m3_nmos=n, m4_pmos=p)


def test_nonpositive_capacitance_rejected(cell):
    with pytest.raises(ConfigurationError):
        Cell6T(transistors=cell.transistors, node_capacitance_f=0.0)


def test_aging_returns_new_cell(cell):
    aged = cell.aged(m4_delta=0.08)
    assert aged is not cell
    assert aged.transistors.m4_pmos.vth == pytest.approx(0.40)
    assert cell.transistors.m4_pmos.vth == pytest.approx(0.32)


class TestNodeDerivatives:
    def test_grounded_cell_unpowered_is_static(self, cell):
        da, db = cell.node_derivatives(0.0, 0.0, 0.0)
        assert da == 0.0 and db == 0.0

    def test_pullup_charges_low_node(self, cell):
        # Node B low, node A low, rail high: both pull-ups fight to charge.
        da, db = cell.node_derivatives(0.0, 0.0, 1.0)
        assert da > 0 and db > 0

    def test_stronger_pullup_charges_faster(self, cell):
        # M4 (driving A) has the lower |vth|: node A must charge faster.
        da, db = cell.node_derivatives(0.0, 0.0, 1.0)
        assert da > db

    def test_stable_state_is_self_reinforcing(self, cell):
        # A=1, B=0 is a stable latch point: derivatives push toward rails.
        da, db = cell.node_derivatives(1.0, 0.0, 1.0)
        assert da >= 0.0
        assert db <= 0.0
