"""Unit tests for device-state snapshots (campaign resume)."""

import numpy as np
import pytest

from repro.bitutils import bit_error_rate, invert_bits
from repro.device import make_device
from repro.errors import ConfigurationError, PowerError
from repro.harness import ControlBoard
from repro.io import load_device_state, save_device_state


@pytest.fixture
def encoded(random_payload, tmp_path):
    device = make_device("MSP432P401", rng=500, sram_kib=1)
    board = ControlBoard(device)
    payload = random_payload(device.sram.n_bits, seed=50)
    board.encode_message(payload, use_firmware=False, camouflage=False)
    return device, board, payload, tmp_path


def test_snapshot_resume_preserves_channel(encoded):
    device, board, payload, tmp_path = encoded
    path = tmp_path / "state.npz"
    save_device_state(path, device)

    # A fresh device of the same model, restored from the snapshot,
    # decodes the message exactly as the original would.
    resumed = make_device("MSP432P401", rng=501, sram_kib=1)
    load_device_state(path, resumed)
    resumed_board = ControlBoard(resumed)
    error = bit_error_rate(
        payload, invert_bits(resumed_board.majority_power_on_state(5))
    )
    assert error == pytest.approx(0.065, abs=0.02)


def test_snapshot_keeps_device_id(encoded):
    device, _, _, tmp_path = encoded
    path = tmp_path / "state.npz"
    save_device_state(path, device)
    resumed = make_device("MSP432P401", rng=502, sram_kib=1)
    load_device_state(path, resumed)
    assert resumed.device_id == device.device_id


def test_campaign_can_continue_after_resume(encoded):
    """Shelve-sample campaigns resume mid-way with consistent physics."""
    device, board, payload, tmp_path = encoded
    from repro.units import days

    device.advance(days(7))
    path = tmp_path / "week1.npz"
    save_device_state(path, device)
    # Continue on the original...
    device.advance(days(21))
    original = bit_error_rate(
        payload, invert_bits(board.majority_power_on_state(5))
    )
    # ...and on the resumed copy.
    resumed = make_device("MSP432P401", rng=503, sram_kib=1)
    load_device_state(path, resumed)
    resumed.advance(days(21))
    resumed_err = bit_error_rate(
        payload,
        invert_bits(ControlBoard(resumed).majority_power_on_state(5)),
    )
    assert resumed_err == pytest.approx(original, abs=0.01)


def test_powered_device_rejected(encoded):
    device, board, _, tmp_path = encoded
    board.power_on_nominal()
    with pytest.raises(PowerError):
        save_device_state(tmp_path / "x.npz", device)
    board.power_off()


def test_model_mismatch_rejected(encoded):
    device, _, _, tmp_path = encoded
    path = tmp_path / "state.npz"
    save_device_state(path, device)
    other_model = make_device("ATSAML11E16A", rng=504, sram_kib=1)
    with pytest.raises(ConfigurationError):
        load_device_state(path, other_model)


def test_size_mismatch_rejected(encoded):
    device, _, _, tmp_path = encoded
    path = tmp_path / "state.npz"
    save_device_state(path, device)
    bigger = make_device("MSP432P401", rng=505, sram_kib=2)
    with pytest.raises(ConfigurationError):
        load_device_state(path, bigger)


def test_snapshot_roundtrip_with_deferred_relax(encoded):
    """Shelf time deferred as pending_relax must survive save/load: the
    snapshot folds it into the per-cell clocks and the restored device
    carries no stale pending state."""
    device, _, _, tmp_path = encoded
    device.sram.shelve(3600.0)  # deferred, not yet folded
    path = tmp_path / "state.npz"
    save_device_state(path, device)
    assert device.sram.age_when_1.pending_relax == 0.0  # folded by save

    resumed = make_device("MSP432P401", rng=502, sram_kib=1)
    resumed.sram.shelve(7200.0)  # target's own pending state: discarded
    load_device_state(path, resumed)
    assert resumed.sram.age_when_1.pending_relax == 0.0
    assert resumed.sram.age_when_0.pending_relax == 0.0
    assert np.array_equal(
        resumed.sram.age_when_1.relax_seconds, device.sram.age_when_1.relax_seconds
    )
    assert np.array_equal(resumed.sram.offsets(), device.sram.offsets())
