"""Property-based tests (hypothesis) over the core data paths."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitutils import bits_to_bytes, bytes_to_bits, invert_bits, majority_vote
from repro.core.message import FrameFormat, build_payload, extract_message
from repro.crypto import AES, AesCbc, AesCtr
from repro.ecc import ConcatenatedCode, HammingCode, RepetitionCode, hamming_7_4
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_word
from repro.isa.opcodes import WORD_BYTES

bits_arrays = st.lists(st.integers(0, 1), min_size=8, max_size=512).map(
    lambda xs: np.array(xs[: len(xs) // 8 * 8], dtype=np.uint8)
)


@given(data=st.binary(min_size=1, max_size=256))
def test_bytes_bits_round_trip(data):
    assert bits_to_bytes(bytes_to_bits(data)) == data


@given(bits=bits_arrays)
def test_invert_is_involution(bits):
    assert np.array_equal(invert_bits(invert_bits(bits)), bits)


@given(
    bits=bits_arrays,
    copies=st.sampled_from([1, 3, 5, 7]),
    layout=st.sampled_from(["block", "bitwise"]),
)
def test_repetition_round_trip(bits, copies, layout):
    code = RepetitionCode(copies, layout=layout)
    assert np.array_equal(code.decode(code.encode(bits)), bits)


@given(
    data=st.lists(st.integers(0, 1), min_size=4, max_size=64).map(
        lambda xs: np.array(xs[: len(xs) // 4 * 4] or [0, 0, 0, 0], dtype=np.uint8)
    ),
    error_pos=st.integers(0, 6),
)
def test_hamming_corrects_every_single_error(data, error_pos):
    code = hamming_7_4()
    coded = code.encode(data)
    coded[error_pos] ^= 1  # corrupt the first block
    assert np.array_equal(code.decode(coded), data)


@given(r=st.integers(2, 5), seed=st.integers(0, 1000))
def test_general_hamming_round_trip(r, seed):
    code = HammingCode(r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, code.k * 3).astype(np.uint8)
    assert np.array_equal(code.decode(code.encode(data)), data)


@given(
    copies=st.sampled_from([3, 5]),
    seed=st.integers(0, 500),
)
def test_concatenated_round_trip(copies, seed):
    code = ConcatenatedCode(hamming_7_4(), RepetitionCode(copies))
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, code.k * 5).astype(np.uint8)
    assert np.array_equal(code.decode(code.encode(data)), data)


@given(
    key=st.binary(min_size=16, max_size=16),
    block=st.binary(min_size=16, max_size=16),
)
@settings(max_examples=30)
def test_aes_encrypt_decrypt_inverse(key, block):
    aes = AES(key)
    assert aes.decrypt_block(aes.encrypt_block(block)) == block


@given(
    key=st.binary(min_size=16, max_size=16),
    nonce=st.binary(min_size=12, max_size=12),
    message=st.binary(min_size=0, max_size=200),
)
@settings(max_examples=30)
def test_ctr_involution(key, nonce, message):
    ctr = AesCtr(key, nonce)
    assert ctr.decrypt(ctr.encrypt(message)) == message


@given(
    key=st.binary(min_size=16, max_size=16),
    iv=st.binary(min_size=16, max_size=16),
    n_blocks=st.integers(1, 8),
    seed=st.integers(0, 100),
)
@settings(max_examples=30)
def test_cbc_round_trip(key, iv, n_blocks, seed):
    rng = np.random.default_rng(seed)
    message = rng.integers(0, 256, 16 * n_blocks, dtype=np.uint8).tobytes()
    cbc = AesCbc(key, iv)
    assert cbc.decrypt(cbc.encrypt(message)) == message


@given(message=st.binary(min_size=0, max_size=400))
@settings(max_examples=50)
def test_framing_round_trip(message):
    payload = build_payload(message, 16 * 1024)
    assert extract_message(payload) == message


@given(message=st.binary(min_size=1, max_size=100), length=st.integers(1, 100))
@settings(max_examples=30)
def test_raw_framing_respects_declared_length(message, length):
    frame = FrameFormat(framed=False)
    payload = build_payload(message, 16 * 1024, frame=frame)
    out = extract_message(
        payload, frame=frame, message_len=min(length, len(message))
    )
    assert out == message[: min(length, len(message))]


@given(
    n_samples=st.sampled_from([1, 3, 5]),
    seed=st.integers(0, 100),
)
def test_majority_of_identical_samples_is_identity(n_samples, seed):
    rng = np.random.default_rng(seed)
    row = rng.integers(0, 2, 64).astype(np.uint8)
    samples = np.tile(row, (n_samples, 1))
    assert np.array_equal(majority_vote(samples), row)


@given(
    rd=st.integers(0, 15),
    rs1=st.integers(0, 15),
    rs2=st.integers(0, 15),
)
def test_r_type_assemble_disassemble_round_trip(rd, rs1, rs2):
    source = f"add r{rd}, r{rs1}, r{rs2}\n"
    prog = assemble(source)
    word = int.from_bytes(prog.image[:WORD_BYTES], "little")
    assert disassemble_word(word) == source.strip()
