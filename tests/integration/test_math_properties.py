"""Mathematical invariants of the statistics and codes.

These properties hold by theory; testing them catches implementation drift
that example-based tests miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import BCHCode, HammingCode, hamming_7_4
from repro.stats import morans_i, shannon_entropy
from repro.stats.welch import welch_t_test


class TestLinearity:
    """Hamming and BCH are linear codes: enc(a ^ b) = enc(a) ^ enc(b)."""

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_hamming_linearity(self, seed):
        code = hamming_7_4()
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, 4).astype(np.uint8)
        b = rng.integers(0, 2, 4).astype(np.uint8)
        assert np.array_equal(
            code.encode(a ^ b), code.encode(a) ^ code.encode(b)
        )

    @given(seed=st.integers(0, 2000), r=st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_general_hamming_linearity(self, seed, r):
        code = HammingCode(r)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, code.k).astype(np.uint8)
        b = rng.integers(0, 2, code.k).astype(np.uint8)
        assert np.array_equal(
            code.encode(a ^ b), code.encode(a) ^ code.encode(b)
        )

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_bch_linearity(self, seed):
        code = BCHCode(4, 2)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, code.k).astype(np.uint8)
        b = rng.integers(0, 2, code.k).astype(np.uint8)
        assert np.array_equal(
            code.encode(a ^ b), code.encode(a) ^ code.encode(b)
        )

    def test_zero_maps_to_zero(self):
        for code in (hamming_7_4(), BCHCode(4, 2), HammingCode(4)):
            zero = np.zeros(code.k, dtype=np.uint8)
            assert not code.encode(zero).any(), code.name


class TestMoransInvariance:
    @given(seed=st.integers(0, 1000), scale=st.floats(0.1, 50.0),
           shift=st.floats(-100.0, 100.0))
    @settings(max_examples=25, deadline=None)
    def test_affine_invariance(self, seed, scale, shift):
        """Moran's I is invariant under x -> a*x + b (a != 0)."""
        rng = np.random.default_rng(seed)
        grid = rng.standard_normal((12, 12))
        base = morans_i(grid)
        transformed = morans_i(scale * grid + shift)
        assert transformed.statistic == pytest.approx(base.statistic, rel=1e-9)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        grid = rng.standard_normal((10, 10))
        result = morans_i(grid)
        # Rook-lattice Moran's I is bounded by ~|1| + small-edge slack.
        assert -1.3 < result.statistic < 1.3


class TestEntropyInvariance:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_byte_permutation_invariance(self, seed):
        """Symbol entropy depends on frequencies, not positions."""
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, 512, dtype=np.uint8)
        shuffled = rng.permutation(data)
        from repro.bitutils import bytes_to_bits

        assert shannon_entropy(bytes_to_bits(data.tobytes())) == pytest.approx(
            shannon_entropy(bytes_to_bits(shuffled.tobytes()))
        )

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_entropy_bounds(self, seed):
        rng = np.random.default_rng(seed)
        from repro.bitutils import bytes_to_bits

        bits = bytes_to_bits(rng.integers(0, 256, 1024, dtype=np.uint8).tobytes())
        h = shannon_entropy(bits)
        assert 0.0 <= h <= 8.0


class TestWelchSymmetry:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_antisymmetric_statistic(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(0, 1, 20)
        b = rng.normal(0.5, 2, 25)
        fwd = welch_t_test(a, b)
        rev = welch_t_test(b, a)
        assert fwd.t_statistic == pytest.approx(-rev.t_statistic)
        assert fwd.p_value_two_sided == pytest.approx(rev.p_value_two_sided)

    @given(seed=st.integers(0, 500), shift=st.floats(-5.0, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_translation_covariance(self, seed, shift):
        """Shifting both samples equally leaves the statistic unchanged."""
        rng = np.random.default_rng(seed)
        a = rng.normal(0, 1, 15)
        b = rng.normal(1, 1, 15)
        base = welch_t_test(a, b)
        moved = welch_t_test(a + shift, b + shift)
        assert moved.t_statistic == pytest.approx(base.t_statistic, rel=1e-9)
