"""Failure injection: the unhappy paths a field deployment hits."""

import numpy as np
import pytest

from repro.bitutils import bit_error_rate, invert_bits
from repro.core.pipeline import InvisibleBits
from repro.device import make_device
from repro.ecc import RepetitionCode
from repro.errors import DeviceError, OverstressError, PowerError
from repro.harness import ControlBoard

KEY = b"failure-key-16by"


class TestPowerFailures:
    def test_power_loss_during_staging_recovers(self, random_payload):
        """Power dies after staging but before stress: re-staging works and
        the final encode is unaffected."""
        device = make_device("MSP432P401", rng=90, sram_kib=1)
        board = ControlBoard(device)
        payload = random_payload(device.sram.n_bits, seed=30)
        board.stage_payload(payload, use_firmware=False)
        board.power_off()  # the cable falls out
        board.stage_payload(payload, use_firmware=False)
        board.encode(stress_hours=10.0)
        board.power_off()
        error = bit_error_rate(
            payload, invert_bits(board.majority_power_on_state(5))
        )
        assert error == pytest.approx(0.065, abs=0.02)

    def test_interrupted_stress_resumes_cumulatively(self, random_payload):
        """Stress in two halves equals stress in one run (the model's
        additive equivalent-time property, which the paper's three
        two-hour cycles rely on)."""
        errors = []
        for halves in (False, True):
            device = make_device("MSP432P401", rng=91, sram_kib=1)
            board = ControlBoard(device)
            payload = random_payload(device.sram.n_bits, seed=31)
            board.stage_payload(payload, use_firmware=False)
            if halves:
                board.encode(stress_hours=5.0)
                board.power_off()
                board.stage_payload(payload, use_firmware=False)
                board.encode(stress_hours=5.0)
            else:
                board.encode(stress_hours=10.0)
            board.power_off()
            errors.append(
                bit_error_rate(
                    payload, invert_bits(board.majority_power_on_state(5))
                )
            )
        assert errors[0] == pytest.approx(errors[1], abs=0.01)

    def test_overstress_raises_before_damage(self):
        device = make_device("MSP432P401", rng=92, sram_kib=1)
        board = ControlBoard(device)
        board.power_on_nominal()
        with pytest.raises(OverstressError):
            device.set_supply(device.spec.technology.vdd_abs_max + 1.0)

    def test_double_power_cycle_guard(self):
        device = make_device("MSP432P401", rng=93, sram_kib=1)
        device.power_on()
        with pytest.raises(PowerError):
            device.power_on()


class TestColdBootStyleAdversary:
    def test_fast_undrained_cycle_reveals_only_digital_contents(
        self, random_payload
    ):
        """A remanence ("cold boot") read steals what software left in
        SRAM — which after camouflage is worthless — while the analog
        message stays both present and invisible."""
        device = make_device("MSP432P401", rng=94, sram_kib=2)
        board = ControlBoard(device)
        channel = InvisibleBits(
            board, key=KEY, ecc=RepetitionCode(7), use_firmware=False
        )
        channel.send(b"analog only")

        # Adversary writes bait, power-cycles fast without draining.
        board.power_on_nominal()
        bait = random_payload(device.sram.n_bits, seed=32)
        board.debug.write_sram_bits(bait)
        board.supply.off(drain=False)
        device.advance(0.001)  # 1 ms gap, tau = 0.25 s
        stolen = device.power_on(boot=False)
        device.power_off()
        # The cold boot faithfully recovers the *digital* contents...
        assert bit_error_rate(bait, stolen) < 0.05
        # ...but the hidden message is untouched and still decodes.
        assert channel.receive().message == b"analog only"

    def test_harness_discipline_defeats_remanence(self, random_payload):
        """The paper's measurement rule: drain the rail, and captures are
        true power-on states, not stale data."""
        device = make_device("MSP432P401", rng=95, sram_kib=1)
        device.power_on()
        bait = random_payload(device.sram.n_bits, seed=33)
        device.sram.write(bait)
        device.power_off(drain=True)
        device.advance(0.001)
        state = device.power_on()
        assert bit_error_rate(bait, state) == pytest.approx(0.5, abs=0.05)


class TestFirmwareFailures:
    def test_corrupted_flash_detected_at_boot(self):
        device = make_device("MSP432P401", rng=96, sram_kib=1)
        device.load_firmware(b"\xff\xff\xff\xff" * 4)  # 0x3F opcodes
        from repro.errors import EmulatorError

        with pytest.raises(EmulatorError):
            device.power_on()

    def test_payload_too_big_for_flash(self):
        device = make_device("MSP430G2553", rng=97, sram_kib=0.5)
        board = ControlBoard(device)
        # 0.5 KiB SRAM -> payload fits SRAM, but the generated program
        # (payload + code) must also fit the 16 KiB flash: it does.
        payload = np.random.default_rng(34).integers(
            0, 2, device.sram.n_bits
        ).astype(np.uint8)
        board.stage_payload(payload, use_firmware=True)
        assert device.cpu.spinning

    def test_wrong_device_capacity_rejected_early(self):
        device = make_device("MSP432P401", rng=98, sram_kib=1)
        board = ControlBoard(device)
        channel = InvisibleBits(board, ecc=RepetitionCode(9), use_firmware=False)
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            channel.send(b"x" * 2000)
        assert not device.powered  # failed cleanly before touching power
