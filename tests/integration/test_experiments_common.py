"""Unit tests for the experiments' shared infrastructure."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult, make_varied_device


class TestExperimentResult:
    def test_row_arity_enforced(self):
        result = ExperimentResult("X", "d", ["a", "b"])
        with pytest.raises(ConfigurationError):
            result.add_row(1)

    def test_unknown_column_rejected(self):
        result = ExperimentResult("X", "d", ["a"])
        result.add_row(1)
        with pytest.raises(ConfigurationError):
            result.column("b")

    def test_to_text_contains_notes(self):
        result = ExperimentResult("X", "d", ["a"])
        result.add_row(3.14159)
        result.notes = "important caveat"
        text = result.to_text()
        assert "important caveat" in text
        assert "3.142" in text  # 4-sig-fig float formatting


class TestVariedDevice:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            make_varied_device("MSP432P401", rng=0, device_sigma=-0.1)

    def test_zero_sigma_matches_catalog(self):
        from repro.device.catalog import device_spec

        device = make_varied_device(
            "MSP432P401", rng=1, device_sigma=0.0, sram_kib=0.5
        )
        assert device.spec.technology.nbti_k_scale == pytest.approx(
            device_spec("MSP432P401").technology.nbti_k_scale
        )

    def test_spec_remains_well_formed(self):
        device = make_varied_device("MSP432P401", rng=2, sram_kib=0.5)
        assert device.spec.recipe.stress_hours == 10.0
        assert device.spec.name == "MSP432P401"
