"""Property-based tests for the extension modules (BCH, fuzzy, io, rack)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.bch import BCHCode
from repro.puf.fuzzy import FuzzyExtractor
from repro.puf.trng import von_neumann_extract


@st.composite
def bch_case(draw):
    m = draw(st.sampled_from([4, 5]))
    t = draw(st.integers(1, 3))
    code = BCHCode(m, t)
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, code.k).astype(np.uint8)
    n_errors = draw(st.integers(0, t))
    positions = draw(
        st.lists(
            st.integers(0, code.n - 1),
            min_size=n_errors,
            max_size=n_errors,
            unique=True,
        )
    )
    return code, data, positions


@given(case=bch_case())
@settings(max_examples=60, deadline=None)
def test_bch_corrects_any_pattern_within_t(case):
    code, data, positions = case
    codeword = code.encode(data)
    for position in positions:
        codeword[position] ^= 1
    assert np.array_equal(code.decode(codeword), data)


@given(
    copies=st.just(15),
    seed=st.integers(0, 1000),
    flip_fraction=st.floats(0.0, 0.10),
)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_fuzzy_extractor_stable_within_radius(copies, seed, flip_fraction):
    """Response noise well inside the repetition radius never changes the
    key: at <= 5% effective noise a 15-copy vote fails with probability
    ~2.5e-7 per key bit, so 32-bit keys are stable for every example."""
    extractor = FuzzyExtractor(copies=copies, secret_bits=32)
    rng = np.random.default_rng(seed)
    response = rng.integers(0, 2, extractor.response_bits).astype(np.uint8)
    key, helper = extractor.generate(response, rng=seed + 1)
    noisy = response ^ (rng.random(response.size) < flip_fraction * 0.5).astype(
        np.uint8
    )
    assert extractor.reproduce(noisy, helper) == key


@given(seed=st.integers(0, 10_000), bias=st.floats(0.05, 0.95))
@settings(max_examples=30, deadline=None)
def test_von_neumann_output_is_balanced(seed, bias):
    rng = np.random.default_rng(seed)
    raw = (rng.random(60_000) < bias).astype(np.uint8)
    out = von_neumann_extract(raw)
    if out.size > 3000:
        assert abs(float(out.mean()) - 0.5) < 0.05


@given(
    n_captures=st.integers(1, 6),
    n_bits=st.sampled_from([64, 256, 1024]),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_capture_serialization_round_trip(tmp_path_factory, n_captures, n_bits, seed):
    from repro.io import load_captures, save_captures

    rng = np.random.default_rng(seed)
    samples = rng.integers(0, 2, (n_captures, n_bits)).astype(np.uint8)
    path = tmp_path_factory.mktemp("io") / "caps.json"
    save_captures(path, samples, device_id=seed.to_bytes(4, "big"))
    loaded, info = load_captures(path)
    assert np.array_equal(loaded, samples)
    assert info["device_id"] == seed.to_bytes(4, "big")


@given(seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_bch_decode_of_valid_codeword_is_exact(seed):
    code = BCHCode(4, 2)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, code.k * 5).astype(np.uint8)
    assert np.array_equal(code.decode(code.encode(data)), data)
