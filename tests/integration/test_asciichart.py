"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.asciichart import ascii_chart, ascii_histogram


class TestChart:
    def test_renders_all_series_markers(self):
        art = ascii_chart(
            [1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]}, title="T"
        )
        assert "T" in art
        assert "*" in art and "o" in art
        assert "* a" in art and "o b" in art

    def test_extremes_labelled(self):
        art = ascii_chart([0, 10], {"s": [5.0, 25.0]})
        assert "25" in art
        assert "5" in art
        assert "10" in art  # x max

    def test_constant_series_does_not_crash(self):
        art = ascii_chart([0, 1, 2], {"flat": [2.0, 2.0, 2.0]})
        assert "flat" in art

    def test_monotone_curve_shape(self):
        """The marker for the max y must appear above the min y's row."""
        art = ascii_chart([0, 1, 2, 3], {"up": [0, 1, 2, 3]}, height=8)
        rows = [line for line in art.splitlines() if "|" in line]
        first_marked = next(i for i, r in enumerate(rows) if "*" in r)
        last_marked = max(i for i, r in enumerate(rows) if "*" in r)
        assert first_marked < last_marked

    @pytest.mark.parametrize(
        "call",
        [
            lambda: ascii_chart([1, 2], {}),
            lambda: ascii_chart([1], {"s": [1]}),
            lambda: ascii_chart([1, 2], {"s": [1]}),
            lambda: ascii_chart([1, 2], {"s": [1, 2]}, width=4),
        ],
    )
    def test_validation(self, call):
        with pytest.raises(ConfigurationError):
            call()


class TestHistogram:
    def test_bars_scale_to_peak(self):
        art = ascii_histogram(["a", "b"], [1.0, 2.0], width=10)
        lines = art.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([], [])
        with pytest.raises(ConfigurationError):
            ascii_histogram(["a"], [0.0])
