"""Determinism regression: the same seeds must give the same science.

Every number in EXPERIMENTS.md depends on this — a silent RNG-plumbing
change would invalidate the recorded measurements without failing any
physics test.  These tests rebuild small experiments twice and require
bit-identical outputs.
"""

import numpy as np

from repro.device import make_device
from repro.experiments import fig07_recovery, tab02_spatial
from repro.experiments.common import make_varied_device
from repro.harness import ControlBoard


class TestDeviceDeterminism:
    def test_same_seed_same_device(self):
        a = make_device("MSP432P401", rng=300, sram_kib=1)
        b = make_device("MSP432P401", rng=300, sram_kib=1)
        assert np.array_equal(a.sram.mismatch, b.sram.mismatch)
        assert a.device_id == b.device_id

    def test_same_seed_same_power_on_noise(self):
        a = make_device("MSP432P401", rng=301, sram_kib=1)
        b = make_device("MSP432P401", rng=301, sram_kib=1)
        assert np.array_equal(a.power_on(), b.power_on())

    def test_different_seeds_differ(self):
        a = make_device("MSP432P401", rng=302, sram_kib=1)
        b = make_device("MSP432P401", rng=303, sram_kib=1)
        assert not np.array_equal(a.sram.mismatch, b.sram.mismatch)

    def test_varied_device_deterministic(self):
        a = make_varied_device("MSP432P401", rng=304, sram_kib=1)
        b = make_varied_device("MSP432P401", rng=304, sram_kib=1)
        assert a.spec.technology.nbti_k_scale == b.spec.technology.nbti_k_scale
        assert np.array_equal(a.sram.mismatch, b.sram.mismatch)

    def test_varied_device_spreads_k(self):
        ks = {
            make_varied_device("MSP432P401", rng=s, sram_kib=0.5)
            .spec.technology.nbti_k_scale
            for s in range(305, 310)
        }
        assert len(ks) == 5


class TestPipelineDeterminism:
    def test_full_encode_capture_reproducible(self):
        def run():
            device = make_device("MSP432P401", rng=310, sram_kib=1)
            board = ControlBoard(device)
            payload = np.random.default_rng(311).integers(
                0, 2, device.sram.n_bits
            ).astype(np.uint8)
            board.encode_message(payload, use_firmware=False, camouflage=False)
            return board.majority_power_on_state(5)

        assert np.array_equal(run(), run())


class TestExperimentDeterminism:
    def test_tab02_reproducible(self):
        a = tab02_spatial.run(sram_kib=0.5, stress_hours=4.0)
        b = tab02_spatial.run(sram_kib=0.5, stress_hours=4.0)
        assert a.rows == b.rows

    def test_fig07_reproducible(self):
        a = fig07_recovery.run(sram_kib=0.5, n_weeks=2)
        b = fig07_recovery.run(sram_kib=0.5, n_weeks=2)
        assert a.rows == b.rows
