"""End-to-end anchors against the paper's headline numbers.

Each test here corresponds to a claim in the paper's abstract or evaluation
and exercises the full stack (device + harness + pipeline), not a single
module.
"""

import numpy as np
import pytest

from repro.bitutils import bit_error_rate, invert_bits
from repro.core import InvisibleBits
from repro.core.payloads import synthetic_image_bytes
from repro.device import make_device
from repro.ecc import RepetitionCode
from repro.ecc.product import paper_end_to_end_code
from repro.harness import ControlBoard
from repro.units import days

KEY = b"shared-key-16byt"


def encoded_rig(rng=71, kib=2, seed=23):
    device = make_device("MSP432P401", rng=rng, sram_kib=kib)
    board = ControlBoard(device)
    payload = np.random.default_rng(seed).integers(0, 2, device.sram.n_bits)
    payload = payload.astype(np.uint8)
    board.encode_message(payload, use_firmware=False, camouflage=False)
    return board, payload


class TestAbstractClaims:
    def test_over_90_percent_bit_rate(self):
        """Abstract: 'over 90% capacity' — raw bit rate on the MSP432."""
        board, payload = encoded_rig()
        err = bit_error_rate(payload, invert_bits(board.majority_power_on_state(5)))
        assert 1.0 - err > 0.90

    def test_shelved_for_a_month_still_within_10_percent(self):
        """§5.1.3: 'error increases ~1.6x after one month, which still keeps
        the error within 10%'."""
        board, payload = encoded_rig()
        base = bit_error_rate(
            payload, invert_bits(board.majority_power_on_state(5))
        )
        # capture loop leaves the device powered off; just let time pass
        board.device.advance(days(30))
        after = bit_error_rate(
            payload, invert_bits(board.majority_power_on_state(5))
        )
        assert 1.3 < after / base < 1.9
        assert after < 0.12

    def test_copy_tolerant(self):
        """Abstract: sampling the power-on state does not alter the payload."""
        board, payload = encoded_rig()
        first = bit_error_rate(
            payload, invert_bits(board.majority_power_on_state(5))
        )
        for _ in range(10):
            board.majority_power_on_state(5)
        last = bit_error_rate(
            payload, invert_bits(board.majority_power_on_state(5))
        )
        assert abs(last - first) < 0.01

    def test_erase_write_tolerant(self):
        """Abstract: the channel survives the adversary overwriting SRAM."""
        board, payload = encoded_rig()
        base = bit_error_rate(
            payload, invert_bits(board.majority_power_on_state(5))
        )
        # Adversary scribbles over all of SRAM, repeatedly, then hands back.
        rng = np.random.default_rng(0)
        board.power_on_nominal()
        for _ in range(5):
            board.debug.write_sram_bits(
                rng.integers(0, 2, board.device.sram.n_bits).astype(np.uint8)
            )
        board.device.run_workload(3600.0)
        board.power_off()
        after = bit_error_rate(
            payload, invert_bits(board.majority_power_on_state(5))
        )
        assert after < base * 1.1 + 0.01


class TestEndToEndFigure13:
    def test_image_smuggling_round_trip(self):
        """Figure 1/13: an image goes in encrypted, comes back intact."""
        device = make_device("MSP432P401", rng=81, sram_kib=4)
        board = ControlBoard(device)
        channel = InvisibleBits(
            board, key=KEY, ecc=paper_end_to_end_code(7), use_firmware=False
        )
        image = synthetic_image_bytes(300, rng=9)
        channel.send(image)
        assert channel.receive().message == image

    def test_constant_time_property(self):
        """Abstract: encoding time is set by stress, not payload size."""
        device = make_device("MSP432P401", rng=91, sram_kib=2)
        board = ControlBoard(device)
        channel = InvisibleBits(board, key=KEY, ecc=RepetitionCode(5),
                                use_firmware=False)
        small = channel.send(b"x")
        assert small.stress_hours == 10.0
        channel2 = InvisibleBits(
            ControlBoard(make_device("MSP432P401", rng=92, sram_kib=2)),
            key=KEY, ecc=RepetitionCode(5), use_firmware=False,
        )
        big = channel2.send(b"y" * 300)
        assert big.stress_hours == small.stress_hours
