"""Smoke tests over the experiment modules at reduced sizes.

The benchmark harness runs the full-size experiments; these tests keep the
experiment code covered by the plain test suite with small, fast inputs.
"""

import pytest

from repro.experiments import (
    ablations,
    fig01_image,
    fig02_waveforms,
    fig06_stress_time,
    fig07_recovery,
    fig08_repetition_visual,
    fig09_copies_stress,
    fig10_hamming,
    fig11_weights,
    fig12_entropy,
    fig13_end_to_end,
    fig14_multisnapshot,
    fig15_tradeoff,
    sec514_normal_operation,
    sec74_adversarial,
    tab02_spatial,
    tab03_comparison,
    tab04_devices,
    tab05_indistinguishability,
)
from repro.experiments.common import ExperimentResult


def rows_of(out) -> list:
    result = out.result if hasattr(out, "result") else out
    assert isinstance(result, ExperimentResult)
    assert result.rows
    return result.rows


def test_fig01_small():
    rows_of(fig01_image.run(sram_kib=1))


def test_fig02():
    data = fig02_waveforms.run(duration_ns=3.0)
    assert data.fresh.power_on_state != data.aged.power_on_state


def test_fig06_small():
    result = fig06_stress_time.run(
        n_devices=2, sram_kib=0.5, stress_hours=(2, 10)
    )
    means = result.column("mean_error")
    assert means[0] > means[-1]


def test_fig07_small():
    result = fig07_recovery.run(sram_kib=0.5, n_weeks=2)
    assert len(result.rows) == 3


def test_fig08_small():
    panels = fig08_repetition_visual.run(copies_list=(1, 3), sram_kib=1)
    assert set(panels.images) == {1, 3}


def test_fig09_small():
    rows_of(fig09_copies_stress.run(
        stress_budgets=(4.0,), copies_list=(1, 5), sram_kib=1
    ))


def test_fig10_small():
    rows_of(fig10_hamming.run(copies_list=(1, 5), sram_kib=2))


def test_fig11_small():
    rows_of(fig11_weights.run(sram_kib=2))


def test_fig12_small():
    rows_of(fig12_entropy.run(sram_kib=2))


def test_fig13_small():
    rows = dict(rows_of(fig13_end_to_end.run(sram_kib=4)))
    assert rows["message recovered exactly"] is True


def test_fig14_small():
    rows_of(fig14_multisnapshot.run(sram_kib=1))


def test_fig15():
    rows_of(fig15_tradeoff.run(copies_list=(1, 5)))


def test_tab02_small():
    rows_of(tab02_spatial.run(sram_kib=1, stress_hours=4.0))


def test_tab03_small():
    rows_of(tab03_comparison.run(sram_kib=1, flash_kib=4))


def test_tab04_small():
    rows_of(tab04_devices.run(sram_kib=0.5))


def test_tab05_small():
    data = tab05_indistinguishability.run(
        sram_kib=1, n_plain=1, n_clean=2, n_encrypted=2
    )
    assert not data.null_rejected


def test_sec514_small():
    rows_of(sec514_normal_operation.run(sram_kib=1, operation_days=3))


def test_sec74_small():
    rows_of(sec74_adversarial.run(sram_kib=1))


def test_ablations():
    rows_of(ablations.run_capture_votes(sram_kib=1))
    rows_of(ablations.run_cipher_mode(n_bytes=1024))
    rows_of(ablations.run_ecc_order())
    rows_of(ablations.run_interleaver())


def test_experiment_result_helpers():
    result = ExperimentResult("X", "desc", ["a", "b"])
    result.add_row(1, 2.5)
    assert result.column("a") == [1]
    assert "X" in result.to_text()
    with pytest.raises(Exception):
        result.add_row(1)
    with pytest.raises(Exception):
        result.column("missing")
