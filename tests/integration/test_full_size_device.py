"""One full-size run: the complete 64 KiB MSP432, exactly as in the paper.

Everything else in the suite uses SRAM slices for speed; these tests prove
the stack holds at the real device size, including the §5.3 capacity
arithmetic (12.8 KiB of payload at 5 copies) and the re-encoding
degradation a reused carrier device suffers.
"""

import numpy as np
import pytest

from repro.bitutils import bit_error_rate, bytes_to_bits, invert_bits
from repro.core.message import max_message_bytes
from repro.core.pipeline import InvisibleBits
from repro.device import make_device
from repro.ecc import RepetitionCode
from repro.ecc.product import paper_end_to_end_code
from repro.harness import ControlBoard

KEY = b"fullsize-key-16b"


def test_full_size_capacity_matches_paper():
    """§5.3: 'Using five copies allows Invisible Bits to hide 12.8KB'."""
    device_bits = 64 * 1024 * 8
    capacity = max_message_bytes(device_bits, ecc=RepetitionCode(5))
    assert capacity == pytest.approx(12.8 * 1024, rel=0.01)


def test_full_size_end_to_end_five_copies():
    """10 KiB through the full-size device at 5 copies: raw channel at the
    Table 4 rate and residual message error at the §5.3 <0.3% level (five
    copies trade capacity for *low*, not zero, error — 13 copies or the
    Hamming stack are the zero-error configurations, Figure 10)."""
    device = make_device("MSP432P401", rng=4096)
    board = ControlBoard(device)
    channel = InvisibleBits(
        board, key=KEY, ecc=RepetitionCode(5), use_firmware=False
    )
    message = bytes(range(256)) * 40  # 10 KiB of payload
    sent = channel.send(message)
    result = channel.receive(expected_payload=sent.payload_bits)
    assert result.raw_error_vs == pytest.approx(0.065, abs=0.005)
    residual = bit_error_rate(
        bytes_to_bits(message), bytes_to_bits(result.message)
    )
    assert residual < 0.004  # paper's matching target: < 0.3%


def test_full_size_exact_recovery_with_paper_stack():
    """The §6 stack (Hamming(7,4) x 7 copies) recovers a 5 KiB message
    exactly on the full-size device."""
    device = make_device("MSP432P401", rng=4097)
    board = ControlBoard(device)
    channel = InvisibleBits(
        board, key=KEY, ecc=paper_end_to_end_code(7), use_firmware=False
    )
    message = bytes(range(256)) * 20  # 5 KiB
    channel.send(message)
    assert channel.receive().message == message


def test_full_size_bit_rate():
    """Abstract: >90% of 524,288 cells take their encoded value."""
    device = make_device("MSP432P401", rng=4098)
    board = ControlBoard(device)
    payload = np.random.default_rng(5).integers(
        0, 2, device.sram.n_bits
    ).astype(np.uint8)
    board.encode_message(payload, use_firmware=False, camouflage=False)
    state = board.majority_power_on_state(5)
    bit_rate = 1.0 - bit_error_rate(payload, invert_bits(state))
    assert bit_rate > 0.90


def test_reencoding_a_used_carrier_degrades():
    """A device that already carried one message fights its own history:
    the first payload's aging opposes the second's on half the cells.
    (The paper never re-uses a carrier; this documents why.)"""
    device = make_device("MSP432P401", rng=4099, sram_kib=2)
    board = ControlBoard(device)
    rng = np.random.default_rng(6)
    first = rng.integers(0, 2, device.sram.n_bits).astype(np.uint8)
    board.encode_message(first, use_firmware=False, camouflage=False)

    second = rng.integers(0, 2, device.sram.n_bits).astype(np.uint8)
    board.encode_message(second, use_firmware=False, camouflage=False)
    error = bit_error_rate(
        second, invert_bits(board.majority_power_on_state(5))
    )
    # Much worse than a fresh device's 6.5% — roughly: the half of the
    # cells whose first-message direction opposes the second start from
    # a large deficit.
    assert error > 0.15
