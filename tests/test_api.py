"""The repro.api façade: exact ``__all__``, validation, wire round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.api import (
    ReceiveRequest,
    ReceiveResult,
    SendRequest,
    SendResult,
    bits_digest,
    receive_result,
    send_result,
)
from repro.errors import ConfigurationError


def _public_names(module) -> set:
    import types

    return {
        name
        for name, obj in vars(module).items()
        if not name.startswith("_")
        and not isinstance(obj, types.ModuleType)
        and getattr(obj, "__module__", module.__name__) == module.__name__
    }


def test_all_is_exact():
    """Everything public in the façade is exported, and nothing else."""
    assert set(api.__all__) == _public_names(api)
    assert api.__all__ == sorted(api.__all__)
    assert len(set(api.__all__)) == len(api.__all__)


def test_star_import_gets_the_facade():
    namespace: dict = {}
    exec("from repro.api import *", namespace)
    assert set(api.__all__) <= set(namespace)


def test_facade_is_reexported_at_top_level():
    import repro

    for name in ("SendRequest", "SendResult", "ReceiveRequest",
                 "ReceiveResult", "bits_digest"):
        assert getattr(repro, name) is getattr(api, name)


# -- bits_digest -------------------------------------------------------------------


def test_bits_digest_stable_and_length_aware():
    bits = np.array([1, 0, 1, 1], dtype=np.uint8)
    assert bits_digest(bits) == bits_digest(bits.copy())
    assert len(bits_digest(bits)) == 16
    # Same packed bytes, different bit count -> different digest.
    assert bits_digest([1, 0]) != bits_digest([1, 0, 0])


def test_bits_digest_rejects_2d():
    with pytest.raises(ConfigurationError):
        bits_digest(np.zeros((2, 2), dtype=np.uint8))


# -- request validation ------------------------------------------------------------


def test_send_request_validation():
    with pytest.raises(ConfigurationError):
        SendRequest(device_id="", message=b"x")
    with pytest.raises(ConfigurationError):
        SendRequest(device_id="d", message=b"")
    with pytest.raises(ConfigurationError):
        SendRequest(device_id="d", message="not bytes")  # type: ignore[arg-type]
    with pytest.raises(ConfigurationError):
        SendRequest(device_id="d", message=b"x", stress_hours=0)


def test_receive_request_validation():
    with pytest.raises(ConfigurationError):
        ReceiveRequest(device_id="")
    with pytest.raises(ConfigurationError):
        ReceiveRequest(device_id="d", message_len=0)


def test_requests_are_frozen():
    request = SendRequest(device_id="d", message=b"x")
    with pytest.raises(AttributeError):
        request.device_id = "other"  # type: ignore[misc]


# -- wire round-trips --------------------------------------------------------------


def test_send_request_dict_roundtrip():
    request = SendRequest(
        device_id="dev-1", message=b"\x00\xff", stress_hours=2.5,
        camouflage=False,
    )
    assert SendRequest.from_dict(request.to_dict()) == request
    with pytest.raises(ConfigurationError):
        SendRequest.from_dict({"device_id": "d"})  # no message_hex


def test_receive_request_dict_roundtrip():
    request = ReceiveRequest(device_id="dev-2", message_len=12)
    assert ReceiveRequest.from_dict(request.to_dict()) == request


def test_send_result_dict_roundtrip():
    result = SendResult(
        device_id="dev-3", message_bytes=8, coded_bits=1024,
        stress_hours=12.0, encrypted=True, payload_digest="ab" * 8,
        shard="shard-1",
    )
    assert SendResult.from_dict(result.to_dict()) == result


def test_receive_result_dict_roundtrip():
    result = ReceiveResult(
        device_id="dev-4", message=b"hi", n_captures=5, total_captures=7,
        raw_ber=0.06, ecc_corrections=3, escalation_rounds=1,
        degraded=False, state_digest="cd" * 8, shard=None,
    )
    data = result.to_dict()
    assert "message" not in data and data["message_hex"] == b"hi".hex()
    assert ReceiveResult.from_dict(data) == result


# -- converters against the real pipeline ------------------------------------------


def test_converters_match_pipeline_results(small_board):
    from repro.core.pipeline import InvisibleBits
    from repro.core.scheme import paper_end_to_end_scheme

    channel = InvisibleBits(
        small_board, scheme=paper_end_to_end_scheme(copies=7),
        use_firmware=False,
    )
    encode = channel.send(b"facade")
    sent = send_result("dev-9", encode, shard="shard-0")
    assert sent.message_bytes == 6
    assert sent.coded_bits == encode.coded_bits
    assert sent.shard == "shard-0"
    assert sent.payload_digest == bits_digest(encode.payload_bits)

    decode = channel.receive(expected_payload=encode.payload_bits)
    received = receive_result("dev-9", decode)
    assert received.message == b"facade"
    assert received.raw_ber == decode.raw_error_vs
    assert received.state_digest == bits_digest(decode.power_on_state)
    assert received.shard is None


def test_handle_send_and_receive_round_trip(small_board):
    from repro.core.pipeline import InvisibleBits
    from repro.core.scheme import paper_end_to_end_scheme

    channel = InvisibleBits(
        small_board, scheme=paper_end_to_end_scheme(copies=7),
        use_firmware=False,
    )
    sent = channel.handle_send(
        SendRequest(device_id="dev-7", message=b"typed path")
    )
    assert isinstance(sent, SendResult)
    assert sent.device_id == "dev-7"
    received = channel.handle_receive(ReceiveRequest(device_id="dev-7"))
    assert isinstance(received, ReceiveResult)
    assert received.message == b"typed path"
