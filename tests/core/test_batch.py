"""Unit tests for fleet encoding and selection (§5.3 workflow)."""

import pytest

from repro.core.batch import encode_fleet
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def fleet():
    return encode_fleet(n_devices=5, sram_kib=1, rng=3)


def test_members_ranked_by_error(fleet):
    errors = fleet.errors
    assert errors == sorted(errors)
    assert fleet.winner.measured_error == errors[0]


def test_winner_beats_the_mean(fleet):
    mean = sum(fleet.errors) / len(fleet.errors)
    assert fleet.winner.measured_error <= mean


def test_scheme_meets_target(fleet):
    from repro.ecc.analysis import exact_residual_ber, repetition_residual_error
    from repro.ecc import RepetitionCode

    code = fleet.scheme
    if isinstance(code, RepetitionCode):
        residual = repetition_residual_error(
            fleet.winner.measured_error, code.copies
        )
    else:
        from repro.ecc.analysis import concatenated_residual_error

        residual = concatenated_residual_error(
            fleet.winner.measured_error, code.inner.copies
        )
    assert residual <= 1e-4 * 1.01


def test_winner_board_still_usable(fleet):
    state = fleet.winner.board.majority_power_on_state(3)
    assert state.size == fleet.winner.board.device.sram.n_bits


def test_single_device_fleet():
    fleet = encode_fleet(n_devices=1, sram_kib=1, rng=4)
    assert len(fleet.members) == 1


def test_validation():
    with pytest.raises(ConfigurationError):
        encode_fleet(n_devices=0)


def test_worker_count_does_not_change_results():
    """Per-device RNG streams are pre-assigned via SeedSequence.spawn, so
    the fleet is reproducible regardless of pool width."""
    serial = encode_fleet(n_devices=3, sram_kib=1, rng=9, max_workers=1)
    threaded = encode_fleet(n_devices=3, sram_kib=1, rng=9, max_workers=4)
    assert serial.errors == threaded.errors
    assert [m.index for m in serial.members] == [m.index for m in threaded.members]


def test_max_workers_validated():
    with pytest.raises(ConfigurationError):
        encode_fleet(n_devices=1, max_workers=0)
