"""Integration tests for the steganalysis suite (§6, Table 5)."""

import numpy as np
import pytest

from repro.core import InvisibleBits, analyze_power_on_state, compare_device_populations
from repro.core.steganalysis import SteganalysisReport
from repro.device import make_device
from repro.errors import ConfigurationError
from repro.harness import ControlBoard

KEY = b"0123456789abcdef"


from repro.core.payloads import synthetic_image_bytes


def structured_message(n_bytes: int) -> bytes:
    """An image-like message (long runs), as in the paper's Figure 1."""
    return synthetic_image_bytes(n_bytes, rng=5)


def capture_state(channel):
    state = channel.board.majority_power_on_state(5)
    return state


@pytest.fixture(scope="module")
def device_states():
    """Power-on states for clean / plaintext-encoded / encrypted-encoded."""
    states = {}
    # clean device
    dev = make_device("MSP432P401", rng=100, sram_kib=2)
    board = ControlBoard(dev)
    states["clean"] = (board.majority_power_on_state(5), dev.sram.grid_shape())
    # plaintext-encoded device
    dev_p = make_device("MSP432P401", rng=101, sram_kib=2)
    ch_p = InvisibleBits(ControlBoard(dev_p), use_firmware=False)
    ch_p.send(structured_message(1800))
    states["plain"] = (capture_state(ch_p), dev_p.sram.grid_shape())
    # encrypted-encoded device
    dev_e = make_device("MSP432P401", rng=102, sram_kib=2)
    ch_e = InvisibleBits(ControlBoard(dev_e), key=KEY, use_firmware=False)
    ch_e.send(structured_message(1800))
    states["encrypted"] = (capture_state(ch_e), dev_e.sram.grid_shape())
    return states


class TestSingleDeviceAnalysis:
    def test_clean_device_looks_clean(self, device_states):
        bits, grid = device_states["clean"]
        report = analyze_power_on_state(bits, grid)
        assert not report.looks_encoded()
        assert report.mean_bias == pytest.approx(0.5, abs=0.02)

    def test_plaintext_payload_detected(self, device_states):
        """Table 5: unencrypted messages show spatial structure and bias."""
        bits, grid = device_states["plain"]
        report = analyze_power_on_state(bits, grid)
        assert report.looks_encoded()
        assert report.morans_i.statistic > 0.05

    def test_encrypted_payload_undetected(self, device_states):
        """Table 5: encrypted payloads are indistinguishable from clean."""
        bits, grid = device_states["encrypted"]
        report = analyze_power_on_state(bits, grid)
        assert not report.looks_encoded()
        assert abs(report.morans_i.statistic) < 0.05
        assert report.mean_bias == pytest.approx(0.5, abs=0.02)

    def test_entropy_ordering_figure12(self, device_states):
        """Plaintext drops symbol entropy; encryption restores it."""
        from repro.stats import normalized_entropy

        clean = normalized_entropy(device_states["clean"][0])
        plain = normalized_entropy(device_states["plain"][0])
        enc = normalized_entropy(device_states["encrypted"][0])
        assert plain < clean
        assert enc == pytest.approx(clean, abs=0.002)

    def test_report_fields(self, device_states):
        bits, grid = device_states["clean"]
        report = analyze_power_on_state(bits, grid)
        assert isinstance(report, SteganalysisReport)
        assert report.weight_axis.shape == (129,)
        assert report.weight_density.sum() == pytest.approx(1.0)
        assert report.entropy_per_symbol.shape == (256,)

    def test_grid_mismatch_rejected(self, device_states):
        bits, _ = device_states["clean"]
        with pytest.raises(ConfigurationError):
            analyze_power_on_state(bits, (10, 10))


class TestPopulationComparison:
    def test_encrypted_vs_clean_not_distinguishable(self):
        """The §6 Welch's t-test: null not rejected (paper p = 0.071)."""
        clean, hidden = [], []
        for i in range(4):
            dev = make_device("MSP432P401", rng=200 + i, sram_kib=1)
            clean.append(ControlBoard(dev).majority_power_on_state(5))
        for i in range(4):
            dev = make_device("MSP432P401", rng=300 + i, sram_kib=1)
            ch = InvisibleBits(ControlBoard(dev), key=KEY, use_firmware=False)
            ch.send(structured_message(900))
            hidden.append(capture_state(ch))
        result = compare_device_populations(hidden, clean)
        assert not result.rejects_null(one_tailed=True)

    def test_needs_two_devices_each(self, device_states):
        bits, _ = device_states["clean"]
        with pytest.raises(ConfigurationError):
            compare_device_populations([bits], [bits, bits])
