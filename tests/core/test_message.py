"""Unit tests for message framing."""

import numpy as np
import pytest

from repro.core.message import (
    FrameFormat,
    build_payload,
    extract_message,
    max_message_bytes,
)
from repro.ecc import RepetitionCode, hamming_7_4
from repro.ecc.product import paper_end_to_end_code
from repro.errors import CapacityError, ConfigurationError, ExtractionError

SRAM_BITS = 16 * 1024


class TestFramedRoundTrip:
    @pytest.mark.parametrize("message", [b"", b"x", b"hello world", bytes(range(256))])
    def test_no_ecc(self, message):
        payload = build_payload(message, SRAM_BITS)
        assert payload.size == SRAM_BITS
        assert extract_message(payload) == message

    def test_with_repetition(self):
        code = RepetitionCode(3)
        payload = build_payload(b"secret", SRAM_BITS, ecc=code)
        assert extract_message(payload, ecc=code) == b"secret"

    def test_with_paper_stack(self):
        code = paper_end_to_end_code(7)
        payload = build_payload(b"dead drop", SRAM_BITS, ecc=code)
        assert extract_message(payload, ecc=code) == b"dead drop"

    def test_survives_channel_errors_with_ecc(self):
        code = paper_end_to_end_code(7)
        payload = build_payload(b"resilient", SRAM_BITS, ecc=code)
        rng = np.random.default_rng(0)
        noisy = payload ^ (rng.random(SRAM_BITS) < 0.05).astype(np.uint8)
        assert extract_message(noisy, ecc=code) == b"resilient"

    def test_header_survives_errors(self):
        payload = build_payload(b"hdr", SRAM_BITS)
        rng = np.random.default_rng(1)
        noisy = payload.copy()
        header_bits = FrameFormat().header_bits
        flips = rng.choice(header_bits, size=header_bits // 10, replace=False)
        noisy[flips] ^= 1
        # 10% of header bits flipped; 15-copy repetition still decodes.
        assert extract_message(noisy)[:3] == b"hdr"


class TestRawMode:
    def test_round_trip(self):
        frame = FrameFormat(framed=False)
        payload = build_payload(b"raw mode", SRAM_BITS, frame=frame)
        out = extract_message(payload, frame=frame, message_len=8)
        assert out == b"raw mode"

    def test_length_required(self):
        frame = FrameFormat(framed=False)
        payload = build_payload(b"raw", SRAM_BITS, frame=frame)
        with pytest.raises(ExtractionError):
            extract_message(payload, frame=frame)

    def test_raw_mode_has_no_header_overhead(self):
        frame = FrameFormat(framed=False)
        assert frame.header_bits == 0
        assert max_message_bytes(SRAM_BITS, frame=frame) == SRAM_BITS // 8


class TestCapacity:
    def test_overflow_rejected(self):
        big = bytes(SRAM_BITS)  # 8x too large
        with pytest.raises(CapacityError):
            build_payload(big, SRAM_BITS)

    def test_max_message_fits_exactly(self):
        limit = max_message_bytes(SRAM_BITS, ecc=hamming_7_4())
        message = b"\xAB" * limit
        payload = build_payload(message, SRAM_BITS, ecc=hamming_7_4())
        assert extract_message(payload, ecc=hamming_7_4()) == message

    def test_one_over_max_rejected(self):
        code = RepetitionCode(5)
        limit = max_message_bytes(SRAM_BITS, ecc=code)
        with pytest.raises(CapacityError):
            build_payload(b"\x00" * (limit + 40), SRAM_BITS, ecc=code)

    def test_sram_bits_validation(self):
        with pytest.raises(ConfigurationError):
            build_payload(b"x", 0)
        with pytest.raises(ConfigurationError):
            build_payload(b"x", 1001)  # not byte multiple


class TestHeader:
    def test_header_round_trip(self):
        frame = FrameFormat()
        header = frame.encode_header(123456)
        assert frame.decode_header(header) == 123456

    def test_header_length_limit(self):
        with pytest.raises(ConfigurationError):
            FrameFormat().encode_header(2**32)

    def test_even_copies_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameFormat(header_copies=4)

    def test_corrupt_header_detected_on_length_overflow(self):
        payload = build_payload(b"ok", SRAM_BITS)
        # Smash the header so it decodes to a huge length.
        payload[: FrameFormat().header_bits] = 1
        with pytest.raises(ExtractionError):
            extract_message(payload)
