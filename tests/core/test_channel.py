"""Unit tests for the BSC channel model."""

import pytest

from repro.core.channel import ChannelModel, bsc_capacity, measure_channel_error
from repro.device import make_device
from repro.device.catalog import device_spec
from repro.errors import ConfigurationError
from repro.harness import ControlBoard


class TestBscCapacity:
    def test_perfect_channel(self):
        assert bsc_capacity(0.0) == 1.0

    def test_coin_flip_channel(self):
        assert bsc_capacity(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self):
        assert bsc_capacity(0.1) == pytest.approx(bsc_capacity(0.9))

    def test_paper_operating_point(self):
        # 6.5% error channel: ~0.65 bits per cell of Shannon capacity.
        assert bsc_capacity(0.065) == pytest.approx(0.6498, abs=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bsc_capacity(1.5)


class TestChannelModel:
    @pytest.fixture
    def model(self):
        return ChannelModel(device_spec("MSP432P401"))

    def test_recipe_error_matches_table4(self, model):
        assert model.recipe_error() == pytest.approx(0.065, rel=1e-6)

    def test_error_monotone_in_time(self, model):
        assert model.error_at(2.0) > model.error_at(10.0)

    def test_hours_for_error_inverts(self, model):
        hours = model.hours_for_error(0.10)
        assert model.error_at(hours) == pytest.approx(0.10, rel=1e-6)

    def test_capacity_bits_scale(self, model):
        # 64 KiB at the recipe error: a few hundred kilobits of capacity.
        cap = model.capacity_bits()
        assert 0.5 * model.spec.sram_bits < cap < model.spec.sram_bits


class TestMeasuredChannel:
    def test_measured_error_matches_model(self, random_payload):
        device = make_device("MSP432P401", rng=51, sram_kib=2)
        board = ControlBoard(device)
        payload = random_payload(device.sram.n_bits, seed=8)
        board.encode_message(payload, use_firmware=False, camouflage=False)
        measured = measure_channel_error(board, payload)
        model = ChannelModel(device.spec)
        assert measured == pytest.approx(model.recipe_error(), abs=0.015)
