"""Unit tests for the payload generators."""

import numpy as np
import pytest

from repro.core.payloads import (
    logo_bitmap,
    render_bitmap,
    synthetic_image_bits,
    synthetic_image_bytes,
    text_message,
)
from repro.errors import ConfigurationError


class TestSyntheticImage:
    def test_shape_and_values(self):
        bits = synthetic_image_bits(64, 32, rng=0)
        assert bits.size == 64 * 32
        assert set(np.unique(bits)) <= {0, 1}

    def test_deterministic(self):
        a = synthetic_image_bits(64, 64, rng=1)
        b = synthetic_image_bits(64, 64, rng=1)
        assert np.array_equal(a, b)

    def test_has_long_runs(self):
        """The property Table 5 depends on: blobby, not noisy."""
        bits = synthetic_image_bits(128, 128, rng=2)
        transitions = np.count_nonzero(bits[1:] != bits[:-1])
        # Random bits would transition ~50% of the time; blobs far less.
        assert transitions / bits.size < 0.2

    def test_dark_fraction_controls_bias(self):
        dark = synthetic_image_bits(128, 128, dark_fraction=0.8, rng=3)
        light = synthetic_image_bits(128, 128, dark_fraction=0.2, rng=3)
        assert dark.mean() < light.mean()

    def test_bytes_variant(self):
        data = synthetic_image_bytes(100, rng=0)
        assert len(data) == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_image_bits(0, 10)
        with pytest.raises(ConfigurationError):
            synthetic_image_bits(10, 10, dark_fraction=1.5)
        with pytest.raises(ConfigurationError):
            synthetic_image_bytes(0)


class TestLogo:
    def test_scales(self):
        small = logo_bitmap(scale=1)
        big = logo_bitmap(scale=3)
        assert big.shape == (small.shape[0] * 3, small.shape[1] * 3)

    def test_binary(self):
        assert set(np.unique(logo_bitmap())) == {0, 1}

    def test_scale_validated(self):
        with pytest.raises(ConfigurationError):
            logo_bitmap(scale=0)


class TestTextAndRender:
    def test_text_message_length(self):
        assert len(text_message(100)) == 100
        with pytest.raises(ConfigurationError):
            text_message(0)

    def test_render_shapes_lines(self):
        bits = np.array([1, 0, 0, 1], dtype=np.uint8)
        art = render_bitmap(bits, width=2)
        assert art == "#.\n.#"

    def test_render_validates_width(self):
        with pytest.raises(ConfigurationError):
            render_bitmap(np.ones(4, dtype=np.uint8), width=0)
