"""CodingScheme: validation, the paper preset, and legacy-kwarg parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CodingScheme,
    ControlBoard,
    FrameFormat,
    InvisibleBits,
    RepetitionCode,
    make_device,
    paper_end_to_end_scheme,
)
from repro.errors import ConfigurationError

KEY = b"0123456789abcdef"


class TestCodingScheme:
    def test_defaults(self):
        scheme = CodingScheme()
        assert scheme.key is None
        assert scheme.ecc is None
        assert scheme.frame.framed
        assert scheme.n_captures == 5
        assert not scheme.encrypted

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CodingScheme().n_captures = 7

    def test_bad_key_length_rejected(self):
        with pytest.raises(ConfigurationError):
            CodingScheme(key=b"short")

    @pytest.mark.parametrize("n", [0, -1, 2, 4])
    def test_even_or_nonpositive_captures_rejected(self, n):
        with pytest.raises(ConfigurationError):
            CodingScheme(n_captures=n)

    def test_cipher_binds_device_id(self):
        scheme = CodingScheme(key=KEY)
        a = scheme.cipher(b"\x01" * 16)
        b = scheme.cipher(b"\x02" * 16)
        bits = np.zeros(128, dtype=np.uint8)
        assert not np.array_equal(a.process_bits(bits), b.process_bits(bits))
        assert CodingScheme().cipher(b"\x01" * 16) is None

    def test_with_captures(self):
        scheme = CodingScheme(n_captures=5)
        assert scheme.with_captures(7).n_captures == 7
        assert scheme.n_captures == 5  # original untouched

    def test_describe_is_jsonable_provenance(self):
        import json

        desc = paper_end_to_end_scheme(KEY).describe()
        json.dumps(desc)
        assert desc["encrypted"] is True
        assert desc["ecc"].startswith("hamming(7,4)")
        assert desc["n_captures"] == 5

    def test_paper_preset(self):
        scheme = paper_end_to_end_scheme(KEY, copies=5, n_captures=7)
        assert scheme.key == KEY
        assert scheme.ecc.name == "hamming(7,4)+repetition(x5,block)"
        assert scheme.frame.framed
        assert scheme.n_captures == 7


class TestLegacyKwargs:
    def _board(self, seed: int) -> ControlBoard:
        return ControlBoard(make_device("MSP432P401", rng=seed, sram_kib=1))

    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="scheme="):
            InvisibleBits(self._board(1), key=KEY, use_firmware=False)

    def test_legacy_warning_names_removal_version(self):
        """A deprecation without a deadline is a nag, not a migration."""
        with pytest.warns(DeprecationWarning, match=r"removed in repro 2\.0"):
            InvisibleBits(self._board(1), key=KEY, use_firmware=False)

    def test_scheme_alone_does_not_warn(self, recwarn):
        InvisibleBits(
            self._board(1), scheme=CodingScheme(key=KEY), use_firmware=False
        )
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_scheme_plus_legacy_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            InvisibleBits(self._board(1), scheme=CodingScheme(), key=KEY)

    def test_properties_delegate_to_scheme(self):
        scheme = CodingScheme(
            key=KEY, ecc=RepetitionCode(3), frame=FrameFormat(), n_captures=7
        )
        channel = InvisibleBits(self._board(1), scheme=scheme, use_firmware=False)
        assert channel.key == KEY
        assert channel.ecc is scheme.ecc
        assert channel.frame is scheme.frame
        assert channel.n_captures == 7

    def test_scheme_and_legacy_bit_identical(self):
        """The ISSUE gate: same seed, both forms, identical bits."""
        message = b"bit-for-bit parity"

        new = InvisibleBits(
            self._board(42),
            scheme=CodingScheme(key=KEY, ecc=RepetitionCode(5)),
            use_firmware=False,
        )
        sent_new = new.send(message)
        got_new = new.receive()

        with pytest.warns(DeprecationWarning):
            old = InvisibleBits(
                self._board(42),
                key=KEY,
                ecc=RepetitionCode(5),
                use_firmware=False,
            )
        sent_old = old.send(message)
        got_old = old.receive()

        assert np.array_equal(sent_new.payload_bits, sent_old.payload_bits)
        assert np.array_equal(got_new.power_on_state, got_old.power_on_state)
        assert np.array_equal(got_new.captures, got_old.captures)
        assert got_new.message == got_old.message == message
        assert got_new.vote_margin_hist == got_old.vote_margin_hist
        assert got_new.ecc_corrections == got_old.ecc_corrections
