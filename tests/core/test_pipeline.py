"""Integration tests for the InvisibleBits pipeline (Figure 13)."""

import numpy as np
import pytest

from repro.core import FrameFormat, InvisibleBits
from repro.device import make_device
from repro.ecc import RepetitionCode
from repro.ecc.product import paper_end_to_end_code
from repro.errors import ConfigurationError
from repro.harness import ControlBoard

KEY = b"pre-shared key!!"


def make_channel(**kwargs):
    device = make_device("MSP432P401", rng=kwargs.pop("rng", 31), sram_kib=2)
    board = ControlBoard(device)
    return InvisibleBits(board, use_firmware=False, **kwargs)


class TestEndToEnd:
    def test_paper_figure13_system(self):
        """ECC -> AES-CTR -> encode -> decode -> decrypt -> ECC."""
        channel = make_channel(key=KEY, ecc=paper_end_to_end_code(7))
        sent = channel.send(b"the cables are in the lining")
        result = channel.receive(expected_payload=sent.payload_bits)
        assert result.message == b"the cables are in the lining"
        assert result.raw_error_vs == pytest.approx(0.065, abs=0.015)

    def test_plaintext_no_ecc_small_message_mostly_survives(self):
        channel = make_channel(ecc=RepetitionCode(9))
        channel.send(b"ecc only")
        assert channel.receive().message == b"ecc only"

    def test_without_ecc_errors_leak_through(self):
        channel = make_channel()
        channel.send(b"A" * 64)
        received = channel.receive().message
        # 6.5% BER over 512 bits: essentially impossible to be error-free.
        assert received != b"A" * 64
        assert len(received) == 64  # but the robust header held

    def test_wrong_key_garbage(self):
        channel = make_channel(key=KEY, ecc=RepetitionCode(7))
        channel.send(b"for bob only")
        eve = InvisibleBits(
            channel.board, key=b"wrong key 123456", ecc=RepetitionCode(7),
            use_firmware=False,
        )
        try:
            message = eve.receive().message
        except Exception:
            return  # header garbage is an acceptable failure mode
        assert message != b"for bob only"

    def test_device_id_nonce_differs_across_devices(self):
        a = make_channel(key=KEY, rng=1)
        b = make_channel(key=KEY, rng=2)
        pa = a.prepare_payload(b"same message")
        pb = b.prepare_payload(b"same message")
        # Footnote 4: same message, different devices -> different payloads.
        assert not np.array_equal(pa, pb)

    def test_firmware_path_equivalent(self):
        device = make_device("MSP432P401", rng=77, sram_kib=1)
        board = ControlBoard(device)
        channel = InvisibleBits(
            board, key=KEY, ecc=RepetitionCode(5), use_firmware=True
        )
        channel.send(b"via firmware", stress_hours=10.0)
        assert channel.receive().message == b"via firmware"


class TestConfiguration:
    def test_even_captures_rejected(self):
        device = make_device("MSP432P401", rng=3, sram_kib=1)
        with pytest.raises(ConfigurationError):
            InvisibleBits(ControlBoard(device), n_captures=4)

    def test_encode_result_metadata(self):
        channel = make_channel(key=KEY, ecc=RepetitionCode(3))
        result = channel.send(b"meta")
        assert result.message_bytes == 4
        assert result.encrypted
        assert 0 < result.capacity_used <= 1
        assert result.stress_hours == 10.0  # MSP432 recipe

    def test_raw_frame_mode(self):
        # rng=32: seed 31's process variation happens to put five of nine
        # stride-64 copies of one data bit on extreme-mismatch cells.
        channel = make_channel(
            key=KEY, ecc=RepetitionCode(9), frame=FrameFormat(framed=False),
            rng=32,
        )
        channel.send(b"unframed")
        result = channel.receive(message_len=8)
        assert result.message == b"unframed"
