"""Unit tests for capacity/error planning (Figure 15, §5.3)."""

import numpy as np
import pytest

from repro.core.planner import (
    capacity_error_tradeoff,
    parallel_device_selection,
    plan_scheme,
)
from repro.ecc import ConcatenatedCode, RepetitionCode
from repro.errors import ConfigurationError


class TestTradeoffSweep:
    def test_frontier_shape(self):
        points = capacity_error_tradeoff("MSP432P401", 0.065)
        errors = [p.predicted_error for p in points]
        caps = [p.capacity_fraction for p in points]
        assert errors == sorted(errors, reverse=True)
        assert caps == sorted(caps, reverse=True)

    def test_hamming_beats_plain_at_same_copies(self):
        plain = capacity_error_tradeoff("x", 0.065, with_hamming=False)
        stacked = capacity_error_tradeoff("x", 0.065, with_hamming=True)
        for p, s in zip(plain, stacked):
            assert s.predicted_error <= p.predicted_error

    def test_capacity_percent(self):
        point = capacity_error_tradeoff("x", 0.065, copies_list=(5,),
                                        with_hamming=False)[0]
        assert point.capacity_percent == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            capacity_error_tradeoff("x", 0.6)
        with pytest.raises(ConfigurationError):
            capacity_error_tradeoff("x", 0.1, copies_list=(2,))


class TestPlanScheme:
    def test_easy_target_gets_high_rate(self):
        code = plan_scheme(0.01, 0.01)
        assert code.rate == 1.0 or isinstance(code, RepetitionCode)

    def test_paper_target(self):
        """§5.3: 6.5% channel, <0.3% target -> 5-copy repetition (rate 0.2)
        unless the Hamming stack wins on rate."""
        code = plan_scheme(0.065, 0.003)
        assert code.rate >= 0.2 - 1e-9

    def test_scheme_actually_meets_target(self):
        rng = np.random.default_rng(0)
        code = plan_scheme(0.065, 0.003)
        data = rng.integers(0, 2, code.k * 3000).astype(np.uint8)
        coded = code.encode(data)
        noisy = coded ^ (rng.random(coded.size) < 0.065).astype(np.uint8)
        residual = float(np.mean(code.decode(noisy) != data))
        assert residual <= 0.004

    def test_impossible_target_raises(self):
        with pytest.raises(ConfigurationError):
            plan_scheme(0.45, 1e-9, max_copies=3)


class TestParallelSelection:
    def test_best_error_below_mean(self):
        best, errors = parallel_device_selection(0.065, n_devices=10, rng=0)
        assert best == min(errors)
        assert best < 0.065

    def test_paper_2_7_percent_reachable(self):
        """§5.3: 'a device with 2.7% error is possible'."""
        best, _ = parallel_device_selection(0.065, n_devices=40, rng=1)
        assert best < 0.035

    def test_single_device_is_just_a_sample(self):
        best, errors = parallel_device_selection(0.065, n_devices=1, rng=2)
        assert len(errors) == 1

    def test_zero_sigma_deterministic(self):
        best, errors = parallel_device_selection(
            0.065, n_devices=5, device_sigma=0.0, rng=3
        )
        assert all(e == pytest.approx(0.065) for e in errors)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            parallel_device_selection(0.065, n_devices=0)
