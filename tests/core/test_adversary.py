"""Integration tests for the adversary models (§5.1.4, §7.1, §7.4)."""

import numpy as np
import pytest

from repro.bitutils import bit_error_rate, invert_bits
from repro.core.adversary import (
    MultipleSnapshotAdversary,
    adversarial_aging_attack,
    normal_operation_effect,
    restore_encoding,
)
from repro.device import make_device
from repro.errors import ConfigurationError
from repro.harness import ControlBoard
from repro.units import days


@pytest.fixture
def encoded_board(random_payload):
    device = make_device("MSP432P401", rng=61, sram_kib=2)
    board = ControlBoard(device)
    payload = random_payload(device.sram.n_bits, seed=17)
    board.encode_message(payload, use_firmware=False, camouflage=False)
    return board, payload


class TestNormalOperation:
    def test_week_of_use_grows_error_modestly(self, encoded_board):
        """§5.1.4: ~1.2x after a week, less than shelf recovery's ~1.4x."""
        board, payload = encoded_board
        before, after = normal_operation_effect(board, payload, operation_days=7)
        factor = after / before
        assert 1.05 < factor < 1.45

    def test_validation(self, encoded_board):
        board, payload = encoded_board
        with pytest.raises(ConfigurationError):
            normal_operation_effect(board, payload, operation_days=-1)


class TestMultipleSnapshot:
    def test_snapshots_collected_with_labels(self, encoded_board):
        board, _ = encoded_board
        adversary = MultipleSnapshotAdversary(board)
        adversary.observe("m1")
        adversary.observe("m2")
        adversary.wait(days(1))
        adversary.observe("one day")
        labels = [label for label, _ in adversary.snapshots()]
        assert labels == ["m1", "m2", "one day"]

    def test_flip_fractions_small(self, encoded_board):
        """§7.1: differences between snapshots look like measurement noise."""
        board, _ = encoded_board
        adversary = MultipleSnapshotAdversary(board)
        adversary.observe("m1")
        adversary.observe("m2")
        adversary.wait(days(7))
        adversary.observe("one week")
        flips = adversary.flip_fractions()
        assert all(f < 0.06 for f in flips)
        # back-to-back and week-later flips are the same order of magnitude
        assert flips[1] < 10 * max(flips[0], 1e-4)


class TestAdversarialAging:
    def test_attack_injects_noise(self, encoded_board):
        board, payload = encoded_board
        result = adversarial_aging_attack(
            board, payload, attack_hours=1.0, vdd_attack=2.2
        )
        assert result.attack_factor > 1.02
        assert result.post_restore_error is None

    def test_restore_recovers_encoding(self, encoded_board):
        """§7.4: re-encoding restores error to ~1x of baseline."""
        board, payload = encoded_board
        result = adversarial_aging_attack(
            board, payload, attack_hours=1.0, vdd_attack=2.2
        )
        restore_encoding(board, payload, restore_hours=1.5)
        restored = bit_error_rate(
            payload, invert_bits(board.majority_power_on_state(5))
        )
        assert restored / result.baseline_error < result.attack_factor
        assert restored / result.baseline_error < 1.1

    def test_validation(self, encoded_board):
        board, payload = encoded_board
        with pytest.raises(ConfigurationError):
            adversarial_aging_attack(board, payload, attack_hours=0.0)
        with pytest.raises(ConfigurationError):
            restore_encoding(board, payload, restore_hours=0.0)
