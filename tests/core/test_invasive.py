"""Tests for the invasive-adversary boundary (§3's restriction, made
executable)."""

import numpy as np
import pytest

from repro.core.invasive import invasive_offset_analysis
from repro.core.pipeline import InvisibleBits
from repro.device import make_device
from repro.errors import ConfigurationError
from repro.harness import ControlBoard

KEY = b"invasive-key-16b"


def test_fresh_device_reads_clean():
    device = make_device("MSP432P401", rng=81, sram_kib=2)
    report = invasive_offset_analysis(device.sram)
    assert not report.aged
    assert report.offset_std == pytest.approx(1.0, abs=0.05)
    assert abs(report.excess_kurtosis) < 0.2


def test_encrypted_encode_is_invisible_noninvasively_but_not_invasively():
    """The paper's claim holds for its threat model (non-invasive), and
    this test pins down exactly where it stops holding."""
    from repro.core.steganalysis import analyze_power_on_state

    device = make_device("MSP432P401", rng=82, sram_kib=2)
    board = ControlBoard(device)
    channel = InvisibleBits(board, key=KEY, use_firmware=False)
    channel.send(b"hidden from inspectors, not from electron microscopes")

    # Non-invasive: the power-on state looks clean (paper SS6).
    state = board.majority_power_on_state(5)
    assert not analyze_power_on_state(state, device.sram.grid_shape()).looks_encoded()

    # Invasive: per-cell Vth probing sees the aging magnitude.
    report = invasive_offset_analysis(device.sram)
    assert report.aged
    assert report.offset_std > 1.5  # sqrt(1 + D^2) with D ~ 1.5
    assert report.excess_kurtosis < -0.5


def test_normal_use_does_not_trip_the_detector():
    """A device that merely ran for a week is not falsely flagged."""
    device = make_device("MSP432P401", rng=83, sram_kib=2)
    device.power_on()
    device.run_workload(7 * 86400.0)
    device.power_off()
    assert not invasive_offset_analysis(device.sram).aged


def test_threshold_validated():
    device = make_device("MSP432P401", rng=84, sram_kib=1)
    with pytest.raises(ConfigurationError):
        invasive_offset_analysis(device.sram, std_threshold=0.9)
