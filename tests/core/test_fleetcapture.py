"""The fleet-vectorized capture kernel (repro.core.fleetcapture).

Bit-identity of the stacked kernel against the per-device capture loop
is the `fleet.capture_vs_device_loop` verify oracle's job; these tests
pin the kernel's edge cases and plumbing: tiny and heterogeneous
fleets, empty noise bands, fallback slots, resilient failure capture,
and input validation.
"""

import numpy as np
import pytest

from repro.bitutils import bit_error_rate, invert_bits, majority_vote
from repro.core.fleetcapture import capture_fleet
from repro.device import make_device
from repro.errors import ConfigurationError, SlotError
from repro.harness.controlboard import ControlBoard
from repro.harness.rack import EncodingRack


@pytest.fixture(autouse=True)
def _no_ambient_fault_plan(monkeypatch):
    """These tests pin which slots vectorize; an ambient chaos plan
    (the CI fault-smoke job's ``REPRO_FAULT_PLAN``) wires an injector
    into every board and legitimately routes all slots to the loop, so
    it is stripped here.  Injector behaviour is tested explicitly below
    with boards that construct their own."""
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)


def _tray(seeds, kib=0.25, stress_hours=4.0):
    """A staged-and-stressed tray; heterogeneous ``kib`` is allowed."""
    if not isinstance(kib, (list, tuple)):
        kib = [kib] * len(seeds)
    devices = [
        make_device("MSP432P401", rng=seed, sram_kib=k)
        for seed, k in zip(seeds, kib)
    ]
    rack = EncodingRack(devices, max_workers=1)
    rng = np.random.default_rng(11)
    payloads = [
        rng.integers(0, 2, board.device.sram.n_bits).astype(np.uint8)
        for board in rack.boards
    ]
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=stress_hours)
    return rack, payloads


def _loop_measure(board, payload, n_captures):
    stack = board.capture_power_on_states(n_captures)
    vote = majority_vote(stack)
    return stack, vote, bit_error_rate(payload, invert_bits(vote))


def test_single_device_fleet_matches_loop():
    rack_a, payloads = _tray([30])
    rack_b, _ = _tray([30])
    fleet = capture_fleet(
        rack_a.boards, 3, payloads=payloads, return_frames=True
    )
    stack, vote, error = _loop_measure(rack_b.boards[0], payloads[0], 3)
    assert fleet.vectorized == (True,)
    assert np.array_equal(fleet.frames[0], stack)
    assert np.array_equal(fleet.states[0], vote)
    assert fleet.errors[0] == error


def test_heterogeneous_sram_sizes_stack_raggedly():
    rack_a, payloads = _tray([31, 32, 33], kib=[0.25, 0.5, 0.25])
    rack_b, _ = _tray([31, 32, 33], kib=[0.25, 0.5, 0.25])
    fleet = capture_fleet(rack_a.boards, 3, payloads=payloads)
    assert fleet.vectorized == (True, True, True)
    for index, board in enumerate(rack_b.boards):
        _, vote, error = _loop_measure(board, payloads[index], 3)
        assert np.array_equal(fleet.states[index], vote)
        assert fleet.errors[index] == error


def test_empty_noise_band_slot_is_deterministic():
    """A slot whose band is empty consumes zero noise columns and returns
    the cached deterministic decisions, without perturbing its neighbours'
    RNG streams."""
    rack_a, payloads = _tray([34, 35])
    rack_b, _ = _tray([34, 35])
    for rack in (rack_a, rack_b):
        rack.boards[0].device.sram.NOISE_TAIL_SIGMA = 0.0
    fleet = capture_fleet(
        rack_a.boards, 3, payloads=payloads, return_frames=True
    )
    assert fleet.vectorized == (True, True)
    # Deterministic slot: every capture is the cached decision base.
    assert np.array_equal(fleet.frames[0][0], fleet.frames[0][1])
    for index, board in enumerate(rack_b.boards):
        stack, vote, error = _loop_measure(board, payloads[index], 3)
        assert np.array_equal(fleet.frames[index], stack)
        assert fleet.errors[index] == error


def test_fault_injector_slot_falls_back_to_loop():
    from repro.faults import FaultInjector, FaultPlan

    rack_a, payloads = _tray([36, 37])
    rack_b, _ = _tray([36, 37])
    # Benign plan (no models): triggers the fallback path, changes nothing.
    rack_a.boards[1].fault_injector = FaultInjector(FaultPlan(seed=1))
    fleet = capture_fleet(rack_a.boards, 3, payloads=payloads)
    assert fleet.vectorized == (True, False)
    for index, board in enumerate(rack_b.boards):
        _, vote, error = _loop_measure(board, payloads[index], 3)
        assert np.array_equal(fleet.states[index], vote)
        assert fleet.errors[index] == error


def test_resilient_records_failures_without_raising():
    rack, payloads = _tray([38, 39])

    def broken(*args, **kwargs):
        raise RuntimeError("slot died")

    rack.boards[0].device.load_firmware = broken
    fleet = capture_fleet(rack.boards, 3, payloads=payloads, resilient=True)
    assert isinstance(fleet.slot_errors[0], RuntimeError)
    assert fleet.states[0] is None and fleet.errors[0] is None
    assert fleet.slot_errors[1] is None
    assert fleet.errors[1] is not None


def test_strict_mode_raises_sloterror_naming_the_slot():
    rack, payloads = _tray([40, 41])

    def broken(*args, **kwargs):
        raise RuntimeError("slot died")

    rack.boards[1].device.load_firmware = broken
    with pytest.raises(SlotError) as excinfo:
        capture_fleet(rack.boards, 3, payloads=payloads)
    assert excinfo.value.slot == 1
    assert "RuntimeError" in str(excinfo.value)


def test_input_validation():
    board = ControlBoard(make_device("MSP432P401", rng=42, sram_kib=0.25))
    with pytest.raises(ConfigurationError):
        capture_fleet([board], 0)
    with pytest.raises(ConfigurationError):
        capture_fleet([board], 4)  # even: majority could tie
    with pytest.raises(ConfigurationError):
        capture_fleet([board], True)
    with pytest.raises(ConfigurationError):
        capture_fleet([board], 3, payloads=[])


def test_quarantined_slot_skipped_mid_tray():
    """Resilient rack measurement skips a quarantined middle slot and
    still measures its neighbours through the kernel."""
    rack, payloads = _tray([43, 44, 45])
    for _ in range(rack.health.quarantine_after):
        rack.health.record_failure(1)
    results = rack.measure_errors(payloads, n_captures=3, resilient=True)
    assert [r.status for r in results] == ["ok", "quarantined", "ok"]
    assert results[1].attempts == 0
    twin, _ = _tray([43, 44, 45])
    _, _, error = _loop_measure(twin.boards[0], payloads[0], 3)
    assert results[0].value == error
