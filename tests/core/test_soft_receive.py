"""Receive-path tests for the scheme's ``decision`` knob.

``decision`` is receiver-side only: the encoded image is identical either
way, so one capture stack can be decoded under both modes and compared.
"""

import numpy as np
import pytest

from repro.core.pipeline import InvisibleBits
from repro.core.scheme import CodingScheme, paper_end_to_end_scheme
from repro.device import make_device
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, transient_capture_plan
from repro.harness import ControlBoard

KEY = bytes(range(16))
MESSAGE = b"margins are data"


def make_channel(decision="hard", rng=31):
    device = make_device("MSP432P401", rng=rng, sram_kib=2)
    scheme = paper_end_to_end_scheme(KEY, copies=3).with_decision(decision)
    return InvisibleBits(
        ControlBoard(device), scheme=scheme, use_firmware=False
    )


class TestSchemeKnob:
    def test_default_is_hard(self):
        assert CodingScheme().decision == "hard"

    def test_with_decision_round_trip(self):
        scheme = CodingScheme()
        soft = scheme.with_decision("soft")
        assert soft.decision == "soft"
        assert scheme.decision == "hard"  # original untouched
        assert soft.with_decision("hard") == scheme

    def test_invalid_decision_rejected(self):
        with pytest.raises(ConfigurationError):
            CodingScheme(decision="fuzzy")

    def test_describe_includes_decision(self):
        assert CodingScheme(decision="soft").describe()["decision"] == "soft"


class TestReceiveModes:
    @pytest.mark.parametrize("decision", ["hard", "soft"])
    def test_round_trip(self, decision):
        channel = make_channel(decision)
        channel.send(MESSAGE)
        result = channel.receive()
        assert result.message == MESSAGE
        assert result.decision == decision

    def test_soft_result_metadata(self):
        channel = make_channel("soft")
        channel.send(MESSAGE)
        result = channel.receive()
        assert 0.0 < result.p_flip_estimate < 0.5
        # One vote round on a healthy channel; the histogram covers every
        # cell and only odd margins can occur with an odd vote.
        assert result.round_margin_hists == (result.vote_margin_hist,)
        assert sum(result.vote_margin_hist) == result.power_on_state.size
        assert result.vote_margin_hist[0] == 0
        prov = result.provenance()
        assert prov["decision"] == "soft"
        assert prov["p_flip_estimate"] == result.p_flip_estimate
        assert prov["round_margin_hists"] == [list(result.vote_margin_hist)]

    def test_hard_result_has_no_estimate(self):
        channel = make_channel("hard")
        channel.send(MESSAGE)
        result = channel.receive()
        assert result.p_flip_estimate is None
        assert result.decision == "hard"

    def test_modes_agree_on_voted_state(self):
        # decision is receiver-side: the state, raw diagnostics and (on a
        # healthy channel) the message must match across modes.
        sent_payload = {}
        results = {}
        for mode in ("hard", "soft"):
            channel = make_channel(mode, rng=47)
            sent_payload[mode] = channel.send(MESSAGE).payload_bits
            results[mode] = channel.receive(
                expected_payload=sent_payload[mode]
            )
        np.testing.assert_array_equal(
            sent_payload["hard"], sent_payload["soft"]
        )
        np.testing.assert_array_equal(
            results["hard"].power_on_state, results["soft"].power_on_state
        )
        assert results["hard"].raw_error_vs == results["soft"].raw_error_vs
        assert results["hard"].message == results["soft"].message == MESSAGE


class TestDecodeCaptures:
    @pytest.mark.parametrize("decision", ["hard", "soft"])
    def test_stack_round_trip(self, decision):
        channel = make_channel()
        channel.send(MESSAGE)
        samples = channel.capture_samples(5)
        offline = InvisibleBits(
            channel.board,
            scheme=channel.scheme.with_decision(decision),
            use_firmware=False,
        )
        result = offline.decode_captures(samples)
        assert result.message == MESSAGE
        assert result.decision == decision
        assert result.n_captures == 5

    def test_even_stack_drops_most_marginal_row(self):
        channel = make_channel("soft")
        channel.send(MESSAGE)
        result = channel.decode_captures(channel.capture_samples(4))
        assert result.message == MESSAGE
        assert result.n_captures == 3  # one row sat the vote out
        assert result.captures.shape[0] == 4  # ...but is still recorded

    def test_rejects_bad_shapes(self):
        channel = make_channel()
        with pytest.raises(ConfigurationError):
            channel.decode_captures(np.zeros(16, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            channel.decode_captures(np.zeros((0, 16), dtype=np.uint8))


class TestDecodeState:
    def test_soft_scheme_without_ones_falls_back_to_hard(self):
        # A voted state alone carries no margins: the decode must not
        # invent any, and must still recover the message.
        channel = make_channel("soft")
        channel.send(MESSAGE)
        state = channel.receive().power_on_state
        result = channel.decode_state(state)
        assert result.message == MESSAGE
        assert result.decision == "hard"

    def test_soft_scheme_with_ones_decodes_soft(self):
        channel = make_channel("soft")
        channel.send(MESSAGE)
        samples = channel.capture_samples(5)
        from repro.bitutils import majority_vote

        state = majority_vote(samples)
        ones = samples.sum(axis=0, dtype=np.int64)
        result = channel.decode_state(state, ones=ones, n_captures=5)
        assert result.message == MESSAGE
        assert result.decision == "soft"
        assert result.p_flip_estimate is not None


class TestUnderFaults:
    @pytest.mark.parametrize("decision", ["hard", "soft"])
    def test_transient_plan_recovers(self, decision):
        # The chaos-smoke invariant holds in both decision modes; seed 0
        # lands a brownout in the first capture window so escalation
        # genuinely fires.
        channel = make_channel(decision, rng=77)
        channel.send(MESSAGE)
        channel.board.fault_injector = FaultInjector(
            transient_capture_plan(0.05, flaky_rate=0.02, seed=0)
        )
        result = channel.receive()
        assert result.message == MESSAGE
        assert result.decision == decision

    def test_escalation_accumulates_round_histograms(self):
        channel = make_channel("soft", rng=77)
        channel.send(MESSAGE)
        channel.board.fault_injector = FaultInjector(
            transient_capture_plan(0.05, flaky_rate=0.02, seed=0)
        )
        result = channel.receive()
        # One histogram per vote round; the last one is the final vote's.
        assert len(result.round_margin_hists) == result.escalation_rounds + 1
        assert result.escalation_rounds >= 1
        assert result.round_margin_hists[-1] == result.vote_margin_hist
        for hist in result.round_margin_hists:
            assert sum(hist) == result.power_on_state.size
