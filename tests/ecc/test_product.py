"""Unit tests for code composition (the paper's §6 stack)."""

import numpy as np
import pytest

from repro.ecc import ConcatenatedCode, RepetitionCode, hamming_7_4
from repro.ecc.product import paper_end_to_end_code
from repro.errors import ConfigurationError


@pytest.fixture
def stack():
    return ConcatenatedCode(hamming_7_4(), RepetitionCode(3))


def test_rate_multiplies(stack):
    assert stack.rate == pytest.approx((4 / 7) / 3)


def test_round_trip(stack, random_payload):
    data = random_payload(4 * 20, seed=3)
    assert np.array_equal(stack.decode(stack.encode(data)), data)


def test_corrects_beyond_either_alone(stack):
    """Two errors in one 7-bit window: repetition cleans them before the
    Hamming stage ever sees them."""
    data = np.array([1, 0, 1, 1], dtype=np.uint8)
    coded = stack.encode(data)
    coded[0] ^= 1  # copy 0, position 0
    coded[3] ^= 1  # copy 0, position 3
    assert np.array_equal(stack.decode(coded), data)


def test_paper_end_to_end_code_shape():
    code = paper_end_to_end_code(7)
    assert code.k == 4
    assert code.n == 49
    assert "hamming(7,4)" in code.name
    assert "repetition" in code.name


def test_paper_code_validates_copies():
    with pytest.raises(ConfigurationError):
        paper_end_to_end_code(4)


def test_reversed_order_also_round_trips(random_payload):
    """Footnote 7: the order of the two codes is interchangeable."""
    reverse = ConcatenatedCode(RepetitionCode(3), hamming_7_4())
    data = random_payload(3 * 7 * 4, seed=4)  # fits both granularities
    # outer=rep: k=1 so any length works; inner=hamming needs multiples of 4
    coded = reverse.encode(data[: reverse.k * 8])
    assert np.array_equal(reverse.decode(coded), data[: reverse.k * 8])


def test_statistical_error_reduction(random_payload):
    rng = np.random.default_rng(1)
    stack = ConcatenatedCode(hamming_7_4(), RepetitionCode(5))
    data = random_payload(4 * 2000, seed=5)
    coded = stack.encode(data)
    noisy = coded ^ (rng.random(coded.size) < 0.10).astype(np.uint8)
    residual = float(np.mean(stack.decode(noisy) != data))
    # 10% channel -> ~0.86% after votes -> ~0.03% after Hamming
    assert residual < 0.004
