"""Unit tests for the Hamming codes."""

import numpy as np
import pytest

from repro.ecc import HammingCode, hamming_3_1, hamming_7_4
from repro.errors import BlockLengthError, ConfigurationError


@pytest.fixture
def code74():
    return hamming_7_4()


class TestParameters:
    def test_hamming_7_4(self, code74):
        assert (code74.n, code74.k) == (7, 4)
        assert code74.rate == pytest.approx(4 / 7)

    def test_hamming_3_1_is_triple_repetition(self):
        """Paper §5.2: Hamming(3,1) has valid codewords 000 and 111."""
        code = hamming_3_1()
        assert (code.n, code.k) == (3, 1)
        zero = code.encode(np.array([0], dtype=np.uint8))
        one = code.encode(np.array([1], dtype=np.uint8))
        assert zero.tolist() == [0, 0, 0]
        assert one.tolist() == [1, 1, 1]

    def test_general_sizes(self):
        assert (HammingCode(4).n, HammingCode(4).k) == (15, 11)
        assert (HammingCode(5).n, HammingCode(5).k) == (31, 26)

    def test_r_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            HammingCode(1)


class TestCorrection:
    def test_round_trip_clean(self, code74, random_payload):
        data = random_payload(4 * 50, seed=1)
        assert np.array_equal(code74.decode(code74.encode(data)), data)

    def test_corrects_any_single_error(self, code74):
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        codeword = code74.encode(data)
        for position in range(7):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            assert np.array_equal(code74.decode(corrupted), data), position

    def test_double_error_miscorrects(self, code74):
        """Hamming(7,4) cannot correct two errors — document the boundary."""
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        codeword = code74.encode(data)
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        corrupted[3] ^= 1
        assert not np.array_equal(code74.decode(corrupted), data)

    def test_multiblock_independent_correction(self, code74):
        data = np.arange(16) % 2
        coded = code74.encode(data.astype(np.uint8))
        # one error in each of the four blocks
        for block in range(4):
            coded[block * 7 + (block % 7)] ^= 1
        assert np.array_equal(code74.decode(coded), data)

    def test_all_codewords_valid_syndrome(self, code74):
        """Every data word encodes to a zero-syndrome codeword."""
        for value in range(16):
            data = np.array(
                [(value >> i) & 1 for i in range(4)], dtype=np.uint8
            )
            codeword = code74.encode(data)
            assert np.array_equal(code74.decode(codeword), data)

    def test_min_distance_is_three(self, code74):
        words = []
        for value in range(16):
            data = np.array([(value >> i) & 1 for i in range(4)], dtype=np.uint8)
            words.append(code74.encode(data))
        dmin = min(
            int(np.count_nonzero(a != b))
            for i, a in enumerate(words)
            for b in words[i + 1 :]
        )
        assert dmin == 3


class TestValidation:
    def test_block_length_enforced(self, code74):
        with pytest.raises(BlockLengthError):
            code74.encode(np.ones(5, dtype=np.uint8))
        with pytest.raises(BlockLengthError):
            code74.decode(np.ones(8, dtype=np.uint8))


class TestDoubleErrorCharacterization:
    """Characterization: Hamming codes are single-error correctors; two
    errors in one block alias to a wrong single-bit 'correction' and are
    silently miscorrected.  This is inherent to the distance-3 code (the
    paper layers repetition on top precisely because of it), so pin the
    behavior rather than 'fix' it."""

    def test_two_errors_miscorrect_silently(self, code74):
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        codeword = code74.encode(data)
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        corrupted[3] ^= 1
        decoded = code74.decode(corrupted)  # no exception, no flag
        assert not np.array_equal(decoded, data)

    def test_every_double_error_decodes_to_wrong_data(self):
        code = hamming_7_4()
        data = np.array([0, 1, 1, 0], dtype=np.uint8)
        codeword = code.encode(data)
        miscorrected = 0
        for i in range(7):
            for j in range(i + 1, 7):
                corrupted = codeword.copy()
                corrupted[i] ^= 1
                corrupted[j] ^= 1
                decoded = code.decode(corrupted)
                if not np.array_equal(decoded, data):
                    miscorrected += 1
        # All 21 double-error patterns decode, none to the right data.
        assert miscorrected == 21

    def test_double_error_lands_on_another_codeword_neighbourhood(self):
        # The miscorrected word is itself a valid decode of *some* single
        # error pattern: re-encoding the wrong data is within distance 1
        # of the corrupted word (that's why it cannot be detected).
        code = hamming_7_4()
        data = np.array([1, 1, 0, 0], dtype=np.uint8)
        codeword = code.encode(data)
        corrupted = codeword.copy()
        corrupted[1] ^= 1
        corrupted[5] ^= 1
        wrong = code.decode(corrupted)
        recoded = code.encode(wrong)
        assert int(np.count_nonzero(recoded != corrupted)) <= 1
