"""Unit tests for the Hamming codes."""

import numpy as np
import pytest

from repro.ecc import HammingCode, hamming_3_1, hamming_7_4
from repro.errors import BlockLengthError, ConfigurationError


@pytest.fixture
def code74():
    return hamming_7_4()


class TestParameters:
    def test_hamming_7_4(self, code74):
        assert (code74.n, code74.k) == (7, 4)
        assert code74.rate == pytest.approx(4 / 7)

    def test_hamming_3_1_is_triple_repetition(self):
        """Paper §5.2: Hamming(3,1) has valid codewords 000 and 111."""
        code = hamming_3_1()
        assert (code.n, code.k) == (3, 1)
        zero = code.encode(np.array([0], dtype=np.uint8))
        one = code.encode(np.array([1], dtype=np.uint8))
        assert zero.tolist() == [0, 0, 0]
        assert one.tolist() == [1, 1, 1]

    def test_general_sizes(self):
        assert (HammingCode(4).n, HammingCode(4).k) == (15, 11)
        assert (HammingCode(5).n, HammingCode(5).k) == (31, 26)

    def test_r_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            HammingCode(1)


class TestCorrection:
    def test_round_trip_clean(self, code74, random_payload):
        data = random_payload(4 * 50, seed=1)
        assert np.array_equal(code74.decode(code74.encode(data)), data)

    def test_corrects_any_single_error(self, code74):
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        codeword = code74.encode(data)
        for position in range(7):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            assert np.array_equal(code74.decode(corrupted), data), position

    def test_double_error_miscorrects(self, code74):
        """Hamming(7,4) cannot correct two errors — document the boundary."""
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        codeword = code74.encode(data)
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        corrupted[3] ^= 1
        assert not np.array_equal(code74.decode(corrupted), data)

    def test_multiblock_independent_correction(self, code74):
        data = np.arange(16) % 2
        coded = code74.encode(data.astype(np.uint8))
        # one error in each of the four blocks
        for block in range(4):
            coded[block * 7 + (block % 7)] ^= 1
        assert np.array_equal(code74.decode(coded), data)

    def test_all_codewords_valid_syndrome(self, code74):
        """Every data word encodes to a zero-syndrome codeword."""
        for value in range(16):
            data = np.array(
                [(value >> i) & 1 for i in range(4)], dtype=np.uint8
            )
            codeword = code74.encode(data)
            assert np.array_equal(code74.decode(codeword), data)

    def test_min_distance_is_three(self, code74):
        words = []
        for value in range(16):
            data = np.array([(value >> i) & 1 for i in range(4)], dtype=np.uint8)
            words.append(code74.encode(data))
        dmin = min(
            int(np.count_nonzero(a != b))
            for i, a in enumerate(words)
            for b in words[i + 1 :]
        )
        assert dmin == 3


class TestValidation:
    def test_block_length_enforced(self, code74):
        with pytest.raises(BlockLengthError):
            code74.encode(np.ones(5, dtype=np.uint8))
        with pytest.raises(BlockLengthError):
            code74.decode(np.ones(8, dtype=np.uint8))
