"""Unit tests for the BCH codes."""

import itertools

import numpy as np
import pytest

from repro.ecc.bch import BCHCode
from repro.errors import BlockLengthError, ConfigurationError


@pytest.fixture
def bch15():
    return BCHCode(4, 2)  # the textbook BCH(15,7) double-error corrector


class TestConstruction:
    def test_bch_15_7_parameters(self, bch15):
        assert (bch15.n, bch15.k) == (15, 7)
        # The canonical generator: x^8 + x^7 + x^6 + x^4 + 1.
        assert bch15.generator == 0b1_1101_0001

    def test_t1_is_hamming(self):
        code = BCHCode(4, 1)
        assert (code.n, code.k) == (15, 11)

    def test_bch_31_16(self):
        code = BCHCode(5, 3)
        assert (code.n, code.k) == (31, 16)

    def test_degenerate_t_is_repetition(self):
        # BCH(7,1,t=3) collapses to the length-7 repetition code.
        code = BCHCode(3, 3)
        assert (code.n, code.k) == (7, 1)

    def test_overlarge_t_rejected(self):
        with pytest.raises(ConfigurationError):
            BCHCode(3, 4)  # generator would consume every bit
        with pytest.raises(ConfigurationError):
            BCHCode(4, 0)


class TestRoundTrip:
    def test_clean(self, bch15, random_payload):
        data = random_payload(7 * 25, seed=1)
        assert np.array_equal(bch15.decode(bch15.encode(data)), data)

    def test_systematic_layout(self, bch15):
        data = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        codeword = bch15.encode(data)
        assert np.array_equal(codeword[:7], data)

    def test_block_length_enforced(self, bch15):
        with pytest.raises(BlockLengthError):
            bch15.encode(np.ones(8, dtype=np.uint8))
        with pytest.raises(BlockLengthError):
            bch15.decode(np.ones(16, dtype=np.uint8))


class TestCorrection:
    def test_all_single_and_double_errors(self, bch15):
        data = np.array([1, 1, 0, 1, 0, 1, 0], dtype=np.uint8)
        codeword = bch15.encode(data)
        patterns = itertools.chain(
            itertools.combinations(range(15), 1),
            itertools.combinations(range(15), 2),
        )
        for pattern in patterns:
            corrupted = codeword.copy()
            for position in pattern:
                corrupted[position] ^= 1
            assert np.array_equal(bch15.decode(corrupted), data), pattern

    def test_triple_error_not_guaranteed(self, bch15):
        data = np.zeros(7, dtype=np.uint8)
        codeword = bch15.encode(data)
        failures = 0
        for pattern in itertools.combinations(range(15), 3):
            corrupted = codeword.copy()
            for position in pattern:
                corrupted[position] ^= 1
            if not np.array_equal(bch15.decode(corrupted), data):
                failures += 1
        assert failures > 0  # t=2 cannot cover weight-3 patterns

    def test_t3_corrects_three(self):
        code = BCHCode(5, 3)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2, code.k).astype(np.uint8)
        codeword = code.encode(data)
        for pattern in [(0, 10, 30), (5, 6, 7), (1,), (2, 29)]:
            corrupted = codeword.copy()
            for position in pattern:
                corrupted[position] ^= 1
            assert np.array_equal(code.decode(corrupted), data), pattern

    def test_multiblock_independence(self, bch15, random_payload):
        data = random_payload(7 * 4, seed=3)
        coded = bch15.encode(data)
        for block in range(4):
            coded[15 * block] ^= 1
            coded[15 * block + 8] ^= 1
        assert np.array_equal(bch15.decode(coded), data)


class TestVersusRepetition:
    def test_bch_beats_repetition_at_comparable_rate(self, random_payload):
        """The §5.2 point: at low error, algebraic codes beat repetition.

        BCH(15,7) (rate 0.47) vs 3-copy repetition (rate 0.33): at a 1%
        channel the BCH residual is far lower despite the higher rate.
        """
        from repro.ecc.analysis import exact_residual_ber, repetition_residual_error

        p = 0.01
        bch_res = exact_residual_ber(BCHCode(4, 2), p)
        rep_res = repetition_residual_error(p, 3)
        assert bch_res < rep_res / 2
