"""Unit tests for the block interleaver."""

import numpy as np
import pytest

from repro.ecc import BlockInterleaver, ConcatenatedCode, RepetitionCode
from repro.errors import BlockLengthError, ConfigurationError


@pytest.fixture
def interleaver():
    return BlockInterleaver(depth=4, span=8)


def test_rate_one(interleaver):
    assert interleaver.rate == 1.0


def test_round_trip(interleaver, random_payload):
    data = random_payload(interleaver.k * 3, seed=1)
    assert np.array_equal(interleaver.decode(interleaver.encode(data)), data)


def test_burst_spreads_across_codewords(interleaver):
    """A burst of `depth` adjacent channel bits lands in `depth` distinct
    de-interleaved rows."""
    data = np.zeros(interleaver.k, dtype=np.uint8)
    channel = interleaver.encode(data)
    channel[0:4] ^= 1  # 4-bit burst
    recovered = interleaver.decode(channel)
    rows = recovered.reshape(interleaver.depth, interleaver.span)
    errors_per_row = rows.sum(axis=1)
    assert np.all(errors_per_row == 1)


def test_composes_with_repetition(random_payload):
    code = ConcatenatedCode(RepetitionCode(3), BlockInterleaver(3, 5))
    data = random_payload(code.k * 2, seed=2)
    assert np.array_equal(code.decode(code.encode(data)), data)


def test_validation():
    with pytest.raises(ConfigurationError):
        BlockInterleaver(0, 5)
    inter = BlockInterleaver(2, 4)
    with pytest.raises(BlockLengthError):
        inter.encode(np.ones(7, dtype=np.uint8))
