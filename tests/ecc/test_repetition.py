"""Unit tests for the repetition code."""

import numpy as np
import pytest

from repro.ecc import RepetitionCode
from repro.errors import BlockLengthError, ConfigurationError


@pytest.fixture(params=["block", "bitwise"])
def code(request):
    return RepetitionCode(3, layout=request.param)


def test_round_trip_clean(code, random_payload):
    data = random_payload(64, seed=1)
    assert np.array_equal(code.decode(code.encode(data)), data)


def test_rate(code):
    assert code.rate == pytest.approx(1 / 3)


def test_single_error_per_vote_corrected():
    code = RepetitionCode(3, layout="block")
    data = np.array([1, 0, 1, 1], dtype=np.uint8)
    coded = code.encode(data)
    coded[0] ^= 1  # corrupt bit 0 of copy 0
    assert np.array_equal(code.decode(coded), data)


def test_bitwise_layout_structure():
    code = RepetitionCode(3, layout="bitwise")
    coded = code.encode(np.array([1, 0], dtype=np.uint8))
    assert coded.tolist() == [1, 1, 1, 0, 0, 0]


def test_block_layout_structure():
    code = RepetitionCode(3, layout="block")
    coded = code.encode(np.array([1, 0], dtype=np.uint8))
    assert coded.tolist() == [1, 0, 1, 0, 1, 0]


def test_majority_overwhelmed_by_two_errors():
    code = RepetitionCode(3, layout="bitwise")
    coded = code.encode(np.array([1], dtype=np.uint8))
    coded[0] ^= 1
    coded[1] ^= 1
    assert code.decode(coded).tolist() == [0]


@pytest.mark.parametrize("copies", [0, 2, 4, -1])
def test_even_or_nonpositive_copies_rejected(copies):
    with pytest.raises(ConfigurationError):
        RepetitionCode(copies)


def test_unknown_layout_rejected():
    with pytest.raises(ConfigurationError):
        RepetitionCode(3, layout="diagonal")


def test_decode_length_validation(code):
    with pytest.raises(BlockLengthError):
        code.decode(np.ones(4, dtype=np.uint8))


def test_single_copy_is_identity():
    code = RepetitionCode(1)
    data = np.array([1, 0, 1], dtype=np.uint8)
    assert np.array_equal(code.encode(data), data)


def test_random_channel_error_reduction(random_payload):
    """Statistical: 5 copies at 10% channel error -> ~0.86% residual."""
    rng = np.random.default_rng(0)
    code = RepetitionCode(5, layout="block")
    data = random_payload(20_000, seed=2)
    coded = code.encode(data)
    noisy = coded ^ (rng.random(coded.size) < 0.10).astype(np.uint8)
    residual = np.mean(code.decode(noisy) != data)
    assert residual == pytest.approx(0.0086, abs=0.004)


def test_counter_split_overruled_vs_corrections():
    """Regression: ``overruled`` (per outvoted copy) and ``corrections``
    (per repaired data bit) used to be conflated, inflating the
    pipeline's corrections total by up to copies//2 per bit."""
    from repro import telemetry
    from repro.telemetry import RingBufferSink

    sink = RingBufferSink()
    telemetry.add_sink(sink)
    code = RepetitionCode(5, layout="block")
    data = np.array([1, 0], dtype=np.uint8)
    coded = code.encode(data)
    # Bit 0: two copies flipped (two overruled, one correction).
    # Bit 1: one copy flipped (one overruled, one correction).
    coded[0] ^= 1
    coded[2] ^= 1
    coded[3] ^= 1
    with telemetry.trace("test"):
        assert np.array_equal(code.decode(coded), data)
    counters = {r["name"]: r["value"] for r in sink.records(type="counter")}
    assert counters["ecc.repetition.overruled"] == 3
    assert counters["ecc.repetition.corrections"] == 2
    assert counters["ecc.repetition.bits"] == 2


def test_clean_decode_counts_nothing(code):
    from repro import telemetry
    from repro.telemetry import RingBufferSink

    sink = RingBufferSink()
    telemetry.add_sink(sink)
    with telemetry.trace("test"):
        code.decode(code.encode(np.array([1, 0, 1], dtype=np.uint8)))
    counters = {r["name"]: r["value"] for r in sink.records(type="counter")}
    assert counters["ecc.repetition.overruled"] == 0
    assert counters["ecc.repetition.corrections"] == 0
