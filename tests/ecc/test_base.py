"""Unit tests for the Code interface plumbing."""

import numpy as np
import pytest

from repro.ecc import IdentityCode, RepetitionCode
from repro.errors import BlockLengthError


def test_identity_round_trip(random_payload):
    code = IdentityCode()
    data = random_payload(32, seed=0)
    assert np.array_equal(code.decode(code.encode(data)), data)
    assert code.rate == 1.0


def test_identity_copies_input(random_payload):
    code = IdentityCode()
    data = random_payload(8, seed=0)
    out = code.encode(data)
    out[0] ^= 1
    assert not np.array_equal(out, data)  # caller's array untouched


def test_encoded_length():
    code = RepetitionCode(3)
    assert code.encoded_length(10) == 30
    with pytest.raises(BlockLengthError):
        RepetitionCode(3).encoded_length(-3)


def test_encoded_length_block_mismatch():
    from repro.ecc import hamming_7_4

    with pytest.raises(BlockLengthError):
        hamming_7_4().encoded_length(10)


def test_empty_input_rejected():
    code = RepetitionCode(3)
    with pytest.raises(BlockLengthError):
        code.encode(np.zeros(0, dtype=np.uint8))
    with pytest.raises(BlockLengthError):
        code.decode(np.zeros(0, dtype=np.uint8))


def test_bytes_accepted_as_input():
    code = IdentityCode()
    out = code.encode(b"\xf0")
    assert out.tolist() == [1, 1, 1, 1, 0, 0, 0, 0]
