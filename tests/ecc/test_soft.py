"""Unit tests for the soft-decision (LLR) decoding layer.

The two load-bearing contracts:

- **saturation identity** — soft decoding of saturated LLRs is exactly
  the hard decoder, which is what makes ``decision="hard"`` a strict
  special case (also pinned by the ``ecc.soft_saturation`` oracle);
- **margins help** — with real (non-uniform) confidences the soft
  decoders recover patterns the hard decoders provably cannot.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.bitutils import majority_vote
from repro.ecc import RepetitionCode, hamming_7_4
from repro.ecc.interleave import BlockInterleaver
from repro.ecc.product import paper_end_to_end_code
from repro.ecc.soft import (
    LLR_SAT,
    chase_decode,
    estimate_p_flip,
    hard_bits,
    llr_scale,
    saturate,
    soft_combine,
    soft_decode,
    votes_to_llrs,
)
from repro.errors import BlockLengthError, ConfigurationError
from repro.telemetry import RingBufferSink


class TestLlrPrimitives:
    def test_votes_to_llrs_sign_convention(self):
        # Unanimous 0 -> positive, unanimous 1 -> negative, tie -> 0.
        llrs = votes_to_llrs([0, 5, 2], 5, 0.1)
        scale = llr_scale(0.1)
        assert llrs[0] == pytest.approx(5 * scale)
        assert llrs[1] == pytest.approx(-5 * scale)
        assert llrs[2] == pytest.approx(scale)
        assert votes_to_llrs([2], 4, 0.1)[0] == 0.0  # erasure

    def test_votes_to_llrs_validation(self):
        with pytest.raises(ConfigurationError):
            votes_to_llrs([0, 6], 5, 0.1)  # count above n_captures
        with pytest.raises(ConfigurationError):
            votes_to_llrs([-1], 5, 0.1)
        with pytest.raises(ConfigurationError):
            votes_to_llrs([0], 0, 0.1)

    def test_llr_scale_clamped_at_extremes(self):
        # Perfect agreement must not produce an infinite scale...
        assert llr_scale(0.0) == llr_scale(1e-3)
        assert np.isfinite(llr_scale(0.0))
        # ...and a hopeless channel must keep the scale positive.
        assert llr_scale(0.5) == llr_scale(0.4) > 0.0
        with pytest.raises(ConfigurationError):
            llr_scale(1.5)

    def test_estimate_p_flip(self):
        assert estimate_p_flip([0.1, 0.2]) == pytest.approx(0.15)
        assert estimate_p_flip([]) == pytest.approx(1e-3)  # floor
        assert estimate_p_flip([0.0]) == pytest.approx(1e-3)
        assert estimate_p_flip([0.49, 0.49]) == pytest.approx(0.4)  # ceiling

    def test_hard_bits_matches_majority_vote_including_ties(self):
        # llr <= 0 -> 1 must reproduce majority_vote's tie-to-1 rule, so
        # the even-stack characterization transfers to the LLR domain.
        rng = np.random.default_rng(7)
        stack = rng.integers(0, 2, (6, 200)).astype(np.uint8)
        llrs = votes_to_llrs(stack.sum(axis=0), 6, 0.1)
        np.testing.assert_array_equal(hard_bits(llrs), majority_vote(stack))

    def test_saturate_round_trip(self):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        llrs = saturate(bits)
        assert llrs.tolist() == [LLR_SAT, -LLR_SAT, -LLR_SAT, LLR_SAT]
        np.testing.assert_array_equal(hard_bits(llrs), bits)

    def test_saturate_rejects_non_bits(self):
        with pytest.raises(BlockLengthError):
            saturate([0, 2])


class TestSaturationIdentity:
    """soft_decode(code, saturate(word)) == code.decode(word) — for any
    word, not just codewords — on every flat code family."""

    @pytest.mark.parametrize(
        "code",
        [
            hamming_7_4(),
            RepetitionCode(3, layout="block"),
            RepetitionCode(5, layout="bitwise"),
            BlockInterleaver(span=7, depth=3),
        ],
        ids=lambda c: c.name,
    )
    def test_arbitrary_words(self, code):
        rng = np.random.default_rng(3)
        word = rng.integers(0, 2, 4 * code.n).astype(np.uint8)
        np.testing.assert_array_equal(
            soft_decode(code, saturate(word)), code.decode(word)
        )

    def test_identity_and_none_are_hard_bits(self):
        llrs = np.array([3.0, -1.0, 0.0])
        np.testing.assert_array_equal(soft_decode(None, llrs), [0, 1, 1])


class TestSoftRepetition:
    def test_confident_minority_outvotes_marginal_majority(self):
        # Two copies weakly wrong, one copy certain: the hard vote is
        # wrong by construction, the LLR sum is right.
        code = RepetitionCode(3, layout="block")
        llrs = np.array([-1.0, -1.0, LLR_SAT])  # data bit 0, copies say 1,1,0
        assert code.decode(hard_bits(llrs)).tolist() == [1]
        assert soft_decode(code, llrs).tolist() == [0]

    def test_erasure_copy_abstains(self):
        code = RepetitionCode(3, layout="block")
        # One erased copy, the remaining margin decides.
        assert soft_decode(code, np.array([0.0, 2.0, -0.5])).tolist() == [0]
        assert soft_decode(code, np.array([0.0, -2.0, 0.5])).tolist() == [1]

    def test_bitwise_layout_combines_per_bit(self):
        code = RepetitionCode(3, layout="bitwise")
        # Bit 0's copies are adjacent in bitwise layout.
        llrs = np.array([-1.0, -1.0, LLR_SAT, 2.0, 2.0, 2.0])
        assert soft_decode(code, llrs).tolist() == [0, 0]

    def test_counter_split_matches_hard_decoder_units(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        code = RepetitionCode(3, layout="block")
        # Data [0, 1]; copy 0 of bit 0 weakly wrong, all else certain.
        llrs = saturate(code.encode(np.array([0, 1], dtype=np.uint8)))
        llrs[0] = -1.0
        with telemetry.trace("test"):
            soft_decode(code, llrs)
        counters = {
            r["name"]: r["value"] for r in sink.records(type="counter")
        }
        assert counters["ecc.repetition.overruled"] == 1  # one copy outvoted
        assert counters["ecc.repetition.corrections"] == 1  # one data bit
        assert counters["ecc.repetition.bits"] == 2


class TestChase:
    def test_two_weak_errors_beat_bounded_distance(self):
        # Hamming(7,4) hard-corrects one flip per block.  Plant two flips
        # on low-confidence positions: the hard decoder moves to the
        # wrong codeword (flipping a third, fully-confident position);
        # Chase-2 spends its disagreement on the two cheap positions.
        code = hamming_7_4()
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        llrs = saturate(code.encode(data))
        for pos in (1, 4):
            llrs[pos] = -np.sign(llrs[pos])  # wrong, with |llr| = 1
        assert not np.array_equal(code.decode(hard_bits(llrs)), data)
        np.testing.assert_array_equal(chase_decode(code, llrs), data)

    def test_saturated_input_is_exactly_the_hard_decoder(self):
        # Uniform reliabilities: every candidate ties or loses against
        # the baseline, so Chase must return the bounded-distance result.
        code = hamming_7_4()
        rng = np.random.default_rng(5)
        word = rng.integers(0, 2, 7 * 8).astype(np.uint8)
        np.testing.assert_array_equal(
            chase_decode(code, saturate(word)), code.decode(word)
        )

    def test_trial_decodes_are_muted(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        code = hamming_7_4()
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        llrs = saturate(code.encode(data))
        llrs[2] = -llrs[2]
        with telemetry.trace("test"):
            chase_decode(code, llrs)
        names = {r["name"] for r in sink.records(type="counter")}
        # Only the chase accounting surfaces — the 2^test_bits trial
        # decodes must not inflate the wrapped code's counters.
        assert "ecc.chase.corrections" in names
        assert "ecc.chase.blocks" in names
        assert not any(n.startswith("ecc.hamming") for n in names)

    def test_negative_test_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            chase_decode(hamming_7_4(), saturate(np.zeros(7)), test_bits=-1)


class TestComposite:
    def test_paper_stack_saturated_round_trip(self):
        code = paper_end_to_end_code(3)
        rng = np.random.default_rng(9)
        data = rng.integers(0, 2, 3 * code.k).astype(np.uint8)
        np.testing.assert_array_equal(
            soft_decode(code, saturate(code.encode(data))), data
        )

    def test_soft_combine_chains_into_outer_stage(self):
        # The inner repetition stage must hand *summed* LLRs (not
        # saturated hard bits) to the outer decoder.
        code = RepetitionCode(3, layout="block")
        out = soft_combine(code, np.array([-1.0, -1.0, LLR_SAT]))
        assert out.shape == (1,)
        assert out[0] == pytest.approx(LLR_SAT - 2.0)

    def test_planted_vote_margins_soft_never_worse(self):
        # Simulated capture stacks (3-vote binomial margins) through the
        # paper's full stack: across seeds, soft decoding at least
        # matches hard — deterministic given the fixed seeds.
        code = paper_end_to_end_code(3)
        hard_errors = soft_errors = 0
        for seed in range(12):
            rng = np.random.default_rng(100 + seed)
            data = rng.integers(0, 2, 2 * code.k).astype(np.uint8)
            coded = code.encode(data)
            p_flip = 0.25
            ones = rng.binomial(3, np.where(coded == 1, 1 - p_flip, p_flip))
            llrs = votes_to_llrs(ones, 3, p_flip)
            hard_errors += int(
                np.count_nonzero(code.decode(hard_bits(llrs)) != data)
            )
            soft_errors += int(
                np.count_nonzero(soft_decode(code, llrs) != data)
            )
        assert soft_errors <= hard_errors
        assert soft_errors < hard_errors  # margins are worth something here

    def test_block_length_validation(self):
        code = hamming_7_4()
        with pytest.raises(BlockLengthError):
            soft_decode(code, np.zeros(8))
        with pytest.raises(BlockLengthError):
            soft_decode(code, np.zeros(0))
