"""Unit tests for GF(2^m) arithmetic."""

import pytest

from repro.ecc.gf2m import GF2m, PRIMITIVE_POLYS
from repro.errors import ConfigurationError


@pytest.fixture
def gf16():
    return GF2m(4)


class TestFieldAxioms:
    def test_exp_log_inverse_maps(self, gf16):
        for value in range(1, 16):
            assert gf16.exp[gf16.log[value]] == value

    def test_multiplication_table_closed(self, gf16):
        for a in range(16):
            for b in range(16):
                assert 0 <= gf16.mul(a, b) < 16

    def test_multiplicative_identity(self, gf16):
        for a in range(16):
            assert gf16.mul(a, 1) == a

    def test_zero_annihilates(self, gf16):
        for a in range(16):
            assert gf16.mul(a, 0) == 0

    def test_inverse(self, gf16):
        for a in range(1, 16):
            assert gf16.mul(a, gf16.inv(a)) == 1

    def test_division(self, gf16):
        for a in range(1, 16):
            for b in range(1, 16):
                assert gf16.mul(gf16.div(a, b), b) == a

    def test_zero_division_rejected(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.div(3, 0)
        with pytest.raises(ZeroDivisionError):
            gf16.inv(0)

    def test_primitive_element_generates_group(self, gf16):
        seen = {gf16.pow_alpha(i) for i in range(15)}
        assert seen == set(range(1, 16))

    def test_alpha_order(self, gf16):
        assert gf16.pow_alpha(15) == gf16.pow_alpha(0) == 1


class TestPolynomials:
    def test_poly_mul_gf2(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert GF2m.poly_mul_gf2(0b11, 0b11) == 0b101

    def test_minimal_polynomial_of_alpha_is_primitive(self, gf16):
        assert gf16.minimal_polynomial(gf16.pow_alpha(1)) == PRIMITIVE_POLYS[4]

    def test_minimal_polynomial_divides_annihilator(self, gf16):
        # Every element of GF(16) satisfies x^16 = x, so its minimal
        # polynomial has the element as a root.
        for value in range(1, 16):
            poly = gf16.minimal_polynomial(value)
            acc = 0
            for degree in range(poly.bit_length()):
                if (poly >> degree) & 1:
                    acc ^= gf16.pow_alpha(gf16.log[value] * degree)
            assert acc == 0, value

    def test_minimal_polynomial_of_one(self, gf16):
        assert gf16.minimal_polynomial(1) == 0b11  # x + 1


def test_unsupported_degree_rejected():
    with pytest.raises(ConfigurationError):
        GF2m(1)
    with pytest.raises(ConfigurationError):
        GF2m(11)


@pytest.mark.parametrize("m", sorted(PRIMITIVE_POLYS))
def test_all_supported_fields_construct(m):
    field = GF2m(m)
    assert field.mul(field.pow_alpha(1), field.inv(field.pow_alpha(1))) == 1
