"""Unit tests for the analytic ECC error models (Equation 1 and friends)."""

import math

import numpy as np
import pytest

from repro.ecc import RepetitionCode, hamming_7_4, vote_channel_capacity
from repro.ecc.analysis import (
    concatenated_residual_error,
    copies_to_reach,
    effective_capacity,
    exact_residual_ber,
    repetition_residual_error,
)
from repro.errors import ConfigurationError


class TestEquationOne:
    def test_paper_worked_example(self):
        """§5.2: '10% error becomes 2.8% when three copies are encoded'."""
        assert repetition_residual_error(0.10, 3) == pytest.approx(0.028, abs=1e-3)

    def test_single_copy_is_channel_error(self):
        assert repetition_residual_error(0.065, 1) == pytest.approx(0.065)

    def test_monotone_in_copies(self):
        errs = [repetition_residual_error(0.10, c) for c in (1, 3, 5, 7, 9)]
        assert errs == sorted(errs, reverse=True)

    def test_thirteen_copies_at_paper_error_near_zero(self):
        """§5.2: repetition alone 'brings the error to an absolute zero with
        13 copies' at the 6.5% channel (i.e. below their ~1e-5 resolution)."""
        assert repetition_residual_error(0.065, 13) < 1e-5

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        p, copies, trials = 0.2, 5, 200_000
        errors = (rng.random((trials, copies)) < p).sum(axis=1) > copies // 2
        assert repetition_residual_error(p, copies) == pytest.approx(
            errors.mean(), abs=0.003
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            repetition_residual_error(1.5, 3)
        with pytest.raises(ConfigurationError):
            repetition_residual_error(0.1, 4)


class TestCopiesToReach:
    def test_paper_five_copies_case(self):
        """§5.3: 6.5% channel with 5 copies reaches <0.3%."""
        assert copies_to_reach(0.065, 0.003) == 5

    def test_already_good_channel(self):
        assert copies_to_reach(0.001, 0.01) == 1

    def test_unreachable_raises(self):
        with pytest.raises(ConfigurationError):
            copies_to_reach(0.49, 1e-12, max_copies=5)


class TestExactEnumeration:
    def test_hamming74_residual_matches_monte_carlo(self):
        code = hamming_7_4()
        p = 0.05
        exact = exact_residual_ber(code, p)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, 4 * 50_000).astype(np.uint8)
        coded = code.encode(data)
        noisy = coded ^ (rng.random(coded.size) < p).astype(np.uint8)
        mc = float(np.mean(code.decode(noisy) != data))
        assert exact == pytest.approx(mc, abs=0.002)

    def test_zero_channel_zero_residual(self):
        assert exact_residual_ber(hamming_7_4(), 0.0) == 0.0

    def test_repetition_enumeration_matches_closed_form(self):
        code = RepetitionCode(5, layout="bitwise")
        p = 0.1
        assert exact_residual_ber(code, p) == pytest.approx(
            repetition_residual_error(p, 5), rel=1e-9
        )

    def test_large_blocks_refused(self):
        with pytest.raises(ConfigurationError):
            exact_residual_ber(RepetitionCode(21, layout="bitwise"), 0.1)

    def test_tiny_channel_error_does_not_underflow(self):
        """Regression: the per-pattern product p**w * (1-p)**(n-w) used to
        underflow to 0.0 for tiny p, reporting an exactly-zero residual.
        The log-space accumulation keeps subnormal but nonzero answers."""
        p = 3e-47
        residual = exact_residual_ber(RepetitionCode(13, layout="bitwise"), p)
        assert residual > 0.0
        # Dominant term: C(13,7) = 1716 weight-7 patterns, each wrong.
        # (The naive 1716 * p**7 underflows: compute it in log space.)
        analytic = math.exp(math.log(1716) + 7 * math.log(p))
        assert residual == pytest.approx(analytic, rel=1e-2)

    def test_degenerate_channels_stay_exact(self):
        code = RepetitionCode(3, layout="bitwise")
        assert exact_residual_ber(code, 0.0) == 0.0
        assert exact_residual_ber(code, 1.0) == 1.0


class TestVoteChannelCapacity:
    def test_soft_keeps_more_of_the_channel(self):
        # Collapsing the ones-count to a majority bit is a data
        # processing step: it can only lose information.
        for p in (0.05, 0.1, 0.2):
            for n in (3, 5, 7):
                soft = vote_channel_capacity(p, n, decision="soft")
                hard = vote_channel_capacity(p, n, decision="hard")
                assert 0.0 < hard < soft <= 1.0

    def test_single_capture_modes_agree(self):
        # With one capture the ones-count IS the bit: both reduce to the
        # BSC(p) capacity 1 - H(p).
        p = 0.1
        h = -(p * math.log2(p) + (1 - p) * math.log2(1 - p))
        for decision in ("hard", "soft"):
            assert vote_channel_capacity(p, 1, decision=decision) == (
                pytest.approx(1.0 - h, abs=1e-9)
            )

    def test_noiseless_channel_is_one_bit(self):
        assert vote_channel_capacity(0.0, 5) == pytest.approx(1.0)

    def test_monotone_in_captures(self):
        caps = [vote_channel_capacity(0.15, n) for n in (1, 3, 5, 7, 9)]
        assert caps == sorted(caps)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            vote_channel_capacity(1.5, 3)
        with pytest.raises(ConfigurationError):
            vote_channel_capacity(0.1, 0)
        with pytest.raises(ConfigurationError):
            vote_channel_capacity(0.1, 3, decision="fuzzy")


class TestComposedModel:
    def test_hamming_improves_on_repetition_alone(self):
        """Figure 10's point: the combination reaches low error with fewer
        copies than repetition alone."""
        p = 0.065
        for copies in (3, 5, 7):
            assert concatenated_residual_error(p, copies) < (
                repetition_residual_error(p, copies)
            )

    def test_effective_capacity(self):
        sram_bits = 64 * 1024 * 8
        assert effective_capacity(sram_bits, RepetitionCode(5)) == sram_bits // 5
        code74 = hamming_7_4()
        assert effective_capacity(sram_bits, code74) == sram_bits // 7 * 4

    def test_effective_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            effective_capacity(0, RepetitionCode(3))
