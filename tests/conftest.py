"""Shared fixtures for the Invisible Bits test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import make_device
from repro.device.catalog import device_spec
from repro.harness import ControlBoard


@pytest.fixture(autouse=True)
def _telemetry_isolated():
    """No test leaks telemetry sinks into the next one."""
    from repro import telemetry

    telemetry.reset()
    yield
    telemetry.reset()


@pytest.fixture(autouse=True)
def _metrics_isolated():
    """No test leaks metric values or the enable switch into the next one.

    Instruments are kept (module-level hot paths hold references to
    them); only their series are zeroed.
    """
    from repro import metrics

    metrics.disable()
    metrics.registry.reset_values()
    yield
    metrics.disable()
    metrics.registry.reset_values()


@pytest.fixture
def msp432_profile():
    """The calibrated MSP432P401 technology profile."""
    return device_spec("MSP432P401").technology


@pytest.fixture
def msp432_recipe():
    return device_spec("MSP432P401").recipe


@pytest.fixture
def small_board():
    """A 2 KiB MSP432 wired to a control board (fast default rig)."""
    device = make_device("MSP432P401", rng=1234, sram_kib=2)
    return ControlBoard(device)


@pytest.fixture
def random_payload():
    """Deterministic random payload factory: payload(n_bits, seed=0)."""

    def _make(n_bits: int, seed: int = 0) -> np.ndarray:
        return np.random.default_rng(seed).integers(0, 2, n_bits).astype(np.uint8)

    return _make


def encode_quick(board, payload, *, hours=None):
    """Encode without the (slow) firmware emulation path."""
    board.encode_message(
        payload,
        stress_hours=hours,
        use_firmware=False,
        camouflage=False,
    )
