"""Unit tests for the CRP authentication protocol."""

import numpy as np
import pytest

from repro.device import make_device
from repro.errors import ConfigurationError
from repro.puf import SramPuf, clone_power_on_state
from repro.puf.protocol import Challenge, PufVerifier, ReplayAttacker


@pytest.fixture
def provisioned():
    device = make_device("MSP432P401", rng=201, sram_kib=2)
    puf = SramPuf(device)
    verifier = PufVerifier(rng=7)
    db = verifier.enroll(puf, n_challenges=8, challenge_bits=512)
    return verifier, db, puf


class TestHappyPath:
    def test_legitimate_device_authenticates(self, provisioned):
        verifier, db, puf = provisioned
        challenge = verifier.issue_challenge(db)
        response = puf.response(challenge.offset, challenge.length)
        ok, distance = verifier.verify(db, challenge, response)
        assert ok
        assert distance < 0.05

    def test_challenges_never_reused(self, provisioned):
        verifier, db, _ = provisioned
        issued = {verifier.issue_challenge(db) for _ in range(8)}
        assert len(issued) == 8
        with pytest.raises(ConfigurationError):
            verifier.issue_challenge(db)

    def test_remaining_counter(self, provisioned):
        verifier, db, _ = provisioned
        assert db.remaining == 8
        verifier.issue_challenge(db)
        assert db.remaining == 7


class TestAdversaries:
    def test_impostor_device_rejected(self, provisioned):
        verifier, db, _ = provisioned
        impostor = SramPuf(make_device("MSP432P401", rng=202, sram_kib=2))
        challenge = verifier.issue_challenge(db)
        response = impostor.response(challenge.offset, challenge.length)
        ok, distance = verifier.verify(db, challenge, response)
        assert not ok
        assert distance > 0.4

    def test_replay_fails_on_fresh_challenge(self, provisioned):
        verifier, db, puf = provisioned
        attacker = ReplayAttacker()
        # The attacker records one legitimate session...
        seen = verifier.issue_challenge(db)
        attacker.observe(seen, puf.response(seen.offset, seen.length))
        # ...but the next session uses a fresh challenge.
        fresh = verifier.issue_challenge(db)
        assert attacker.respond(fresh) is None

    def test_clone_answers_unseen_challenges(self, provisioned):
        """The footnote-2 attack beats replay protection: a *physical*
        clone computes responses to challenges nobody ever transmitted."""
        verifier, db, puf = provisioned
        fingerprint = puf.response()
        blank = make_device("MSP432P401", rng=203, sram_kib=2)
        clone_power_on_state(fingerprint, blank)
        clone = SramPuf(blank)

        challenge = verifier.issue_challenge(db)  # never seen by anyone
        response = clone.response(challenge.offset, challenge.length)
        ok, distance = verifier.verify(db, challenge, response)
        assert ok  # the protocol cannot tell the clone from the victim
        assert distance < 0.20

    def test_wrong_size_response_rejected(self, provisioned):
        verifier, db, _ = provisioned
        challenge = verifier.issue_challenge(db)
        ok, distance = verifier.verify(
            db, challenge, np.zeros(challenge.length // 2, dtype=np.uint8)
        )
        assert not ok
        assert distance == 1.0


class TestValidation:
    def test_bad_challenge_geometry(self):
        with pytest.raises(ConfigurationError):
            Challenge(offset=-1, length=8)
        with pytest.raises(ConfigurationError):
            Challenge(offset=0, length=0)

    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            PufVerifier(threshold=0.6)

    def test_unknown_challenge_rejected(self, provisioned):
        verifier, db, _ = provisioned
        with pytest.raises(ConfigurationError):
            verifier.verify(
                db, Challenge(offset=1, length=3),
                np.zeros(3, dtype=np.uint8),
            )

    def test_oversize_challenge_bits(self, provisioned):
        verifier, _, puf = provisioned
        with pytest.raises(ConfigurationError):
            verifier.enroll(puf, challenge_bits=10**9)
