"""Integration tests for the footnote-2 PUF cloning attack."""

import pytest

from repro.device import make_device
from repro.errors import ConfigurationError
from repro.puf import SramPuf, clone_power_on_state, degrade_puf


@pytest.fixture
def victim_fingerprint():
    victim = make_device("MSP432P401", rng=51, sram_kib=1)
    return SramPuf(victim).response()


class TestClone:
    def test_clone_approaches_fingerprint(self, victim_fingerprint):
        blank = make_device("MSP432P401", rng=52, sram_kib=1)
        result = clone_power_on_state(victim_fingerprint, blank)
        # Pre-attack: unrelated devices sit at ~50%.
        assert result.baseline_distance == pytest.approx(0.5, abs=0.04)
        # Post-attack: the clone sits at the channel's error floor (~6.5%).
        assert result.clone_distance < 0.10
        assert result.cloned_fraction > 0.90

    def test_clone_fools_authentication(self, victim_fingerprint):
        blank = make_device("MSP432P401", rng=53, sram_kib=1)
        result = clone_power_on_state(victim_fingerprint, blank)
        assert result.fools_threshold(0.20)

    def test_short_stress_clones_less(self, victim_fingerprint):
        quick = clone_power_on_state(
            victim_fingerprint,
            make_device("MSP432P401", rng=54, sram_kib=1),
            stress_hours=2.0,
        )
        slow = clone_power_on_state(
            victim_fingerprint,
            make_device("MSP432P401", rng=55, sram_kib=1),
            stress_hours=10.0,
        )
        assert slow.clone_distance < quick.clone_distance

    def test_size_mismatch_rejected(self, victim_fingerprint):
        blank = make_device("MSP432P401", rng=56, sram_kib=2)
        with pytest.raises(ConfigurationError):
            clone_power_on_state(victim_fingerprint, blank)


class TestDenialOfService:
    def test_aging_bricks_the_puf(self):
        device = make_device("MSP432P401", rng=57, sram_kib=1)
        puf = SramPuf(device)
        enrollment = puf.enroll()
        before, after = degrade_puf(device, enrollment, stress_hours=4.0)
        assert before < 0.05
        assert after > 0.30
        ok, _ = puf.authenticate(enrollment)
        assert not ok

    def test_stress_hours_validated(self):
        device = make_device("MSP432P401", rng=58, sram_kib=1)
        enrollment = SramPuf(device).enroll()
        with pytest.raises(ConfigurationError):
            degrade_puf(device, enrollment, stress_hours=0.0)
