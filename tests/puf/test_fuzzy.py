"""Unit tests for the fuzzy extractor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.puf import FuzzyExtractor


@pytest.fixture
def extractor():
    return FuzzyExtractor(copies=15, secret_bits=64)


def make_response(size, seed=0):
    return np.random.default_rng(seed).integers(0, 2, size).astype(np.uint8)


class TestGenerateReproduce:
    def test_clean_reproduction(self, extractor):
        response = make_response(extractor.response_bits)
        key, helper = extractor.generate(response, rng=1)
        assert extractor.reproduce(response, helper) == key
        assert len(key) == 32  # SHA-256

    def test_noisy_reproduction_within_radius(self, extractor):
        response = make_response(extractor.response_bits, seed=2)
        key, helper = extractor.generate(response, rng=3)
        rng = np.random.default_rng(4)
        noisy = response ^ (rng.random(response.size) < 0.05).astype(np.uint8)
        assert extractor.reproduce(noisy, helper) == key

    def test_reproduction_fails_far_outside_radius(self, extractor):
        response = make_response(extractor.response_bits, seed=5)
        key, helper = extractor.generate(response, rng=6)
        stranger = make_response(extractor.response_bits, seed=7)
        assert extractor.reproduce(stranger, helper) != key

    def test_helper_data_does_not_leak_key(self, extractor):
        """Different responses, same helper shape; keys unrelated."""
        r1 = make_response(extractor.response_bits, seed=8)
        r2 = make_response(extractor.response_bits, seed=9)
        k1, h1 = extractor.generate(r1, rng=10)
        k2, h2 = extractor.generate(r2, rng=10)  # same secret rng!
        # Same secret but different responses -> different helper offsets.
        assert not np.array_equal(h1.offset, h2.offset)
        assert k1 == k2  # keys derive from the secret only

    def test_keys_differ_for_different_secrets(self, extractor):
        response = make_response(extractor.response_bits, seed=11)
        k1, _ = extractor.generate(response, rng=1)
        k2, _ = extractor.generate(response, rng=2)
        assert k1 != k2


class TestValidation:
    def test_short_response_rejected(self, extractor):
        with pytest.raises(ConfigurationError):
            extractor.generate(make_response(10))

    def test_mismatched_helper_rejected(self, extractor):
        response = make_response(extractor.response_bits, seed=12)
        _, helper = extractor.generate(response, rng=0)
        other = FuzzyExtractor(copies=7, secret_bits=64)
        with pytest.raises(ConfigurationError):
            other.reproduce(response[: other.response_bits], helper)

    def test_secret_bits_validated(self):
        with pytest.raises(ConfigurationError):
            FuzzyExtractor(secret_bits=10)


class TestFailureModel:
    def test_failure_probability_monotone(self, extractor):
        probs = [extractor.failure_probability(p) for p in (0.01, 0.05, 0.2)]
        assert probs == sorted(probs)

    def test_puf_noise_regime_is_safe(self, extractor):
        # 2% response noise with 15 copies: essentially never fails.
        assert extractor.failure_probability(0.02) < 1e-7
