"""Unit tests for the power-on TRNG."""

import numpy as np
import pytest

from repro.bitutils import bytes_to_bits
from repro.device import make_device
from repro.errors import ConfigurationError
from repro.puf import PowerOnTrng
from repro.puf.trng import von_neumann_extract
from repro.stats.randomness import run_battery


class TestVonNeumann:
    def test_known_pairs(self):
        bits = np.array([0, 1, 1, 0, 0, 0, 1, 1], dtype=np.uint8)
        assert von_neumann_extract(bits).tolist() == [0, 1]

    def test_output_unbiased_from_biased_input(self):
        rng = np.random.default_rng(0)
        biased = (rng.random(200_000) < 0.3).astype(np.uint8)
        out = von_neumann_extract(biased)
        assert out.mean() == pytest.approx(0.5, abs=0.01)

    def test_constant_input_yields_nothing(self):
        assert von_neumann_extract(np.ones(100, dtype=np.uint8)).size == 0

    def test_odd_length_handled(self):
        bits = np.array([0, 1, 1], dtype=np.uint8)
        assert von_neumann_extract(bits).tolist() == [0]


class TestTrng:
    @pytest.fixture
    def trng(self):
        device = make_device("MSP432P401", rng=61, sram_kib=4)
        trng = PowerOnTrng(device)
        trng.characterize()
        return trng

    def test_characterization_finds_noisy_cells(self, trng):
        # A few percent of cells are metastable at sigma_noise = 0.05.
        fraction = trng.noisy_cell_count / trng.device.sram.n_bits
        assert 0.005 < fraction < 0.15

    def test_raw_bits_come_from_noisy_cells_only(self, trng):
        raw = trng.raw_bits()
        assert raw.size == trng.noisy_cell_count

    def test_random_bytes_pass_battery(self, trng):
        data = trng.random_bytes(256)
        assert len(data) == 256
        for verdict in run_battery(bytes_to_bits(data)):
            assert verdict.passed, verdict

    def test_streams_differ_between_calls(self, trng):
        assert trng.random_bytes(32) != trng.random_bytes(32)

    def test_requires_characterization(self):
        device = make_device("MSP432P401", rng=62, sram_kib=1)
        trng = PowerOnTrng(device)
        with pytest.raises(ConfigurationError):
            trng.raw_bits()
        with pytest.raises(ConfigurationError):
            _ = trng.noisy_cell_count

    def test_validation(self):
        device = make_device("MSP432P401", rng=63, sram_kib=1)
        with pytest.raises(ConfigurationError):
            PowerOnTrng(device, characterization_captures=2)
        with pytest.raises(ConfigurationError):
            PowerOnTrng(device, min_flip_fraction=0.0)
        trng = PowerOnTrng(device)
        trng.characterize()
        with pytest.raises(ConfigurationError):
            trng.random_bytes(0)
