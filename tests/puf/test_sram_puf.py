"""Unit tests for the SRAM PUF primitive."""

import pytest

from repro.device import make_device
from repro.errors import ConfigurationError
from repro.puf import SramPuf, inter_device_distance, intra_device_distance


@pytest.fixture
def device():
    return make_device("MSP432P401", rng=41, sram_kib=2)


@pytest.fixture
def puf(device):
    return SramPuf(device)


class TestResponses:
    def test_response_is_reproducible(self, puf):
        a = puf.response()
        b = puf.response()
        assert (a != b).mean() < 0.02  # majority-voted: very stable

    def test_raw_response_is_noisier_than_voted(self, puf):
        voted_a, voted_b = puf.response(), puf.response()
        raw_a, raw_b = puf.raw_response(), puf.raw_response()
        assert (raw_a != raw_b).mean() >= (voted_a != voted_b).mean()

    def test_challenge_ranges(self, puf):
        r = puf.response(offset=64, length=256)
        assert r.size == 256

    def test_challenge_bounds_validated(self, puf):
        with pytest.raises(ConfigurationError):
            puf.response(offset=-1)
        with pytest.raises(ConfigurationError):
            puf.response(offset=0, length=10**9)

    def test_even_captures_rejected(self, device):
        with pytest.raises(ConfigurationError):
            SramPuf(device, n_captures=4)


class TestAuthentication:
    def test_self_authenticates(self, puf):
        enrollment = puf.enroll()
        ok, distance = puf.authenticate(enrollment)
        assert ok
        assert distance < 0.05

    def test_impostor_rejected(self, puf):
        enrollment = puf.enroll()
        impostor = SramPuf(make_device("MSP432P401", rng=42, sram_kib=2))
        ok, distance = impostor.authenticate(enrollment)
        assert not ok
        assert distance > 0.4

    def test_size_mismatch_rejected(self, puf):
        enrollment = puf.enroll()
        other = SramPuf(make_device("MSP432P401", rng=43, sram_kib=1))
        with pytest.raises(ConfigurationError):
            other.authenticate(enrollment)

    def test_threshold_validated(self, puf):
        enrollment = puf.enroll()
        with pytest.raises(ConfigurationError):
            puf.authenticate(enrollment, threshold=0.8)


class TestDistanceStatistics:
    def test_intra_device_small(self, device):
        assert intra_device_distance(device) < 0.05

    def test_inter_device_near_half(self):
        a = make_device("MSP432P401", rng=44, sram_kib=2)
        b = make_device("MSP432P401", rng=45, sram_kib=2)
        assert inter_device_distance(a, b) == pytest.approx(0.5, abs=0.03)

    def test_gap_supports_thresholding(self, device):
        """The whole point: intra << threshold << inter."""
        other = make_device("MSP432P401", rng=46, sram_kib=2)
        intra = intra_device_distance(device)
        inter = inter_device_distance(device, other)
        assert intra < 0.20 < inter

    def test_trials_validated(self, device):
        with pytest.raises(ConfigurationError):
            intra_device_distance(device, trials=1)
