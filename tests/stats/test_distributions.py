"""Unit tests for distribution helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.distributions import (
    density_histogram,
    mean_fraction_of_ones,
    power_on_bias,
)


def test_power_on_bias_extremes():
    samples = np.array([[1, 0, 1], [1, 0, 0], [1, 0, 1]], dtype=np.uint8)
    bias = power_on_bias(samples)
    assert bias.tolist() == [1.0, 0.0, pytest.approx(2 / 3)]


def test_power_on_bias_validates_shape():
    with pytest.raises(ConfigurationError):
        power_on_bias(np.zeros(5))
    with pytest.raises(ConfigurationError):
        power_on_bias(np.zeros((0, 5)))


def test_density_histogram_sums_to_one():
    rng = np.random.default_rng(0)
    centres, density = density_histogram(rng.random(1000), bins=10)
    assert centres.shape == (10,)
    assert density.sum() == pytest.approx(1.0)


def test_density_histogram_range():
    values = np.array([0.1, 0.5, 0.9])
    centres, density = density_histogram(values, bins=2, value_range=(0.0, 1.0))
    # 0.1 falls in [0, 0.5); 0.5 and 0.9 fall in [0.5, 1.0]
    assert density.tolist() == [pytest.approx(1 / 3), pytest.approx(2 / 3)]


def test_density_histogram_empty_rejected():
    with pytest.raises(ConfigurationError):
        density_histogram(np.array([]))


def test_mean_fraction_of_ones():
    assert mean_fraction_of_ones(np.array([1, 1, 0, 0], dtype=np.uint8)) == 0.5
    with pytest.raises(ConfigurationError):
        mean_fraction_of_ones(np.zeros(0, dtype=np.uint8))
