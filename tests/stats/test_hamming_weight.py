"""Unit tests for block Hamming-weight distributions (Figures 11/14)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats import block_weight_density, block_weights


def test_block_weights_basic():
    bits = np.concatenate(
        [np.ones(128, dtype=np.uint8), np.zeros(128, dtype=np.uint8)]
    )
    assert block_weights(bits).tolist() == [128, 0]


def test_density_sums_to_one():
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, 128 * 200).astype(np.uint8)
    axis, density = block_weight_density(bits)
    assert axis.shape == (129,)
    assert density.sum() == pytest.approx(1.0)


def test_random_bits_give_binomial_bell():
    """Fresh SRAM: weights cluster around 64 with binomial sigma ~5.66."""
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, 128 * 4096).astype(np.uint8)
    weights = block_weights(bits)
    assert weights.mean() == pytest.approx(64.0, abs=0.5)
    assert weights.std() == pytest.approx(np.sqrt(128 * 0.25), abs=0.5)


def test_biased_payload_shifts_distribution():
    rng = np.random.default_rng(2)
    bits = (rng.random(128 * 1000) < 0.3).astype(np.uint8)
    weights = block_weights(bits)
    assert weights.mean() == pytest.approx(128 * 0.3, abs=1.0)


def test_custom_block_size():
    bits = np.ones(64, dtype=np.uint8)
    assert block_weights(bits, block_bits=32).tolist() == [32, 32]


def test_invalid_block_size():
    with pytest.raises(ConfigurationError):
        block_weight_density(np.ones(8, dtype=np.uint8), block_bits=0)
