"""Unit tests for the randomness test battery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.randomness import (
    block_frequency_test,
    monobit_test,
    run_battery,
    runs_test,
)


@pytest.fixture
def random_bits():
    return np.random.default_rng(0).integers(0, 2, 50_000).astype(np.uint8)


class TestMonobit:
    def test_random_passes(self, random_bits):
        assert monobit_test(random_bits).passed

    def test_biased_fails(self):
        rng = np.random.default_rng(1)
        biased = (rng.random(50_000) < 0.45).astype(np.uint8)
        assert not monobit_test(biased).passed

    def test_known_sp80022_example(self):
        # SP 800-22 §2.1.8 example: 1011010101 -> p = 0.527089 (n=10 is
        # below our floor, so use the 100-bit epsilon example instead).
        eps = (
            "11001001000011111101101010100010001000010110100011"
            "00001000110100110001001100011001100010100010111000"
        )
        bits = np.array([int(c) for c in eps], dtype=np.uint8)
        assert monobit_test(bits).p_value == pytest.approx(0.109599, abs=1e-4)

    def test_short_input_rejected(self):
        with pytest.raises(ConfigurationError):
            monobit_test(np.ones(50, dtype=np.uint8))


class TestBlockFrequency:
    def test_random_passes(self, random_bits):
        assert block_frequency_test(random_bits).passed

    def test_locally_biased_fails(self):
        # Globally balanced but each block is constant: monobit would pass,
        # block frequency must not.
        blocks = np.concatenate(
            [np.zeros(128, dtype=np.uint8), np.ones(128, dtype=np.uint8)] * 50
        )
        assert monobit_test(blocks).passed
        assert not block_frequency_test(blocks).passed

    def test_too_few_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            block_frequency_test(np.ones(256, dtype=np.uint8), block_bits=128)


class TestRuns:
    def test_random_passes(self, random_bits):
        assert runs_test(random_bits).passed

    def test_alternating_fails(self):
        bits = np.tile(np.array([0, 1], dtype=np.uint8), 5000)
        assert not runs_test(bits).passed

    def test_long_runs_fail(self):
        bits = np.repeat(
            np.random.default_rng(2).integers(0, 2, 500), 20
        ).astype(np.uint8)
        assert not runs_test(bits).passed

    def test_prerequisite_failure_short_circuits(self):
        biased = (np.random.default_rng(3).random(10_000) < 0.3).astype(np.uint8)
        verdict = runs_test(biased)
        assert verdict.p_value == 0.0


class TestBattery:
    def test_random_passes_all(self, random_bits):
        verdicts = run_battery(random_bits)
        assert len(verdicts) == 3
        assert all(v.passed for v in verdicts)

    def test_aes_keystream_passes_all(self):
        from repro.bitutils import bytes_to_bits
        from repro.crypto import AesCtr

        stream = AesCtr(b"0123456789abcdef", b"battery-nonce"[:12]).keystream(8192)
        assert all(v.passed for v in run_battery(bytes_to_bits(stream.tobytes())))
