"""Unit tests for Welch's t-test, cross-checked against scipy."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import ConfigurationError
from repro.stats import welch_t_test


def test_matches_scipy():
    rng = np.random.default_rng(0)
    a = rng.normal(0.0, 1.0, 40)
    b = rng.normal(0.3, 2.0, 25)
    ours = welch_t_test(a, b)
    ref = scipy_stats.ttest_ind(a, b, equal_var=False)
    assert ours.t_statistic == pytest.approx(ref.statistic)
    assert ours.p_value_two_sided == pytest.approx(ref.pvalue)


def test_one_tailed_is_half_two_tailed():
    rng = np.random.default_rng(1)
    a = rng.normal(0, 1, 30)
    b = rng.normal(0.5, 1, 30)
    result = welch_t_test(a, b)
    assert result.p_value_one_tailed == pytest.approx(result.p_value_two_sided / 2)


def test_identical_populations_not_rejected():
    rng = np.random.default_rng(2)
    a = rng.normal(5.0, 1.0, 50)
    b = rng.normal(5.0, 1.0, 50)
    result = welch_t_test(a, b)
    assert not result.rejects_null()


def test_distinct_populations_rejected():
    rng = np.random.default_rng(3)
    a = rng.normal(0.0, 1.0, 50)
    b = rng.normal(2.0, 1.0, 50)
    assert welch_t_test(a, b).rejects_null()


def test_unequal_variance_dof():
    rng = np.random.default_rng(4)
    a = rng.normal(0, 1, 10)
    b = rng.normal(0, 10, 100)
    result = welch_t_test(a, b)
    assert result.degrees_of_freedom < len(a) + len(b) - 2


def test_means_reported():
    result = welch_t_test([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
    assert result.mean_a == pytest.approx(2.0)
    assert result.mean_b == pytest.approx(5.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        welch_t_test([1.0], [2.0, 3.0])
    with pytest.raises(ConfigurationError):
        welch_t_test([1.0, 1.0], [2.0, 2.0])
