"""Unit tests for Moran's I spatial autocorrelation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats import morans_i


class TestKnownPatterns:
    def test_checkerboard_is_maximally_negative(self):
        grid = np.indices((16, 16)).sum(axis=0) % 2
        result = morans_i(grid.astype(float))
        assert result.statistic < -0.9
        assert result.p_value < 1e-6

    def test_half_and_half_strongly_positive(self):
        grid = np.zeros((16, 16))
        grid[:, 8:] = 1.0
        result = morans_i(grid)
        assert result.statistic > 0.7
        assert result.p_value < 1e-6

    def test_random_noise_near_expected(self):
        rng = np.random.default_rng(0)
        grid = rng.standard_normal((64, 64))
        result = morans_i(grid)
        assert abs(result.statistic - result.expected) < 0.02
        assert result.is_spatially_random()

    def test_expected_value_formula(self):
        rng = np.random.default_rng(1)
        result = morans_i(rng.standard_normal((10, 10)))
        assert result.expected == pytest.approx(-1.0 / 99)


class TestPValues:
    def test_analytic_and_permutation_agree(self):
        rng = np.random.default_rng(2)
        grid = rng.standard_normal((20, 20))
        analytic = morans_i(grid)
        permuted = morans_i(grid, permutations=199, rng=3)
        # Both should agree this is random noise.
        assert analytic.p_value > 0.05
        assert permuted.p_value > 0.05

    def test_permutation_detects_structure(self):
        grid = np.zeros((12, 12))
        grid[:6] = 1.0
        result = morans_i(grid, permutations=199, rng=4)
        assert result.p_value < 0.05


class TestInterface:
    def test_flat_input_with_grid_shape(self):
        rng = np.random.default_rng(5)
        flat = rng.standard_normal(256)
        a = morans_i(flat, grid_shape=(16, 16))
        b = morans_i(flat.reshape(16, 16))
        assert a.statistic == pytest.approx(b.statistic)

    def test_binary_input_works(self):
        rng = np.random.default_rng(6)
        bits = rng.integers(0, 2, (32, 32)).astype(np.uint8)
        result = morans_i(bits)
        assert abs(result.statistic) < 0.1

    @pytest.mark.parametrize(
        "call",
        [
            lambda: morans_i(np.zeros(10)),  # flat without grid_shape
            lambda: morans_i(np.zeros(10), grid_shape=(3, 3)),  # size mismatch
            lambda: morans_i(np.zeros((1, 5))),  # degenerate grid
            lambda: morans_i(np.ones((8, 8))),  # constant input
            lambda: morans_i(np.zeros((2, 2, 2))),  # 3-D
        ],
    )
    def test_invalid_inputs(self, call):
        with pytest.raises(ConfigurationError):
            call()


class TestPermutationProvenance:
    """Satellite: the permutation branch replaces only p_value; the
    analytic moments ride along with explicit provenance."""

    def test_p_value_method_field(self):
        rng = np.random.default_rng(21)
        values = rng.standard_normal((8, 8))
        analytic = morans_i(values)
        permuted = morans_i(values, permutations=99, rng=0)
        assert analytic.p_value_method == "analytic"
        assert permuted.p_value_method == "permutation"

    def test_analytic_moments_unchanged_by_permutation_branch(self):
        rng = np.random.default_rng(22)
        values = rng.standard_normal((10, 10))
        analytic = morans_i(values)
        permuted = morans_i(values, permutations=99, rng=1)
        assert permuted.statistic == analytic.statistic
        assert permuted.expected == analytic.expected
        assert permuted.variance == analytic.variance
        assert permuted.z_score == analytic.z_score

    def test_analytic_and_permutation_p_values_agree(self):
        rng = np.random.default_rng(23)
        for trial in range(3):
            values = rng.standard_normal((8, 8))
            analytic = morans_i(values)
            permuted = morans_i(values, permutations=499, rng=trial)
            assert abs(analytic.p_value - permuted.p_value) < 0.15

    def test_agreement_on_a_clustered_grid(self):
        grid = np.zeros((8, 8))
        grid[:, 4:] = 1.0
        grid += np.random.default_rng(24).normal(0, 0.05, grid.shape)
        analytic = morans_i(grid)
        permuted = morans_i(grid, permutations=499, rng=2)
        # Both branches call a strongly clustered grid significant.
        assert analytic.p_value < 0.01 and permuted.p_value < 0.01
