"""Unit tests for Shannon entropy over byte symbols (Figure 12)."""

import numpy as np
import pytest

from repro.bitutils import bytes_to_bits
from repro.errors import ConfigurationError
from repro.stats import (
    normalized_entropy,
    per_symbol_entropy,
    shannon_entropy,
    symbol_distribution,
)


def test_uniform_bytes_entropy_is_eight_bits():
    bits = bytes_to_bits(bytes(range(256)) * 16)
    assert shannon_entropy(bits) == pytest.approx(8.0)


def test_paper_normalization_value():
    """Paper: fresh SRAM normalized entropy ~0.0312 (= 8/256)."""
    bits = bytes_to_bits(bytes(range(256)) * 16)
    assert normalized_entropy(bits) == pytest.approx(0.03125)


def test_constant_symbol_zero_entropy():
    bits = bytes_to_bits(b"\x42" * 100)
    assert shannon_entropy(bits) == 0.0


def test_two_symbols_one_bit():
    bits = bytes_to_bits(b"\x00\xff" * 50)
    assert shannon_entropy(bits) == pytest.approx(1.0)


def test_random_bits_approach_uniform():
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, 64 * 1024 * 8).astype(np.uint8)
    # 64 Ki symbols, like the paper's 64 KiB SRAM: near 8 bits.
    assert shannon_entropy(bits) > 7.99


def test_structured_payload_lower_entropy():
    """A mostly-zero payload (plaintext with padding) drops entropy —
    Figure 12's plain-text curve."""
    rng = np.random.default_rng(1)
    message = rng.integers(0, 2, 8 * 1024).astype(np.uint8)
    padded = np.concatenate([message, np.zeros(56 * 1024, dtype=np.uint8)])
    assert shannon_entropy(padded) < 3.0


def test_per_symbol_contributions_sum_to_total():
    rng = np.random.default_rng(2)
    bits = rng.integers(0, 2, 8000).astype(np.uint8)
    contributions = per_symbol_entropy(bits)
    assert contributions.shape == (256,)
    assert contributions.sum() == pytest.approx(shannon_entropy(bits))


def test_symbol_distribution_sums_to_one():
    bits = bytes_to_bits(b"hello world!")
    probs = symbol_distribution(bits)
    assert probs.sum() == pytest.approx(1.0)
    assert probs[ord("l")] == pytest.approx(3 / 12)


def test_partial_byte_rejected():
    with pytest.raises(ConfigurationError):
        shannon_entropy(np.ones(9, dtype=np.uint8))
