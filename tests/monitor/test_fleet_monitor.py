"""FleetMonitor: sampling, debounce, alert emission, live and offline."""

import json

import numpy as np
import pytest

from repro import InvisibleBits, paper_end_to_end_scheme, telemetry
from repro.device import make_device
from repro.faults import FaultInjector, FaultPlan
from repro.faults.models import StuckRegion
from repro.harness import ControlBoard
from repro.metrics import MetricsRegistry
from repro.monitor import AlertRule, FleetMonitor, ceiling_rule, default_slo_rules


def _monitor(rules=None, **kwargs):
    return FleetMonitor(rules, registry=MetricsRegistry(enabled=True), **kwargs)


def _set_raw_ber(monitor, value, device="d1"):
    gauge = monitor.registry.get("repro_raw_ber")
    gauge.set(value, device=device)


class TestSampling:
    def test_no_alert_below_threshold(self):
        monitor = _monitor(default_slo_rules())
        _set_raw_ber(monitor, 0.05)
        assert monitor.sample() == []
        assert monitor.samples == 1
        assert monitor.active_alerts() == []

    def test_alert_fires_on_violation(self):
        monitor = _monitor(default_slo_rules(raw_ber_ceiling=0.20))
        _set_raw_ber(monitor, 0.31)
        fired = monitor.sample()
        assert [a.rule for a in fired] == ["raw-ber-ceiling"]
        assert fired[0].severity == "page"
        assert fired[0].value == pytest.approx(0.31)
        assert monitor.active_alerts()[0].name == "raw-ber-ceiling"

    def test_rising_edge_only(self):
        monitor = _monitor(default_slo_rules(raw_ber_ceiling=0.20))
        _set_raw_ber(monitor, 0.31)
        assert len(monitor.sample()) == 1
        assert monitor.sample() == []  # still violating: no re-fire
        _set_raw_ber(monitor, 0.01)
        assert monitor.sample() == []  # resolved
        assert monitor.active_alerts() == []
        _set_raw_ber(monitor, 0.4)
        assert len(monitor.sample()) == 1  # re-fires after resolve

    def test_for_n_samples_debounce(self):
        monitor = _monitor(default_slo_rules(raw_ber_ceiling=0.2,
                                             for_n_samples=3))
        _set_raw_ber(monitor, 0.5)
        assert monitor.sample() == []
        assert monitor.sample() == []
        assert len(monitor.sample()) == 1

    def test_streak_resets_on_recovery(self):
        monitor = _monitor(default_slo_rules(raw_ber_ceiling=0.2,
                                             for_n_samples=2))
        _set_raw_ber(monitor, 0.5)
        monitor.sample()
        _set_raw_ber(monitor, 0.1)
        monitor.sample()
        _set_raw_ber(monitor, 0.5)
        assert monitor.sample() == []  # streak restarted

    def test_delta_rule_uses_change_since_previous_sample(self):
        rules = (
            ceiling_rule("retry-budget", "repro_retry_attempts_total", 5.0,
                         reduce="sum", delta=True, severity="warn"),
        )
        monitor = _monitor(rules)
        retries = monitor.registry.get("repro_retry_attempts_total")
        retries.inc(10)
        assert len(monitor.sample()) == 1  # first window counts from zero
        retries.inc(2)
        monitor.sample()
        assert monitor.active_alerts() == []  # only +2 this window

    def test_alerts_emitted_as_telemetry_records(self):
        sink = telemetry.RingBufferSink()
        telemetry.add_sink(sink)
        try:
            monitor = _monitor(default_slo_rules(raw_ber_ceiling=0.2))
            _set_raw_ber(monitor, 0.5)
            monitor.sample()
        finally:
            telemetry.remove_sink(sink)
        alerts = sink.records(type="alert")
        assert len(alerts) == 1
        assert alerts[0]["name"] == "raw-ber-ceiling"
        assert alerts[0]["severity"] == "page"

    def test_device_health_tracks_labelled_raw_ber(self):
        monitor = _monitor(default_slo_rules(raw_ber_ceiling=0.2))
        _set_raw_ber(monitor, 0.05, device="d1")
        _set_raw_ber(monitor, 0.5, device="d2")
        monitor.sample()
        health = monitor.device_health()
        assert health["d1"]["status"] == "ok"
        assert health["d2"]["status"] == "alerting"
        assert health["d2"]["history"] == [0.5]

    def test_series_accumulate_across_samples(self):
        monitor = _monitor(default_slo_rules())
        _set_raw_ber(monitor, 0.1)
        monitor.sample()
        _set_raw_ber(monitor, 0.2)
        monitor.sample()
        assert list(monitor.series[("repro_raw_ber", "max")]) == [0.1, 0.2]


class TestFeeding:
    def test_feed_records_through_bridge(self):
        monitor = _monitor(default_slo_rules())
        n = monitor.feed(
            [
                {"type": "counter", "name": "retry.attempts", "value": 4},
                {"type": "span", "name": "channel.receive",
                 "attrs": {"device": "d1", "raw_error_vs": 0.31}},
            ]
        )
        assert n == 2
        monitor.sample()
        assert [a.rule for a in monitor.alerts] == ["raw-ber-ceiling"]

    def test_feed_jsonl_tails_incrementally(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        rec1 = {"type": "counter", "name": "retry.attempts", "value": 1}
        rec2 = {"type": "counter", "name": "retry.attempts", "value": 2}
        trace.write_text(json.dumps(rec1) + "\n")
        monitor = _monitor(default_slo_rules())
        offset = monitor.feed_jsonl(trace)
        assert offset == len(trace.read_bytes())
        with trace.open("a") as handle:
            handle.write(json.dumps(rec2) + "\n")
        offset = monitor.feed_jsonl(trace, start=offset)
        monitor.sample()
        retries = monitor.registry.get("repro_retry_attempts_total")
        assert retries.series()[()].value == 3.0

    def test_feed_jsonl_leaves_partial_trailing_line(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        full = json.dumps({"type": "counter", "name": "retry.attempts",
                           "value": 1}) + "\n"
        partial = '{"type": "counter", "name": "retry.at'
        trace.write_text(full + partial)
        monitor = _monitor(default_slo_rules())
        offset = monitor.feed_jsonl(trace)
        assert offset == len(full.encode())
        retries = monitor.registry.get("repro_retry_attempts_total")
        assert retries.series()[()].value == 1.0

    def test_feed_jsonl_skips_garbage_lines(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text("not json\n" + json.dumps(
            {"type": "counter", "name": "retry.attempts", "value": 1}) + "\n")
        monitor = _monitor(default_slo_rules())
        monitor.feed_jsonl(trace)
        retries = monitor.registry.get("repro_retry_attempts_total")
        assert retries.series()[()].value == 1.0

    def test_attach_restores_registry_state(self):
        monitor = _monitor(default_slo_rules())
        monitor.registry.disable()
        with monitor.attach():
            assert monitor.registry.enabled
            assert telemetry.enabled()
        assert not monitor.registry.enabled
        assert not telemetry.enabled()


class TestLiveAcceptance:
    def test_stuck_region_fault_trips_raw_ber_slo(self):
        """A fault plan pushing raw BER past its SLO must page."""
        device = make_device("MSP432P401", rng=11, sram_kib=1)
        # The padding tail stuck at 0: the recovered payload reads 1 across
        # the back half of the array (~53% raw BER vs the ~6% healthy
        # baseline), while the coded prefix survives so receive() completes
        # and records raw_error_vs.
        n = device.sram.n_bits
        plan = FaultPlan(
            seed=0,
            models=(StuckRegion(offset=n // 2, length=n // 2, value=0),),
        )
        board = ControlBoard(device, fault_injector=FaultInjector(plan))
        channel = InvisibleBits(
            board,
            scheme=paper_end_to_end_scheme(None, copies=3),
            use_firmware=False,
        )
        monitor = _monitor(default_slo_rules(raw_ber_ceiling=0.20))
        with monitor.attach():
            sent = channel.send(b"x")
            result = channel.receive(expected_payload=sent.payload_bits)
            fired = monitor.sample()
        assert result.raw_error_vs > 0.20
        assert "raw-ber-ceiling" in [a.rule for a in fired]
        assert monitor.device_health()["MSP432P401"]["status"] == "alerting"

    def test_healthy_roundtrip_stays_quiet(self):
        device = make_device("MSP432P401", rng=12, sram_kib=1)
        channel = InvisibleBits(
            ControlBoard(device),
            scheme=paper_end_to_end_scheme(None, copies=3),
            use_firmware=False,
        )
        monitor = _monitor(default_slo_rules())
        with monitor.attach():
            sent = channel.send(b"y")
            result = channel.receive(expected_payload=sent.payload_bits)
            fired = monitor.sample()
        assert result.message == b"y"
        assert fired == []
        assert monitor.device_health()["MSP432P401"]["status"] == "ok"
