"""Dashboard and report rendering: plain ASCII, markdown, HTML."""

import pytest

from repro.metrics import MetricsRegistry
from repro.monitor import (
    FleetMonitor,
    default_slo_rules,
    render_dashboard,
    render_report,
    sparkline,
)


def _monitor_with_traffic(raw_ber=0.5):
    monitor = FleetMonitor(
        default_slo_rules(raw_ber_ceiling=0.2),
        registry=MetricsRegistry(enabled=True),
    )
    monitor.registry.get("repro_raw_ber").set(raw_ber, device="d1")
    monitor.registry.get("repro_retry_attempts_total").inc(3)
    monitor.sample()
    return monitor


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_stays_visible(self):
        assert sparkline([0.0, 0.0, 0.0]) == "..."

    def test_scales_to_ramp(self):
        strip = sparkline([0.0, 1.0])
        assert len(strip) == 2
        assert strip[-1] == "@"

    def test_truncates_to_width(self):
        assert len(sparkline(range(100), width=10)) == 10

    def test_ascii_only(self):
        strip = sparkline([1, 5, 2, 9, 0, 3])
        assert all(ord(ch) < 128 for ch in strip)


class TestDashboard:
    def test_empty_monitor_hints_at_sampling(self):
        monitor = FleetMonitor(registry=MetricsRegistry(enabled=True))
        text = render_dashboard(monitor)
        assert "no samples yet" in text

    def test_sections_present(self):
        text = render_dashboard(_monitor_with_traffic())
        assert "repro fleet monitor" in text
        assert "devices" in text
        assert "slo rules" in text
        assert "ALERTING" in text
        assert "FIRING" in text
        assert "raw-ber-ceiling" in text

    def test_plain_ascii(self):
        text = render_dashboard(_monitor_with_traffic())
        assert all(ord(ch) < 128 for ch in text)

    def test_monitor_method_delegates(self):
        monitor = _monitor_with_traffic()
        assert monitor.dashboard() == render_dashboard(monitor)


class TestReport:
    def test_markdown_tables(self):
        text = render_report(_monitor_with_traffic(), fmt="markdown")
        assert text.startswith("# Fleet monitor report")
        assert "| rule |" in text or "| rule " in text
        assert "raw-ber-ceiling" in text

    def test_html_is_standalone_and_escaped(self):
        monitor = _monitor_with_traffic()
        html = render_report(monitor, fmt="html")
        assert html.startswith("<!DOCTYPE html>")
        assert "</html>" in html
        assert "sev-page" in html  # severity styling on the alert row

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            render_report(_monitor_with_traffic(), fmt="pdf")

    def test_monitor_method_delegates(self):
        monitor = _monitor_with_traffic()
        assert monitor.report() == render_report(monitor, fmt="markdown")
