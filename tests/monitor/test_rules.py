"""AlertRule / reduce_metric semantics over registry snapshots."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics import MetricsRegistry
from repro.monitor import (
    AlertRule,
    ceiling_rule,
    default_slo_rules,
    floor_rule,
    reduce_metric,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry(enabled=True)
    return reg


def _snapshot_with_gauge(registry, name, **device_values):
    gauge = registry.gauge(name, labelnames=("device",))
    for device, value in device_values.items():
        gauge.set(value, device=device)
    return registry.snapshot()


class TestReduceMetric:
    def test_reducers(self, registry):
        snap = _snapshot_with_gauge(registry, "g", a=1.0, b=3.0)
        assert reduce_metric(snap, "g", "max") == 3.0
        assert reduce_metric(snap, "g", "min") == 1.0
        assert reduce_metric(snap, "g", "sum") == 4.0
        assert reduce_metric(snap, "g", "mean") == 2.0

    def test_absent_metric_is_none(self, registry):
        assert reduce_metric(registry.snapshot(), "nope", "max") is None

    def test_histogram_reduces_to_mean(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        hist.observe(2.0)
        hist.observe(4.0)
        assert reduce_metric(registry.snapshot(), "h", "max") == pytest.approx(3.0)

    def test_empty_histogram_is_none(self, registry):
        registry.histogram("h")
        assert reduce_metric(registry.snapshot(), "h", "mean") is None

    def test_delta_since_previous(self, registry):
        counter = registry.counter("c_total")
        counter.inc(5)
        previous = registry.snapshot()
        counter.inc(3)
        value = reduce_metric(
            registry.snapshot(), "c_total", "sum",
            previous=previous, delta=True,
        )
        assert value == 3.0

    def test_delta_without_previous_counts_from_zero(self, registry):
        counter = registry.counter("c_total")
        counter.inc(5)
        value = reduce_metric(registry.snapshot(), "c_total", "sum", delta=True)
        assert value == 5.0

    def test_bad_reducer_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            reduce_metric(registry.snapshot(), "x", "median")


class TestAlertRule:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AlertRule("", "m", lambda v: True)
        with pytest.raises(ConfigurationError):
            AlertRule("r", "m", "not-callable")
        with pytest.raises(ConfigurationError):
            AlertRule("r", "m", lambda v: True, for_n_samples=0)
        with pytest.raises(ConfigurationError):
            AlertRule("r", "m", lambda v: True, severity="critical")
        with pytest.raises(ConfigurationError):
            AlertRule("r", "m", lambda v: True, reduce="p99")

    def test_violated_ignores_missing_values(self):
        rule = ceiling_rule("r", "m", 1.0)
        assert not rule.violated(None)
        assert rule.violated(2.0)
        assert not rule.violated(0.5)

    def test_floor_rule(self):
        rule = floor_rule("r", "m", 1.5)
        assert rule.violated(1.0)
        assert not rule.violated(2.0)

    def test_message_names_metric_and_rule(self):
        rule = ceiling_rule("raw-ber-ceiling", "repro_raw_ber", 0.2)
        message = rule.message_for(0.31)
        assert "repro_raw_ber" in message
        assert "raw-ber-ceiling" in message
        assert "0.31" in message


class TestDefaultSloRules:
    def test_shape(self):
        rules = default_slo_rules()
        names = [rule.name for rule in rules]
        assert names == [
            "raw-ber-ceiling",
            "vote-margin-floor",
            "retry-budget",
            "quarantine-budget",
        ]
        by_name = {rule.name: rule for rule in rules}
        assert by_name["raw-ber-ceiling"].severity == "page"
        assert by_name["vote-margin-floor"].reduce == "mean"
        assert by_name["retry-budget"].delta is True
        assert by_name["quarantine-budget"].violated(1.0)

    def test_thresholds_parameterized(self):
        rules = {r.name: r for r in default_slo_rules(raw_ber_ceiling=0.05)}
        assert rules["raw-ber-ceiling"].violated(0.06)
        assert not rules["raw-ber-ceiling"].violated(0.04)


def test_alert_record_shape(registry):
    from repro.monitor import Alert

    alert = Alert(
        rule="raw-ber-ceiling",
        severity="page",
        metric="repro_raw_ber",
        value=0.4,
        sample=3,
        message="too hot",
    )
    record = alert.to_record()
    assert record["type"] == "alert"
    assert record["name"] == "raw-ber-ceiling"
    assert record["severity"] == "page"
    assert record["value"] == 0.4
    assert "ts" in record
