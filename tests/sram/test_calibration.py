"""Calibration against the paper's published anchors.

These tests pin the simulator to the paper: Table 4 bit rates, the Figure 6
error-vs-time shape, and the Figure 7 recovery multipliers.
"""

import pytest

from repro.device.catalog import TABLE4_DEVICES, device_spec
from repro.errors import ConfigurationError
from repro.sram.calibration import (
    calibrate_profile,
    error_to_shift,
    predicted_error,
    shift_to_error,
    solve_k_scale,
    stress_time_for_error,
)
from repro.units import hours


class TestShiftErrorMapping:
    def test_round_trip(self):
        for err in (0.01, 0.065, 0.2, 0.4):
            assert shift_to_error(error_to_shift(err)) == pytest.approx(err)

    def test_zero_shift_is_coin_flip(self):
        assert shift_to_error(0.0) == pytest.approx(0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            error_to_shift(0.5)
        with pytest.raises(ConfigurationError):
            error_to_shift(0.0)
        with pytest.raises(ConfigurationError):
            shift_to_error(-1.0)


class TestTable4Anchors:
    @pytest.mark.parametrize("name", TABLE4_DEVICES)
    def test_calibrated_profile_reproduces_anchor(self, name):
        spec = device_spec(name)
        recipe = spec.recipe
        err = predicted_error(
            spec.technology,
            vdd=recipe.vdd_stress,
            temp_c=recipe.temp_stress_c,
            stress_seconds=hours(recipe.stress_hours),
        )
        assert err == pytest.approx(recipe.single_copy_error, rel=1e-6)

    def test_solve_k_scale_positive(self):
        k = solve_k_scale(
            0.065,
            vdd_stress=3.3,
            temp_stress_c=85.0,
            stress_seconds=hours(10),
            vdd_nominal=1.2,
            time_exponent=0.75,
            voltage_exponent=4.5,
            activation_energy_ev=0.5,
        )
        assert 0 < k < 1e-3


class TestFigure6Shape:
    def test_error_falls_with_stress_time(self):
        tech = device_spec("MSP432P401").technology
        errs = [
            predicted_error(tech, vdd=3.3, temp_c=85.0, stress_seconds=hours(h))
            for h in (2, 4, 6, 8, 10)
        ]
        assert errs == sorted(errs, reverse=True)

    def test_figure6_endpoints(self):
        """Figure 6: ~33% at 2 h falling to ~5-7% at 10 h."""
        tech = device_spec("MSP432P401").technology
        at_2h = predicted_error(tech, vdd=3.3, temp_c=85.0, stress_seconds=hours(2))
        at_10h = predicted_error(tech, vdd=3.3, temp_c=85.0, stress_seconds=hours(10))
        assert 0.25 < at_2h < 0.40
        assert 0.05 < at_10h < 0.08

    def test_lower_error_needs_exponentially_longer(self):
        """'achieving lower error requires exponentially longer time'."""
        tech = device_spec("MSP432P401").technology
        t_10pct = stress_time_for_error(
            tech, vdd=3.3, temp_c=85.0, target_error=0.10
        )
        t_5pct = stress_time_for_error(tech, vdd=3.3, temp_c=85.0, target_error=0.05)
        t_1pct = stress_time_for_error(tech, vdd=3.3, temp_c=85.0, target_error=0.01)
        assert t_10pct < t_5pct < t_1pct
        assert (t_1pct - t_5pct) > (t_5pct - t_10pct)


class TestCalibrateProfile:
    def test_sets_anchor_exactly(self, msp432_profile):
        prof = calibrate_profile(
            msp432_profile.with_k_scale(1.0),
            target_error=0.10,
            vdd_stress=3.3,
            temp_stress_c=85.0,
            stress_seconds=hours(5),
        )
        err = predicted_error(prof, vdd=3.3, temp_c=85.0, stress_seconds=hours(5))
        assert err == pytest.approx(0.10, rel=1e-9)
