"""Unit tests for the data-retention-voltage model."""

import numpy as np
import pytest

from repro.bitutils import bit_error_rate
from repro.errors import ConfigurationError, PowerError
from repro.sram import SRAMArray
from repro.sram.drv import apply_brownout, cell_drv, drv_fingerprint, retention_failures
from repro.units import celsius_to_kelvin, hours


@pytest.fixture
def array(msp432_profile):
    return SRAMArray.from_kib(1, msp432_profile, rng=99)


class TestDrvSpectrum:
    def test_drv_below_nominal(self, array):
        drv = cell_drv(array)
        assert np.all(drv < array.technology.vdd_nominal)
        assert np.all(drv > 0)

    def test_mismatched_cells_have_higher_drv(self, array):
        drv = cell_drv(array)
        offsets = np.abs(array.offsets())
        # Strongly mismatched decile retains worse than the symmetric decile.
        hi = drv[offsets > np.quantile(offsets, 0.9)].mean()
        lo = drv[offsets < np.quantile(offsets, 0.1)].mean()
        assert hi > lo

    def test_aging_raises_drv(self, array, random_payload):
        before = cell_drv(array).mean()
        array.apply_power()
        array.write(random_payload(array.n_bits, seed=1))
        array.set_ambient(celsius_to_kelvin(85.0))
        array.set_voltage(3.3)
        array.hold(hours(10))
        array.remove_power()
        after = cell_drv(array).mean()
        assert after > before

    def test_validation(self, array):
        with pytest.raises(ConfigurationError):
            cell_drv(array, drv_nominal_fraction=0.0)
        with pytest.raises(ConfigurationError):
            cell_drv(array, drv_spread_fraction=-0.1)


class TestBrownout:
    def test_full_voltage_no_failures(self, array, random_payload):
        array.apply_power()
        array.write(random_payload(array.n_bits, seed=2))
        lost = apply_brownout(array, array.technology.vdd_nominal)
        assert lost == 0

    def test_deep_droop_loses_everything(self, array, random_payload):
        data = random_payload(array.n_bits, seed=3)
        array.apply_power()
        array.write(data)
        lost = apply_brownout(array, 0.05)
        assert lost == array.n_bits
        # Contents collapsed to the power-on preference: ~50% corrupted.
        assert bit_error_rate(data, array.read()) == pytest.approx(0.5, abs=0.05)

    def test_partial_droop_partial_loss(self, array, random_payload):
        data = random_payload(array.n_bits, seed=4)
        array.apply_power()
        array.write(data)
        drv = cell_drv(array)
        lost = apply_brownout(array, float(np.quantile(drv, 0.5)))
        assert 0 < lost < array.n_bits

    def test_requires_power(self, array):
        with pytest.raises(PowerError):
            apply_brownout(array, 0.3)


class TestFingerprint:
    def test_fingerprint_reproducible(self, array):
        a = drv_fingerprint(array, 0.42)
        b = drv_fingerprint(array, 0.42)
        assert np.array_equal(a, b)

    def test_fingerprint_unique_across_devices(self, msp432_profile):
        a = SRAMArray.from_kib(1, msp432_profile, rng=100)
        b = SRAMArray.from_kib(1, msp432_profile, rng=101)
        test_v = 0.43
        fp_a = drv_fingerprint(a, test_v)
        fp_b = drv_fingerprint(b, test_v)
        # Distinct devices disagree on a meaningful fraction of cells.
        assert 0.05 < bit_error_rate(fp_a, fp_b) < 0.95

    def test_threshold_sweeps_monotone(self, array):
        retained = [
            drv_fingerprint(array, v).mean() for v in (0.38, 0.45, 0.55)
        ]
        assert retained == sorted(retained)

    def test_validation(self, array):
        with pytest.raises(ConfigurationError):
            drv_fingerprint(array, 0.0)
        with pytest.raises(ConfigurationError):
            retention_failures(array, -1.0)
