"""Batch capture engine: bit-exact equivalence with the power-cycle loop.

The batch path in :meth:`SRAMArray.capture_power_on_states` must be
indistinguishable from calling :meth:`power_cycle` N times on an identical
twin — same seed, same aging history, same captures, same decode.  These
tests build twin arrays and compare bit-for-bit across every start
condition the harness can produce, plus the cache-invalidation edges.
"""

import numpy as np
import pytest

from repro.bitutils import majority_vote
from repro.errors import ConfigurationError
from repro.sram.array import SRAMArray
from repro.units import days, hours


def _aged_array(profile, *, seed=7, kib=1, stress_h=4.0):
    """A deterministically aged, unpowered array."""
    array = SRAMArray.from_kib(kib, profile, rng=seed)
    array.apply_power()
    payload = np.random.default_rng(99).integers(0, 2, array.n_bits)
    array.write(payload.astype(np.uint8))
    array.set_voltage(min(3.0, profile.vdd_abs_max))
    array.hold(hours(stress_h))
    array.remove_power()
    return array


def _twins(profile, **kwargs):
    return _aged_array(profile, **kwargs), _aged_array(profile, **kwargs)


def _loop_captures(array, n, **kwargs):
    return np.stack([array.power_cycle(**kwargs) for _ in range(n)])


def test_batch_equals_loop_from_unpowered(msp432_profile):
    a, b = _twins(msp432_profile)
    batch = a.capture_power_on_states(5)
    loop = _loop_captures(b, 5)
    assert np.array_equal(batch, loop)
    assert np.array_equal(majority_vote(batch), majority_vote(loop))


def test_batch_equals_loop_from_powered(msp432_profile):
    a, b = _twins(msp432_profile)
    a.apply_power()
    b.apply_power()
    assert np.array_equal(a.capture_power_on_states(5), _loop_captures(b, 5))


def test_batch_equals_loop_undrained(msp432_profile):
    a, b = _twins(msp432_profile)
    a.apply_power()
    b.apply_power()
    batch = a.capture_power_on_states(5, off_seconds=0.05, drain=False)
    loop = _loop_captures(b, 5, off_seconds=0.05, drain=False)
    assert np.array_equal(batch, loop)


def test_batch_equals_loop_with_retained_start(msp432_profile):
    """Remanence from an earlier undrained power-off reaches capture 0."""
    a, b = _twins(msp432_profile)
    for array in (a, b):
        array.apply_power()
        array.fill(1)
        array.remove_power(drain=False)
        array.shelve(0.05)
    batch = a.capture_power_on_states(5)
    loop = _loop_captures(b, 5)
    assert np.array_equal(batch, loop)


def test_batch_equals_loop_on_fresh_array(msp432_profile):
    a = SRAMArray.from_kib(1, msp432_profile, rng=3)
    b = SRAMArray.from_kib(1, msp432_profile, rng=3)
    assert np.array_equal(a.capture_power_on_states(7), _loop_captures(b, 7))


def test_batch_equals_loop_across_long_gaps(msp432_profile):
    """Off times long enough to exhaust the drift budget force per-capture
    cache refreshes; the fallback schedule must still match the loop."""
    a, b = _twins(msp432_profile)
    a.shelve(days(30))
    b.shelve(days(30))
    batch = a.capture_power_on_states(4, off_seconds=days(2))
    loop = _loop_captures(b, 4, off_seconds=days(2))
    assert np.array_equal(batch, loop)


def test_batch_equals_loop_after_toggle_widening(msp432_profile):
    """Write traffic widens the noise sigma; the cache must notice."""
    a, b = _twins(msp432_profile)
    for array in (a, b):
        array.capture_power_on_states(2)
        array.fill(0)
        array.fill(1)
        array.operate(60.0, duty=0.25)
    assert np.array_equal(a.capture_power_on_states(3), _loop_captures(b, 3))


def test_batch_equals_loop_at_elevated_temperature(msp432_profile):
    a, b = _twins(msp432_profile)
    a.set_ambient(358.15)
    b.set_ambient(358.15)
    assert np.array_equal(a.capture_power_on_states(5), _loop_captures(b, 5))


def test_interleaved_batches_and_cycles_stay_in_lockstep(msp432_profile):
    a, b = _twins(msp432_profile)
    first = a.capture_power_on_states(3)
    assert np.array_equal(first, _loop_captures(b, 3))
    # Age both again, then capture again: cache was invalidated on `a`.
    for array in (a, b):  # both ended their captures powered
        array.fill(0)
        array.hold(hours(1))
        array.remove_power()
    assert np.array_equal(a.capture_power_on_states(3), _loop_captures(b, 3))


def test_offsets_exact_after_batch_captures(msp432_profile):
    """The memoised offsets vector equals a from-scratch recompute."""
    array = _aged_array(msp432_profile)
    array.capture_power_on_states(5)
    nbti = array._nbti
    expected = (
        array.mismatch
        + nbti.dvth(array.age_when_0.copy())
        - nbti.dvth(array.age_when_1.copy())
    )
    assert np.array_equal(array.offsets(), expected)


def test_offsets_returns_a_copy(msp432_profile):
    array = _aged_array(msp432_profile)
    first = array.offsets()
    first[:] = 0.0
    assert not np.array_equal(array.offsets(), first)


def test_invalidate_analog_caches_survives_external_mutation(msp432_profile):
    a, b = _twins(msp432_profile)
    a.capture_power_on_states(2)
    b.capture_power_on_states(2)
    # Mutate aging state behind the array's back on both twins.
    for array in (a, b):
        array.age_when_1.stress_seconds *= 0.5
        array.invalidate_analog_caches()
    assert np.array_equal(a.capture_power_on_states(3), _loop_captures(b, 3))


def test_capture_count_validation(msp432_profile):
    array = SRAMArray.from_kib(1, msp432_profile, rng=0)
    with pytest.raises(ConfigurationError):
        array.capture_power_on_states(0)


def test_batch_shapes_and_dtype(msp432_profile):
    array = SRAMArray.from_kib(1, msp432_profile, rng=0)
    samples = array.capture_power_on_states(5)
    assert samples.shape == (5, array.n_bits)
    assert samples.dtype == np.uint8
    assert set(np.unique(samples)) <= {0, 1}
