"""Unit tests for technology profiles."""

import pytest

from repro.errors import ConfigurationError, OverstressError
from repro.sram.technology import TechnologyProfile


@pytest.fixture
def profile():
    return TechnologyProfile(
        name="test90", node_nm=90, vdd_nominal=1.2, vdd_abs_max=3.8
    )


def test_models_constructed_from_profile(profile):
    accel = profile.acceleration_model()
    assert accel.vdd_nominal == 1.2
    nbti = profile.nbti_model()
    assert nbti.k_scale == profile.nbti_k_scale


def test_operating_point_guard(profile):
    profile.check_operating_point(3.3, 358.0)  # fine
    with pytest.raises(OverstressError):
        profile.check_operating_point(4.5, 300.0)
    with pytest.raises(OverstressError):
        profile.check_operating_point(1.2, 500.0)
    with pytest.raises(ConfigurationError):
        profile.check_operating_point(-1.0, 300.0)


def test_with_k_scale_returns_copy(profile):
    other = profile.with_k_scale(5e-6)
    assert other.nbti_k_scale == 5e-6
    assert profile.nbti_k_scale != 5e-6
    assert other.name == profile.name


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(vdd_nominal=0.0, vdd_abs_max=1.0),
        dict(vdd_nominal=2.0, vdd_abs_max=1.0),
        dict(vdd_nominal=1.2, vdd_abs_max=3.0, noise_sigma=-0.1),
        dict(vdd_nominal=1.2, vdd_abs_max=3.0, correlated_share=1.5),
        dict(vdd_nominal=1.2, vdd_abs_max=3.0, remanence_tau_s=0.0),
    ],
)
def test_invalid_profiles(kwargs):
    with pytest.raises(ConfigurationError):
        TechnologyProfile(name="bad", node_nm=90, **kwargs)


class TestDeratedEnvelope:
    @pytest.fixture
    def derated(self):
        return TechnologyProfile(
            name="test90",
            node_nm=90,
            vdd_nominal=1.2,
            vdd_abs_max=3.8,
            derate_k_per_v=20.0,
        )

    def test_temp_max_drops_with_overdrive(self, derated):
        assert derated.temp_max_k(1.2) == derated.temp_abs_max_k
        assert derated.temp_max_k(1.0) == derated.temp_abs_max_k  # no credit below nominal
        assert derated.temp_max_k(2.2) == pytest.approx(derated.temp_abs_max_k - 20.0)

    def test_joint_corner_rejected(self, derated):
        near_max = derated.temp_abs_max_k - 5.0
        derated.check_operating_point(1.2, near_max)  # fine at nominal supply
        with pytest.raises(OverstressError):
            derated.check_operating_point(3.3, near_max)

    def test_default_profile_not_derated(self, profile):
        assert profile.temp_max_k(profile.vdd_abs_max) == profile.temp_abs_max_k

    def test_negative_derating_rejected(self):
        with pytest.raises(ConfigurationError):
            TechnologyProfile(
                name="bad",
                node_nm=90,
                vdd_nominal=1.2,
                vdd_abs_max=3.8,
                derate_k_per_v=-1.0,
            )
