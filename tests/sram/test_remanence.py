"""Unit tests for the data-remanence model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sram.remanence import RemanenceModel
from repro.units import celsius_to_kelvin


@pytest.fixture
def model():
    return RemanenceModel(tau_nominal_s=0.25)


def test_instant_recycle_retains(model):
    assert model.retention_probability(0.0, celsius_to_kelvin(25)) == 1.0


def test_long_off_time_decays(model):
    assert model.retention_probability(60.0, celsius_to_kelvin(25)) < 1e-9


def test_probability_monotone_in_time(model):
    t = celsius_to_kelvin(25)
    probs = [model.retention_probability(s, t) for s in (0.0, 0.1, 0.5, 2.0)]
    assert probs == sorted(probs, reverse=True)


def test_heat_accelerates_decay(model):
    cold = model.retention_probability(0.5, celsius_to_kelvin(0))
    hot = model.retention_probability(0.5, celsius_to_kelvin(85))
    assert hot < cold


def test_retained_mask_statistics(model):
    rng = np.random.default_rng(0)
    mask = model.retained_mask(100_000, 0.25, celsius_to_kelvin(25), rng)
    # P(retain) = e^-1 ~ 0.368
    assert mask.mean() == pytest.approx(np.exp(-1), abs=0.01)


def test_retained_mask_extremes(model):
    rng = np.random.default_rng(0)
    assert model.retained_mask(100, 0.0, 298.0, rng).all()
    assert not model.retained_mask(100, 1e6, 298.0, rng).any()


def test_validation(model):
    with pytest.raises(ConfigurationError):
        RemanenceModel(tau_nominal_s=0.0)
    with pytest.raises(ConfigurationError):
        model.retention_probability(-1.0, 298.0)
    with pytest.raises(ConfigurationError):
        model.tau(0.0)
