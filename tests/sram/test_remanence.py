"""Unit tests for the data-remanence model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sram.remanence import RemanenceModel
from repro.units import celsius_to_kelvin


@pytest.fixture
def model():
    return RemanenceModel(tau_nominal_s=0.25)


def test_instant_recycle_retains(model):
    assert model.retention_probability(0.0, celsius_to_kelvin(25)) == 1.0


def test_long_off_time_decays(model):
    assert model.retention_probability(60.0, celsius_to_kelvin(25)) < 1e-9


def test_probability_monotone_in_time(model):
    t = celsius_to_kelvin(25)
    probs = [model.retention_probability(s, t) for s in (0.0, 0.1, 0.5, 2.0)]
    assert probs == sorted(probs, reverse=True)


def test_heat_accelerates_decay(model):
    cold = model.retention_probability(0.5, celsius_to_kelvin(0))
    hot = model.retention_probability(0.5, celsius_to_kelvin(85))
    assert hot < cold


def test_retained_mask_statistics(model):
    rng = np.random.default_rng(0)
    mask = model.retained_mask(100_000, 0.25, celsius_to_kelvin(25), rng)
    # P(retain) = e^-1 ~ 0.368
    assert mask.mean() == pytest.approx(np.exp(-1), abs=0.01)


def test_retained_mask_extremes(model):
    rng = np.random.default_rng(0)
    assert model.retained_mask(100, 0.0, 298.0, rng).all()
    assert not model.retained_mask(100, 1e6, 298.0, rng).any()


def test_validation(model):
    with pytest.raises(ConfigurationError):
        RemanenceModel(tau_nominal_s=0.0)
    with pytest.raises(ConfigurationError):
        model.retention_probability(-1.0, 298.0)
    with pytest.raises(ConfigurationError):
        model.tau(0.0)


def test_retention_probability_vectorized(model):
    t = celsius_to_kelvin(25)
    gaps = np.array([0.0, 0.1, 0.5, 2.0])
    vec = model.retention_probability(gaps, t)
    assert vec.shape == gaps.shape
    for gap, p in zip(gaps, vec):
        assert p == pytest.approx(model.retention_probability(float(gap), t))
    with pytest.raises(ConfigurationError):
        model.retention_probability(np.array([0.1, -0.1]), t)


def test_retained_masks_match_sequential_calls(model):
    t = celsius_to_kelvin(25)
    batched = model.retained_masks(256, 0.2, t, np.random.default_rng(11), 5)
    rng = np.random.default_rng(11)
    sequential = np.stack(
        [model.retained_mask(256, 0.2, t, rng) for _ in range(5)]
    )
    assert batched.shape == (5, 256)
    assert np.array_equal(batched, sequential)


def test_retained_masks_extremes(model):
    t = celsius_to_kelvin(25)
    rng = np.random.default_rng(0)
    assert model.retained_masks(16, 0.0, t, rng, 3).all()
    assert not model.retained_masks(16, 1e6, t, rng, 3).any()
    with pytest.raises(ConfigurationError):
        model.retained_masks(16, 0.1, t, rng, 0)
