"""Unit tests for the SRAM array simulator — the core substrate."""

import numpy as np
import pytest

from repro.bitutils import bit_error_rate, invert_bits, majority_vote
from repro.errors import ConfigurationError, OverstressError, PowerError
from repro.sram import SRAMArray
from repro.units import celsius_to_kelvin, days, hours


@pytest.fixture
def array(msp432_profile):
    return SRAMArray.from_kib(1, msp432_profile, rng=42)


def encode(arr, payload, stress_h=10.0):
    """Write payload, stress at the MSP432 recipe, power down."""
    arr.apply_power()
    arr.write(payload)
    arr.set_ambient(celsius_to_kelvin(85.0))
    arr.set_voltage(3.3)
    arr.hold(hours(stress_h))
    arr.remove_power()
    arr.set_ambient(celsius_to_kelvin(25.0))


def decoded_error(arr, payload, captures=5):
    state = majority_vote(arr.capture_power_on_states(captures))
    arr.remove_power()
    return bit_error_rate(payload, invert_bits(state))


class TestConstruction:
    def test_sizes(self, msp432_profile):
        arr = SRAMArray.from_kib(2, msp432_profile, rng=0)
        assert arr.n_bits == 16384
        assert arr.n_bytes == 2048

    def test_rejects_bad_sizes(self, msp432_profile):
        with pytest.raises(ConfigurationError):
            SRAMArray(0, msp432_profile)
        with pytest.raises(ConfigurationError):
            SRAMArray(8, msp432_profile, row_width=0)

    def test_same_seed_same_variation(self, msp432_profile):
        a = SRAMArray(1024, msp432_profile, rng=7)
        b = SRAMArray(1024, msp432_profile, rng=7)
        assert np.array_equal(a.mismatch, b.mismatch)

    def test_grid_shape_covers_all_cells(self, array):
        rows, cols = array.grid_shape()
        assert rows * cols >= array.n_bits


class TestPowerDiscipline:
    def test_unpowered_operations_rejected(self, array):
        with pytest.raises(PowerError):
            array.read()
        with pytest.raises(PowerError):
            array.write(np.zeros(8, dtype=np.uint8))
        with pytest.raises(PowerError):
            array.hold(1.0)
        with pytest.raises(PowerError):
            array.remove_power()

    def test_double_power_rejected(self, array):
        array.apply_power()
        with pytest.raises(PowerError):
            array.apply_power()

    def test_shelve_requires_power_off(self, array):
        array.apply_power()
        with pytest.raises(PowerError):
            array.shelve(10.0)

    def test_overstress_guard(self, array):
        array.apply_power()
        with pytest.raises(OverstressError):
            array.set_voltage(10.0)
        with pytest.raises(OverstressError):
            array.set_ambient(celsius_to_kelvin(200.0))


class TestMemoryOperations:
    def test_write_read_round_trip(self, array, random_payload):
        data = random_payload(array.n_bits)
        array.apply_power()
        array.write(data)
        assert np.array_equal(array.read(), data)

    def test_partial_write_at_offset(self, array):
        array.apply_power()
        array.write(np.ones(16, dtype=np.uint8), bit_offset=100)
        assert array.read(16, bit_offset=100).tolist() == [1] * 16

    def test_out_of_bounds_write(self, array):
        array.apply_power()
        with pytest.raises(ConfigurationError):
            array.write(np.ones(16, dtype=np.uint8), bit_offset=array.n_bits - 8)

    def test_fill(self, array):
        array.apply_power()
        array.fill(1)
        assert array.read().all()
        array.fill(0)
        assert not array.read().any()
        with pytest.raises(ConfigurationError):
            array.fill(2)

    def test_reads_do_not_disturb_analog_state(self, array):
        array.apply_power()
        offsets_before = array.offsets().copy()
        for _ in range(10):
            array.read()
        assert np.array_equal(array.offsets(), offsets_before)


class TestPowerOnBehaviour:
    def test_fresh_array_is_roughly_unbiased(self, msp432_profile):
        arr = SRAMArray.from_kib(8, msp432_profile, rng=1)
        state = arr.apply_power()
        assert state.mean() == pytest.approx(0.5, abs=0.02)

    def test_power_on_mostly_stable_across_cycles(self, array):
        caps = array.capture_power_on_states(2)
        flips = bit_error_rate(caps[0], caps[1])
        # Only the symmetric (noisy) cells flip: a few percent.
        assert flips < 0.10

    def test_majority_voting_filters_noise(self, msp432_profile):
        arr = SRAMArray.from_kib(2, msp432_profile, rng=3)
        votes_a = majority_vote(arr.capture_power_on_states(5))
        arr.remove_power()
        votes_b = majority_vote(arr.capture_power_on_states(5))
        assert bit_error_rate(votes_a, votes_b) < bit_error_rate(
            arr.capture_power_on_states(1)[0],
            votes_a,
        )


class TestDataDirectedAging:
    def test_stress_biases_complement(self, array):
        """Paper §2.2: stressing with a value biases power-on to ~value."""
        array.apply_power()
        array.fill(1)
        array.set_ambient(celsius_to_kelvin(85.0))
        array.set_voltage(3.3)
        array.hold(hours(4))
        array.remove_power()
        array.set_ambient(celsius_to_kelvin(25.0))
        state = array.apply_power()
        assert state.mean() < 0.3  # mostly 0s after all-1s stress

    def test_encode_decode_error_near_recipe(self, msp432_profile, random_payload):
        arr = SRAMArray.from_kib(4, msp432_profile, rng=11)
        payload = random_payload(arr.n_bits, seed=2)
        encode(arr, payload)
        err = decoded_error(arr, payload)
        assert err == pytest.approx(0.065, abs=0.01)

    def test_longer_stress_lower_error(self, msp432_profile, random_payload):
        errors = []
        for stress_h in (2.0, 10.0):
            arr = SRAMArray.from_kib(2, msp432_profile, rng=5)
            payload = random_payload(arr.n_bits, seed=3)
            encode(arr, payload, stress_h=stress_h)
            errors.append(decoded_error(arr, payload))
        assert errors[1] < errors[0]

    def test_nominal_conditions_barely_age(self, msp432_profile, random_payload):
        """Figure 3d's bottom curve: nominal V/T stress does ~nothing."""
        arr = SRAMArray.from_kib(1, msp432_profile, rng=5)
        payload = random_payload(arr.n_bits, seed=3)
        arr.apply_power()
        arr.write(payload)
        arr.hold(hours(4))  # nominal 1.2 V / 25 C
        arr.remove_power()
        err = decoded_error(arr, payload)
        assert err == pytest.approx(0.5, abs=0.05)  # still a coin flip


class TestRecovery:
    def test_shelving_increases_error(self, msp432_profile, random_payload):
        arr = SRAMArray.from_kib(2, msp432_profile, rng=9)
        payload = random_payload(arr.n_bits, seed=4)
        encode(arr, payload)
        base = decoded_error(arr, payload)
        arr.shelve(days(30))
        after = decoded_error(arr, payload)
        assert 1.2 < after / base < 2.2

    def test_operation_recovers_slower_than_shelf(
        self, msp432_profile, random_payload
    ):
        """§5.1.4: a week of use costs less than a week on the shelf."""
        results = {}
        for mode in ("shelf", "operate"):
            arr = SRAMArray.from_kib(2, msp432_profile, rng=13)
            payload = random_payload(arr.n_bits, seed=5)
            encode(arr, payload)
            base = decoded_error(arr, payload)
            if mode == "shelf":
                arr.shelve(days(7))
            else:
                arr.apply_power()
                arr.operate(days(7))
                arr.remove_power()
            results[mode] = decoded_error(arr, payload) / base
        assert 1.0 < results["operate"] < results["shelf"]


class TestRemanenceIntegration:
    def test_drained_cycle_forgets_contents(self, array, random_payload):
        data = random_payload(array.n_bits, seed=6)
        array.apply_power()
        array.write(data)
        array.remove_power(drain=True)
        array.shelve(0.001)
        state = array.apply_power()
        # Fresh power-on state: uncorrelated with the written data.
        assert bit_error_rate(data, state) == pytest.approx(0.5, abs=0.05)

    def test_undrained_fast_cycle_remembers(self, array, random_payload):
        data = random_payload(array.n_bits, seed=6)
        array.apply_power()
        array.write(data)
        array.remove_power(drain=False)
        array.shelve(0.001)  # 1 ms gap, tau = 0.25 s
        state = array.apply_power()
        assert bit_error_rate(data, state) < 0.05


class TestWorkloadAccounting:
    def test_operate_toggle_count_scales_with_duty(self, array):
        """Regression: operate() used to add writes_per_second * seconds to
        toggle_count regardless of duty, inflating HCI noise widening for
        low-duty workloads."""
        array.apply_power()
        array.fill(0)
        before = array.toggle_count
        array.operate(10.0, duty=0.25, writes_per_second=1000.0)
        assert array.toggle_count - before == pytest.approx(2500.0)

    def test_operate_zero_duty_adds_no_toggles(self, array):
        array.apply_power()
        array.fill(0)
        before = array.toggle_count
        array.operate(10.0, duty=0.0, writes_per_second=1000.0)
        assert array.toggle_count == before

    def test_operate_duty_validated(self, array):
        array.apply_power()
        with pytest.raises(ConfigurationError):
            array.operate(1.0, duty=1.5)


class TestOperatingEnvelope:
    @pytest.fixture
    def derated_array(self, msp432_profile):
        """A profile whose safe temperature drops 20 K per volt of
        overdrive: nominal Vdd allows the full range, stress Vdd does not."""
        from dataclasses import replace

        profile = replace(msp432_profile, derate_k_per_v=20.0)
        return SRAMArray.from_kib(1, profile, rng=5)

    def test_set_ambient_checks_live_supply(self, derated_array):
        """Regression: set_ambient() used to validate against vdd_nominal
        even while powered at stress Vdd, letting a derated (stress-Vdd, T)
        corner slip through."""
        arr = derated_array
        arr.apply_power()
        arr.set_voltage(3.3)  # 2.1 V overdrive => limit drops by 42 K
        bad_temp = arr.technology.temp_abs_max_k - 10.0
        with pytest.raises(OverstressError):
            arr.set_ambient(bad_temp)

    def test_set_ambient_uses_nominal_when_unpowered(self, derated_array):
        arr = derated_array
        arr.set_ambient(arr.technology.temp_abs_max_k - 10.0)  # fine at nominal
        assert arr.temp_k == pytest.approx(arr.technology.temp_abs_max_k - 10.0)

    def test_voltage_then_temperature_order_cannot_bypass(self, derated_array):
        """Raising temperature first, then voltage, hits the same wall."""
        arr = derated_array
        arr.set_ambient(arr.technology.temp_abs_max_k - 10.0)
        arr.apply_power()
        with pytest.raises(OverstressError):
            arr.set_voltage(3.3)
