"""SRAMArray's fleet-capture surface: the fast cache rebuild and the
plan/commit pair.

The fleet kernel's cache refresh (`_fleet_refresh_capture_cache`) shares
the `k * t^n` power-law between the offsets and the locked-in magnitudes,
skips zero-stress cells, and collapses uniform relax clocks to a scalar
`log1p` — all transformations that must leave every cached double
bit-identical to the reference rebuild (`_refresh_capture_cache`).
"""

import numpy as np
import pytest

from repro.device.catalog import device_spec
from repro.errors import ConfigurationError
from repro.sram import SRAMArray
from repro.units import hours


def _aged(seed, kib=0.25, stress_h=4.0, mixed_relax=False):
    tech = device_spec("MSP432P401").technology
    arr = SRAMArray.from_kib(kib, tech, rng=seed)
    arr.apply_power()
    payload = (
        np.random.default_rng(seed + 1)
        .integers(0, 2, arr.n_bits)
        .astype(np.uint8)
    )
    arr.write(payload)
    arr.set_voltage(min(3.0, tech.vdd_abs_max))
    arr.hold(hours(stress_h))
    if mixed_relax:
        # A second stress segment with the inverse payload gives both
        # inverters non-uniform relax clocks.
        arr.write((1 - payload).astype(np.uint8))
        arr.hold(hours(stress_h / 2))
    arr.remove_power()
    return arr


@pytest.mark.parametrize("mixed_relax", [False, True])
@pytest.mark.parametrize("seed", [0, 7])
def test_fleet_refresh_is_bit_identical_to_reference(seed, mixed_relax):
    a = _aged(seed, mixed_relax=mixed_relax)
    b = _aged(seed, mixed_relax=mixed_relax)
    sigma = a._effective_noise_sigma()
    ref = a._refresh_capture_cache(sigma)
    fast = b._fleet_refresh_capture_cache(sigma)
    assert set(ref) == set(fast)
    for key in ref:
        left, right = ref[key], fast[key]
        if isinstance(left, np.ndarray):
            assert np.array_equal(left, right), key
        else:
            assert left == right, key


def test_plan_rejects_bad_counts_and_powered_arrays():
    arr = _aged(1)
    with pytest.raises(ConfigurationError):
        arr.plan_fleet_capture(0)
    arr.apply_power()
    assert arr.plan_fleet_capture(3) is None  # powered: loop handles it


def test_plan_trajectories_accumulate_like_the_loop():
    arr = _aged(2)
    plan = arr.plan_fleet_capture(5, off_seconds=1.0)
    assert plan is not None
    p = arr.age_when_1.pending_relax
    expected = []
    for _ in range(5):
        expected.append(p)
        p += 1.0
    assert plan["pend1"] == expected
    assert plan["pend0"] == expected


def test_commit_matches_loop_relax_and_stats():
    arr = _aged(3)
    twin = _aged(3)
    plan = arr.plan_fleet_capture(3)
    assert plan is not None
    before = dict(arr.capture_stats)
    arr.commit_fleet_capture(3, 1.0, plan["cache"]["band"].size)
    # The loop equivalent: three deferred shelf gaps.
    for _ in range(3):
        twin._nbti.relax_uniform(twin.age_when_1, 1.0)
        twin._nbti.relax_uniform(twin.age_when_0, 1.0)
    assert arr.age_when_1.pending_relax == twin.age_when_1.pending_relax
    assert arr.age_when_0.pending_relax == twin.age_when_0.pending_relax
    assert arr.capture_stats["captures"] == before["captures"] + 3
    assert (
        arr.capture_stats["band_cells"]
        == before["band_cells"] + 3 * plan["cache"]["band"].size
    )


def test_plan_refuses_burst_exceeding_drift_budget():
    """A burst whose accumulated shelf relax would invalidate the cache
    mid-flight returns None (the exact loop handles it) instead of
    risking a divergent refresh point."""
    arr = _aged(4)
    sigma = arr._effective_noise_sigma()
    arr._refresh_capture_cache(sigma)
    giant_gap = 10 * 365 * 24 * 3600.0
    assert arr.plan_fleet_capture(3, off_seconds=giant_gap) is None
