"""Unit tests for the Wang 2013 program-time baseline."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.flashsteg import FlashAnalogArray, WangProgramTimeScheme

KEY = b"0123456789abcdef"


@pytest.fixture
def scheme():
    flash = FlashAnalogArray(64 * 1024, page_cells=8192, rng=0)
    return WangProgramTimeScheme(flash, KEY)


def test_capacity_is_tiny(scheme):
    """§5.3: ~0.05% of the memory's bits."""
    assert scheme.capacity_fraction == pytest.approx(0.0005, abs=0.0005)
    assert scheme.capacity_bits < scheme.flash.n_cells // 1000


def test_round_trip(scheme, random_payload):
    bits = random_payload(scheme.capacity_bits, seed=1)
    scheme.encode(bits)
    assert np.array_equal(scheme.decode(bits.size), bits)


def test_survives_erase_and_reprogram(scheme, random_payload):
    """Wear is permanent: rewriting the Flash does not destroy the stash."""
    bits = random_payload(scheme.capacity_bits, seed=2)
    scheme.encode(bits)
    scheme.flash.erase()
    scheme.flash.program(np.zeros(scheme.flash.n_cells, dtype=np.uint8))
    assert np.array_equal(scheme.decode(bits.size), bits)


def test_key_controls_grouping():
    flash_a = FlashAnalogArray(16 * 1024, page_cells=8192, rng=3)
    flash_b = FlashAnalogArray(16 * 1024, page_cells=8192, rng=3)
    a = WangProgramTimeScheme(flash_a, KEY)
    b = WangProgramTimeScheme(flash_b, b"another-key-0000")
    assert not np.array_equal(a._permutation, b._permutation)


def test_overflow_rejected(scheme):
    with pytest.raises(CapacityError):
        scheme.encode(np.ones(scheme.capacity_bits + 1, dtype=np.uint8))


def test_decode_range_validated(scheme):
    with pytest.raises(ConfigurationError):
        scheme.decode(0)


def test_construction_validation():
    flash = FlashAnalogArray(16 * 1024, page_cells=8192, rng=0)
    with pytest.raises(ConfigurationError):
        WangProgramTimeScheme(flash, KEY, group_cells=1)
    with pytest.raises(ConfigurationError):
        WangProgramTimeScheme(flash, KEY, usable_page_fraction=0.0)
