"""Unit tests for the Flash analog model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeviceError
from repro.flashsteg.flash_cell import ERASED_LEVEL, FlashAnalogArray


@pytest.fixture
def flash():
    return FlashAnalogArray(4096, page_cells=1024, rng=0)


def test_erased_array_reads_ones(flash):
    assert flash.read().all()


def test_program_read_round_trip(flash):
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, flash.n_cells).astype(np.uint8)
    flash.program(bits)
    assert np.array_equal(flash.read(), bits)


def test_program_requires_erase(flash):
    flash.program(np.zeros(flash.n_cells, dtype=np.uint8))
    with pytest.raises(DeviceError):
        flash.program(np.ones(flash.n_cells, dtype=np.uint8))
    flash.erase()
    flash.program(np.ones(flash.n_cells, dtype=np.uint8))


def test_program_times_long_tailed(flash):
    times = flash.program(np.zeros(flash.n_cells, dtype=np.uint8))
    programmed = times[times > 0]
    assert programmed.size == flash.n_cells
    # lognormal: mean above median
    assert programmed.mean() > np.median(programmed)


def test_wear_slows_programming(flash):
    mask = np.zeros(flash.n_cells, dtype=bool)
    mask[:1024] = True
    flash.cycle_cells(mask, 5000)
    times = flash.program(np.zeros(flash.n_cells, dtype=np.uint8))
    assert times[:1024].mean() > 1.5 * times[1024:].mean()


def test_nudge_only_on_programmed_cells(flash):
    bits = np.zeros(flash.n_cells, dtype=np.uint8)
    bits[::2] = 1  # odd cells erased
    flash.program(bits)
    bad_mask = np.zeros(flash.n_cells, dtype=bool)
    bad_mask[0] = True  # erased cell
    with pytest.raises(DeviceError):
        flash.nudge_levels(bad_mask, 0.5)
    ok_mask = np.zeros(flash.n_cells, dtype=bool)
    ok_mask[1] = True  # programmed cell
    flash.nudge_levels(ok_mask, 0.5)
    assert flash.read_levels()[1] > 4.0


def test_nudge_preserves_digital_value(flash):
    flash.program(np.zeros(flash.n_cells, dtype=np.uint8))
    mask = np.ones(flash.n_cells, dtype=bool)
    flash.nudge_levels(mask, 0.6)
    assert not flash.read().any()  # still reads programmed


def test_erase_resets_levels_but_not_wear(flash):
    flash.program(np.zeros(flash.n_cells, dtype=np.uint8))
    cycles_before = flash.cycle_counts.copy()
    flash.erase()
    assert np.all(flash.read_levels() == ERASED_LEVEL)
    assert np.all(flash.cycle_counts == cycles_before + 1)


def test_validation():
    with pytest.raises(ConfigurationError):
        FlashAnalogArray(0)
    with pytest.raises(ConfigurationError):
        FlashAnalogArray(1000, page_cells=300)
    flash = FlashAnalogArray(2048, page_cells=1024, rng=0)
    with pytest.raises(ConfigurationError):
        flash.program(np.zeros(5, dtype=np.uint8))
    with pytest.raises(ConfigurationError):
        flash.nudge_levels(np.zeros(5, dtype=bool), 0.1)
    with pytest.raises(ConfigurationError):
        flash.cycle_cells(np.zeros(2048, dtype=bool), -1)
