"""Unit tests for FTL-based hiding and its §8 failure modes."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError, DeviceError
from repro.flashsteg.ftl import (
    FtlHiddenVolume,
    NandBlockDevice,
    SimpleFtl,
    detect_hidden_volume,
)


def make_rig(*, n_blocks=16, pages_per_block=8, page_bytes=32, op=0.25):
    nand = NandBlockDevice(
        n_blocks=n_blocks, pages_per_block=pages_per_block, page_bytes=page_bytes
    )
    return nand, SimpleFtl(nand, overprovision_fraction=op, rng=0)


def page(i: int, page_bytes=32) -> bytes:
    return bytes([i % 256]) * page_bytes


class TestNand:
    def test_program_read_round_trip(self):
        nand, _ = make_rig()
        nand.program_page(3, page(7))
        assert nand.read_page(3) == page(7)

    def test_program_once_semantics(self):
        nand, _ = make_rig()
        nand.program_page(0, page(1))
        with pytest.raises(DeviceError):
            nand.program_page(0, page(2))

    def test_erase_is_block_granular(self):
        nand, _ = make_rig()
        nand.program_page(0, page(1))
        nand.program_page(9, page(2))  # second block
        nand.erase_block(0)
        assert not nand.is_programmed(0)
        assert nand.is_programmed(9)
        assert nand.erase_counts[0] == 1

    def test_validation(self):
        nand, _ = make_rig()
        with pytest.raises(ConfigurationError):
            nand.program_page(10**6, page(0))
        with pytest.raises(ConfigurationError):
            nand.program_page(0, b"short")
        with pytest.raises(ConfigurationError):
            NandBlockDevice(n_blocks=0, pages_per_block=1, page_bytes=1)


class TestFtl:
    def test_logical_round_trip(self):
        _, ftl = make_rig()
        ftl.write(5, page(42))
        assert ftl.read(5) == page(42)

    def test_unwritten_reads_erased(self):
        _, ftl = make_rig()
        assert ftl.read(0) == b"\xff" * 32

    def test_overwrite_goes_out_of_place(self):
        nand, ftl = make_rig()
        ftl.write(0, page(1))
        ftl.write(0, page(2))
        assert ftl.read(0) == page(2)
        assert ftl.physical_programmed_pages() == 2  # old copy still there
        assert ftl.logical_mapped_pages() == 1

    def test_gc_reclaims_space_under_churn(self):
        _, ftl = make_rig()
        rng = np.random.default_rng(0)
        for i in range(600):  # far more writes than physical pages
            ftl.write(int(rng.integers(0, ftl.n_logical)), page(i))
        # Every logical page still readable, so GC moved data correctly.
        for lpn in range(ftl.n_logical):
            ftl.read(lpn)

    def test_gc_preserves_contents(self):
        _, ftl = make_rig()
        expected = {}
        rng = np.random.default_rng(1)
        for i in range(400):
            lpn = int(rng.integers(0, ftl.n_logical))
            data = page(i)
            ftl.write(lpn, data)
            expected[lpn] = data
        for lpn, data in expected.items():
            assert ftl.read(lpn) == data


class TestHiddenVolume:
    def test_hide_and_reveal_when_quiet(self):
        _, ftl = make_rig()
        volume = FtlHiddenVolume(ftl)
        stash = [page(200 + i) for i in range(4)]
        volume.hide(stash)
        assert volume.surviving_fraction(stash) == 1.0

    def test_capacity_bound(self):
        _, ftl = make_rig()
        volume = FtlHiddenVolume(ftl)
        with pytest.raises(CapacityError):
            volume.hide([page(0)] * (volume.capacity_pages + 1))

    def test_normal_use_destroys_the_stash(self):
        """§8: 'unintentional overwriting' — GC recycles hidden blocks."""
        _, ftl = make_rig()
        volume = FtlHiddenVolume(ftl)
        stash = [page(200 + i) for i in range(8)]
        volume.hide(stash)
        rng = np.random.default_rng(2)
        for i in range(800):  # a busy filesystem
            ftl.write(int(rng.integers(0, ftl.n_logical)), page(i))
        assert volume.surviving_fraction(stash) < 1.0

    def test_detector_flags_hidden_volume(self):
        """§8 (Jia et al.): occupancy accounting reveals the stash."""
        _, ftl = make_rig()
        for lpn in range(20):
            ftl.write(lpn, page(lpn))
        assert not detect_hidden_volume(ftl)
        volume = FtlHiddenVolume(ftl)
        volume.hide([page(99)] * 6)
        assert detect_hidden_volume(ftl)

    def test_detector_tolerates_gc_slack(self):
        _, ftl = make_rig()
        ftl.write(0, page(1))
        ftl.write(0, page(2))  # one stale physical copy
        assert not detect_hidden_volume(ftl)
