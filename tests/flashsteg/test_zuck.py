"""Unit tests for the Zuck 2018 voltage-level baseline."""

import numpy as np
import pytest

from repro.errors import CapacityError, DecodeFailure
from repro.flashsteg import FlashAnalogArray, ZuckVoltageScheme


@pytest.fixture
def scheme(random_payload):
    flash = FlashAnalogArray(16 * 1024, page_cells=8192, rng=0)
    scheme = ZuckVoltageScheme(flash)
    cover = random_payload(flash.n_cells, seed=4)
    scheme.write_cover(cover)
    return scheme


def test_round_trip(scheme, random_payload):
    hidden = random_payload(min(512, scheme.capacity_bits), seed=5)
    scheme.hide(hidden)
    assert np.array_equal(scheme.reveal(hidden.size), hidden)


def test_cover_data_unharmed_by_hiding(scheme, random_payload):
    cover_before = scheme.flash.read()
    hidden = random_payload(min(16, scheme.capacity_bits), seed=6)
    scheme.hide(hidden)
    assert np.array_equal(scheme.flash.read(), cover_before)


def test_capacity_tied_to_cover_ones(scheme):
    # carriers are programmed cells (cover bit 0), halved by the fraction
    assert 0 < scheme.capacity_bits < scheme.flash.n_cells


def test_rewrite_cover_destroys_stash(scheme, random_payload):
    """The paper's §8 attack: copy cover out, write it back, stash gone."""
    hidden = random_payload(min(16, scheme.capacity_bits), seed=7)
    scheme.hide(hidden)
    scheme.rewrite_cover()
    revealed = scheme.reveal(hidden.size)
    assert not revealed.any()  # every overcharge reset


def test_rewrite_is_digitally_invisible(scheme, random_payload):
    cover_before = scheme.flash.read()
    scheme.hide(random_payload(min(8, scheme.capacity_bits), seed=8))
    scheme.rewrite_cover()
    assert np.array_equal(scheme.flash.read(), cover_before)


def test_hide_before_cover_rejected():
    flash = FlashAnalogArray(8192, page_cells=8192, rng=1)
    scheme = ZuckVoltageScheme(flash)
    with pytest.raises(DecodeFailure):
        scheme.hide(np.ones(8, dtype=np.uint8))
    with pytest.raises(DecodeFailure):
        scheme.reveal(8)


def test_overflow_rejected(scheme):
    with pytest.raises(CapacityError):
        scheme.hide(np.ones(scheme.capacity_bits + 1, dtype=np.uint8))
