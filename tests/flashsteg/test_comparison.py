"""Unit tests for the Table 3 / §5.3 comparison arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.flashsteg.comparison import (
    build_comparison_table,
    capacity_advantage,
    invisible_bits_capacity_fraction,
)


def test_invisible_bits_fraction_paper_case():
    """§5.3: 6.5% error + 5 copies -> 20% capacity at <0.3% error."""
    assert invisible_bits_capacity_fraction() == pytest.approx(0.2)


def test_capacity_matching_enforced():
    with pytest.raises(ConfigurationError):
        invisible_bits_capacity_fraction(0.30, 3)  # 30% channel, 3 copies


def test_hundredfold_advantage():
    """§5.3: 12.8 KiB in SRAM vs 131 bytes in Flash ~ 100x."""
    advantage = capacity_advantage()
    assert advantage == pytest.approx(100.0, rel=0.05)


def test_parallel_selection_advantage():
    """§5.3: a hand-picked 2.7% device with 3 copies reaches ~160x."""
    advantage = capacity_advantage(sram_capacity_fraction=1 / 3)
    assert advantage == pytest.approx(160.0, rel=0.08)


def test_table3_rows():
    rows = build_comparison_table()
    assert [r.method.split()[0] for r in rows] == ["Zuck", "Wang", "Invisible"]
    ib = rows[-1]
    assert ib.survives_rewrite
    assert ib.capacity_fraction > 100 * rows[0].capacity_fraction
    zuck = rows[0]
    assert not zuck.survives_rewrite
    assert zuck.read_stable == "poor"
