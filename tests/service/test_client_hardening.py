"""Client hardening: circuit breaker states, retry schedule, idempotency keys."""

from __future__ import annotations

import pytest

from repro.api import SendRequest
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    ServiceUnavailableError,
)
from repro.faults import RetryPolicy
from repro.service import CircuitBreaker, LoadGenerator, ServiceClient


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=0.0)

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.before_call()  # no raise

    def test_opens_at_threshold_and_fails_fast(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 1
        with pytest.raises(CircuitOpenError, match="3 consecutive failures"):
            breaker.before_call()
        clock.now = 4.9
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        assert breaker.state == "half-open"
        breaker.before_call()  # the single probe slot
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # a concurrent caller is refused

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.before_call()  # freely admitted again

    def test_non_socket_failure_releases_the_half_open_latch(
        self, monkeypatch
    ):
        """A probe that dies on a non-OSError (e.g. a garbage response
        raising BadStatusLine) must not leak ``_half_open_busy`` — that
        would leave the breaker raising CircuitOpenError forever."""
        from http.client import BadStatusLine

        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        assert breaker.state == "half-open"

        class GarbageConnection:
            def __init__(self, *args, **kwargs):
                pass

            def request(self, *args, **kwargs):
                raise BadStatusLine("HTP/9.9 garbage")

            def close(self):
                pass

        monkeypatch.setattr(
            "repro.service.client.HTTPConnection", GarbageConnection
        )
        client = ServiceClient(
            "http://127.0.0.1:9", retry=RetryPolicy.none(), breaker=breaker
        )
        with pytest.raises(BadStatusLine):
            client.stats()
        # The failed probe re-opened the circuit for a cooldown instead
        # of wedging it: after the window, another probe is admitted.
        assert breaker.state == "open"
        clock.now = 3.0
        assert breaker.state == "half-open"
        with pytest.raises(BadStatusLine):
            client.stats()

    def test_half_open_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        clock.now = 2.4  # still inside the new cooldown window
        with pytest.raises(CircuitOpenError):
            breaker.before_call()


def _dead_client(**kwargs) -> ServiceClient:
    # Port 9 on loopback: nothing listens; connect fails immediately.
    return ServiceClient("http://127.0.0.1:9", timeout=0.2, **kwargs)


class TestClientRetries:
    def test_connection_failures_retry_then_surface(self):
        sleeps: "list[float]" = []
        client = _dead_client(
            retry=RetryPolicy(
                max_attempts=3, base_delay_s=0.01, max_delay_s=0.05
            ),
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceUnavailableError, match="cannot reach"):
            client.stats()
        assert client.retried == 2  # two retries between three attempts
        assert len(sleeps) == 2
        assert sleeps == client.retry.delays()[:2]

    def test_open_breaker_short_circuits_without_sleeping(self):
        sleeps: "list[float]" = []
        breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
        client = _dead_client(
            retry=RetryPolicy(
                max_attempts=2, base_delay_s=0.01, max_delay_s=0.05
            ),
            breaker=breaker,
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceUnavailableError):
            client.stats()  # two attempts = two failures: breaker opens
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.stats()  # fails fast: no socket, no retry sleep
        assert len(sleeps) == 1  # only the first call's inter-attempt sleep

    def test_bad_url_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceClient("http://")


class TestIdempotencyKeys:
    def test_keyed_mints_unique_client_keys(self):
        bare = SendRequest(device_id="d", message=b"x")
        first = ServiceClient._keyed(bare)
        second = ServiceClient._keyed(bare)
        assert first.idempotency_key.startswith("client-")
        assert first.idempotency_key != second.idempotency_key
        assert first.device_id == "d" and first.message == b"x"

    def test_keyed_preserves_an_explicit_key(self):
        keyed = SendRequest(device_id="d", message=b"x", idempotency_key="k")
        assert ServiceClient._keyed(keyed) is keyed

    def test_soak_keys_are_deterministic_per_op(self):
        generator = LoadGenerator(seed=9, idempotency=True)
        send, receive = generator._requests(3)
        assert send.idempotency_key == "soak-9-3-send"
        assert receive.idempotency_key == "soak-9-3-recv"
        again, _ = generator._requests(3)
        assert again.idempotency_key == send.idempotency_key

    def test_keys_off_by_default(self):
        send, receive = LoadGenerator(seed=9)._requests(3)
        assert send.idempotency_key is None
        assert receive.idempotency_key is None


def test_restart_retries_require_idempotency():
    generator = LoadGenerator(seed=1)  # idempotency=False
    client = _dead_client(retry=RetryPolicy.none())
    with pytest.raises(ConfigurationError, match="idempotency"):
        generator.run_remote(client, 1, restart_retries=3)
