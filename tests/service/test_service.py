"""FleetService end to end: soak, drain, shed, sticky routing, metrics."""

from __future__ import annotations

import asyncio

import pytest

from repro import metrics
from repro.api import ReceiveRequest, SendRequest
from repro.errors import AdmissionError, ServiceError, ServiceStoppedError
from repro.service import (
    FleetService,
    LoadGenerator,
    ServiceConfig,
    ServiceClient,
)


def run(coro):
    return asyncio.run(coro)


def test_soak_round_trips_every_message_across_shards():
    async def scenario():
        service = FleetService(ServiceConfig(shards=4))
        await service.start()
        generator = LoadGenerator(seed=11, message_bytes=8)
        report = await generator.run(service, 60, concurrency=24)
        stats = service.stats()
        await service.stop()
        return report, stats

    report, stats = run(scenario())
    assert report.lost == 0
    assert report.completed == 60
    assert report.failed == 0 and report.shed == 0 and report.mismatched == 0
    # Work really spread over all four lanes.
    busy = [q for q in stats["queues"].values() if q["enqueued"] > 0]
    assert len(busy) == 4
    assert stats["devices"] == 60


def test_results_carry_shard_and_digests():
    async def scenario():
        service = FleetService(ServiceConfig(shards=2))
        await service.start()
        sent = await service.submit(
            SendRequest(device_id="dev-a", message=b"payload")
        )
        received = await service.submit(ReceiveRequest(device_id="dev-a"))
        await service.stop()
        return sent, received

    sent, received = run(scenario())
    assert sent.shard in ("shard-0", "shard-1")
    # Sticky home: both legs of a device's life run on the same lane.
    assert received.shard == sent.shard
    assert received.message == b"payload"
    assert received.raw_ber is not None  # service knows the truth
    assert len(received.state_digest) == 16


def test_receive_before_send_fails_cleanly():
    async def scenario():
        service = FleetService(ServiceConfig(shards=2))
        await service.start()
        try:
            with pytest.raises(ServiceError, match="no staged message"):
                await service.submit(ReceiveRequest(device_id="ghost"))
        finally:
            await service.stop()

    run(scenario())


def test_submit_after_drain_is_rejected():
    async def scenario():
        service = FleetService(ServiceConfig(shards=2))
        await service.start()
        await service.submit(SendRequest(device_id="dev-b", message=b"x"))
        await service.drain()
        with pytest.raises(ServiceStoppedError):
            await service.submit(ReceiveRequest(device_id="dev-b"))
        await service.stop(drain=False)

    run(scenario())


def test_wait_false_sheds_on_full_queue():
    async def scenario():
        # One shard, tiny queue, and no workers started yet: the queue
        # genuinely backs up.
        service = FleetService(ServiceConfig(shards=1, queue_depth=2))
        await service.start()
        # Stall the single worker with a slow first job, then overfill.
        jobs = [
            asyncio.create_task(
                service.submit(
                    SendRequest(device_id=f"dev-{i}", message=b"x"),
                    wait=False,
                )
            )
            for i in range(12)
        ]
        done = await asyncio.gather(*jobs, return_exceptions=True)
        await service.stop()
        return done, service

    done, service = run(scenario())
    shed = [r for r in done if isinstance(r, AdmissionError)]
    succeeded = [r for r in done if not isinstance(r, BaseException)]
    assert len(shed) + len(succeeded) == 12
    assert shed, "a 2-deep queue must shed some of 12 instant submissions"
    assert service.admission.stats()["shed"] == len(shed)


def test_drain_completes_all_queued_jobs():
    async def scenario():
        service = FleetService(ServiceConfig(shards=3))
        await service.start()
        sends = [
            asyncio.create_task(
                service.submit(
                    SendRequest(device_id=f"dev-{i}", message=b"drain me")
                )
            )
            for i in range(12)
        ]
        await asyncio.sleep(0)  # jobs enqueued, most still unserved
        await service.drain()
        results = await asyncio.gather(*sends)
        await service.stop(drain=False)
        return results

    results = run(scenario())
    assert len(results) == 12
    assert all(r.payload_digest for r in results)


def test_service_metrics_flow_into_global_registry():
    async def scenario():
        service = FleetService(ServiceConfig(shards=2))
        await service.start()
        generator = LoadGenerator(seed=13)
        await generator.run(service, 8, concurrency=4)
        exposition = metrics.registry.expose()
        await service.stop()
        return exposition

    exposition = run(scenario())
    assert "repro_service_jobs_total" in exposition
    assert 'status="ok"' in exposition
    assert "repro_service_queue_depth" in exposition


def test_stats_shape():
    async def scenario():
        service = FleetService(ServiceConfig(shards=2))
        await service.start()
        await service.submit(SendRequest(device_id="dev-s", message=b"x"))
        stats = service.stats()
        await service.stop()
        return stats

    stats = run(scenario())
    assert stats["completed"] == 1
    assert set(stats["queues"]) == {"shard-0", "shard-1"}
    assert stats["admission"]["healthy"] == ["shard-0", "shard-1"]
    for shard_stats in stats["shards"].values():
        assert shard_stats["active_alerts"] == []


def test_client_rejects_bad_url():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ServiceClient("http://")
