"""AdmissionController: trip/readmit lifecycle and shed accounting."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.service import AdmissionController

NAMES = ("shard-0", "shard-1")


def test_needs_shards():
    with pytest.raises(ConfigurationError):
        AdmissionController(())


def test_all_healthy_initially():
    admission = AdmissionController(NAMES)
    assert admission.healthy == set(NAMES)
    assert admission.tripped == {}


def test_trip_and_readmit_cycle():
    admission = AdmissionController(NAMES)
    assert admission.trip("shard-1", "raw BER over ceiling") is True
    assert admission.healthy == {"shard-0"}
    assert admission.tripped == {"shard-1": "raw BER over ceiling"}
    # Re-tripping an already-tripped shard is not a new edge.
    assert admission.trip("shard-1", "again") is False

    assert admission.readmit("shard-1") is True
    assert admission.healthy == set(NAMES)
    assert admission.tripped == {}
    # Readmitting a healthy shard is a no-op.
    assert admission.readmit("shard-1") is False
    # The ledger history was reset: the next trip is a fresh first edge.
    assert admission.trip("shard-1", "later") is True


def test_unknown_shard_rejected():
    admission = AdmissionController(NAMES)
    with pytest.raises(ConfigurationError):
        admission.trip("nope", "reason")
    with pytest.raises(ConfigurationError):
        admission.readmit("nope")


def test_require_capacity_sheds_on_none():
    admission = AdmissionController(NAMES)
    assert admission.require_capacity("shard-0") == "shard-0"
    admission.trip("shard-0", "x")
    admission.trip("shard-1", "y")
    with pytest.raises(AdmissionError, match="no healthy shards"):
        admission.require_capacity(None)
    assert admission.shed == 1
    assert admission.stats()["shed"] == 1
