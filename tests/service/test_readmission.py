"""Self-healing readmission: the prober, backoff, and trip/readmit races."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.faults import FaultPlan, HealthLedger, StuckRegion
from repro.service import AdmissionController, FleetService, ServiceConfig

NAMES = ("shard-0", "shard-1", "shard-2", "shard-3")


async def _wait_until(predicate, *, timeout_s: float = 10.0) -> bool:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.01)
    return predicate()


def test_prober_readmits_a_recovered_lane():
    """ISSUE acceptance: a tripped lane is auto-readmitted by the prober
    once its raw-BER SLO clears ``readmit_after`` consecutive probes."""

    async def scenario():
        service = FleetService(
            ServiceConfig(
                shards=2,
                seed=5,
                probe_interval_s=0.02,
                readmit_after=2,
            )
        )
        await service.start()
        try:
            # Trip the lane by hand (an operator page); the lane's
            # hardware is actually fine, so probes come back clean.
            assert service.admission.trip("shard-1", "operator page")
            assert service.admission.healthy == {"shard-0"}
            recovered = await _wait_until(
                lambda: service.admission.is_healthy("shard-1")
            )
            stats = service.stats()
        finally:
            await service.stop()
        return recovered, stats

    recovered, stats = asyncio.run(scenario())
    assert recovered, "prober never readmitted the healthy lane"
    assert stats["admission"]["tripped"] == {}
    assert stats["admission"]["readmissions"] == 1
    assert stats["durability"]["probes"] >= 2  # the clean streak


def test_prober_keeps_a_sick_lane_quarantined():
    n_bits = int(0.25 * 8192)
    plan = FaultPlan(
        seed=0,
        models=(StuckRegion(offset=0, length=n_bits // 2, value=0),),
    )

    async def scenario():
        service = FleetService(
            ServiceConfig(
                shards=2,
                seed=5,
                probe_interval_s=0.02,
                readmit_after=1,
                fault_plan=plan,
                fault_shards=("shard-1",),
            )
        )
        await service.start()
        try:
            service.admission.trip("shard-1", "raw-ber-slo")
            # Give the prober several intervals; the stuck half keeps
            # every probe's raw BER over the ceiling.
            await asyncio.sleep(0.3)
            probed = service.probes
            still_tripped = not service.admission.is_healthy("shard-1")
        finally:
            await service.stop()
        return probed, still_tripped

    probed, still_tripped = asyncio.run(scenario())
    assert probed >= 1
    assert still_tripped, "a lane probing dirty must stay quarantined"


def test_probe_devices_never_enter_the_fleet_host():
    """Probes are ephemeral: they must not perturb the journal/checkpoint
    bit-identity of real traffic by growing the host."""

    async def scenario():
        service = FleetService(
            ServiceConfig(shards=2, seed=5, probe_interval_s=0.02)
        )
        await service.start()
        try:
            service.admission.trip("shard-0", "operator page")
            await _wait_until(lambda: service.probes >= 2)
        finally:
            await service.stop()
        return service.host.n_devices

    assert asyncio.run(scenario()) == 0


class TestHealthLedgerReset:
    def test_reset_clears_quarantine_and_history(self):
        ledger = HealthLedger(quarantine_after=2)
        ledger.record_failure("lane")
        assert ledger.record_failure("lane") is True
        assert ledger.is_quarantined("lane")
        assert ledger.reset("lane") is True
        assert not ledger.is_quarantined("lane")
        # History is gone too: quarantine needs a full fresh streak.
        assert ledger.record_failure("lane") is False
        assert ledger.record_failure("lane") is True

    def test_reset_of_a_clean_slot_is_a_no_op(self):
        ledger = HealthLedger(quarantine_after=1)
        assert ledger.reset("lane") is False


def test_concurrent_trips_and_readmissions_never_split_state():
    """Satellite: hammer trip/readmit from threads; no lane may end up
    both tripped and serving (quarantined without a reason, or healthy
    with a stale one)."""
    admission = AdmissionController(NAMES)
    rng = np.random.default_rng(7)
    plans = [rng.integers(0, 2, size=400).tolist() for _ in NAMES]
    start = threading.Barrier(len(NAMES) + 1)
    errors: "list[BaseException]" = []

    def hammer(name: str, plan: "list[int]") -> None:
        try:
            start.wait()
            for flip in plan:
                if flip:
                    admission.trip(name, f"hammer {flip}")
                else:
                    admission.readmit(name)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def observer() -> None:
        try:
            start.wait()
            for _ in range(400):
                # tripped is copied under the controller lock: every
                # entry present must carry its reason atomically.
                for name, reason in admission.tripped.items():
                    assert name in NAMES and reason
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(name, plan))
        for name, plan in zip(NAMES, plans)
    ] + [threading.Thread(target=observer)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    # Final state is exactly what each lane's last flip dictates, and
    # the ledger and the reason book agree lane by lane.
    for name, plan in zip(NAMES, plans):
        tripped_last = bool(plan[-1])
        assert admission.is_healthy(name) == (not tripped_last)
        assert (name in admission.tripped) == tripped_last
    healthy = admission.healthy
    for name in NAMES:
        assert (name in healthy) != (name in admission.tripped)


def test_readmissions_counter_tracks_real_edges():
    admission = AdmissionController(NAMES)
    admission.trip("shard-0", "x")
    admission.readmit("shard-0")
    admission.readmit("shard-0")  # no-op: not tripped
    admission.trip("shard-0", "y")
    admission.readmit("shard-0")
    assert admission.readmissions == 2
    assert admission.stats()["readmissions"] == 2


def test_prober_config_validation():
    with pytest.raises(Exception, match="probe_interval_s"):
        ServiceConfig(probe_interval_s=-1.0)
    with pytest.raises(Exception, match="readmit_after"):
        ServiceConfig(readmit_after=0)
