"""Checkpoint/restore and crash-restart replay: the durability contract.

The differential twin of the ``service.crash_recovery`` oracle: these
tests pin each recovery semantic individually — snapshot/restore
bit-identity, LRU eviction transparency, replay of the crash window,
shed skipping, divergence refusal, and idempotent resubmission after a
graceful restart.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import ReceiveRequest, SendRequest
from repro.errors import JournalError, ServiceError, ServiceStoppedError
from repro.service import (
    FleetHost,
    FleetService,
    Journal,
    Shard,
    ServiceConfig,
    read_journal,
    recover_components,
)
from repro.service.journal import _frame
from repro.service.recovery import journal_path, latest_checkpoint
from repro.service.queue import Job

SEED = 31


def _host(tmp_path=None, **overrides) -> FleetHost:
    base = dict(
        scheme=ServiceConfig().resolved_scheme(),
        seed=SEED,
        archive_dir=str(tmp_path / "archive") if tmp_path else None,
    )
    base.update(overrides)
    return FleetHost(**base)


def _execute(host: FleetHost, requests) -> list:
    shard = Shard("lane", host)
    results = []
    for request in requests:
        job = Job(
            kind="send" if isinstance(request, SendRequest) else "receive",
            request=request,
            future=None,
        )
        outcomes, _pages = shard.execute_batch([job])
        outcome = outcomes[0][1]
        if isinstance(outcome, BaseException):
            raise outcome
        results.append(outcome)
    return results


def _traffic(n: int):
    for index in range(n):
        device = f"dev-{index}"
        yield SendRequest(device_id=device, message=f"m{index}".encode())
        yield ReceiveRequest(device_id=device)


class TestSnapshotRestore:
    def test_restore_is_bit_identical(self, tmp_path):
        host = _host()
        _execute(host, _traffic(3))
        manifest = host.snapshot(tmp_path / "ckpt", extra={"checkpoint": "c"})
        assert manifest["devices"] and manifest["checkpoint"] == "c"

        twin = _host()
        restored = twin.restore(tmp_path / "ckpt")
        assert restored["checkpoint"] == "c"
        assert twin.n_devices == host.n_devices
        assert twin.state_digest() == host.state_digest()

    def test_restore_rejects_a_mismatched_fleet(self, tmp_path):
        host = _host()
        _execute(host, _traffic(1))
        host.snapshot(tmp_path / "ckpt")
        with pytest.raises(JournalError, match="seed"):
            _host(seed=SEED + 1).restore(tmp_path / "ckpt")

    def test_restore_rejects_an_unknown_format(self, tmp_path):
        host = _host()
        _execute(host, _traffic(1))
        host.snapshot(tmp_path / "ckpt")
        manifest_path = tmp_path / "ckpt" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "somebody-elses-checkpoint"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(JournalError, match="not a fleet checkpoint"):
            _host().restore(tmp_path / "ckpt")

    def test_lru_eviction_is_transparent(self, tmp_path):
        capped = _host(tmp_path, max_resident=2)
        uncapped = _host()
        # All sends, then all receives: every receive touches a device
        # the send wave already pushed out of residency.
        requests = sorted(
            _traffic(5), key=lambda r: isinstance(r, ReceiveRequest)
        )
        capped_results = _execute(capped, requests)
        uncapped_results = _execute(uncapped, requests)

        assert capped.n_resident <= 2
        assert capped.n_devices == 5
        assert capped.evicted > 0 and capped.rehydrated > 0
        # Eviction+rehydration never changes a single device bit.
        assert capped.state_digest() == uncapped.state_digest()
        for mine, theirs in zip(capped_results, uncapped_results):
            if hasattr(mine, "state_digest"):
                assert mine.state_digest == theirs.state_digest
                assert mine.message == theirs.message


def _config(tmp_path, **overrides) -> ServiceConfig:
    base = dict(shards=1, seed=SEED, journal_dir=str(tmp_path / "jd"))
    base.update(overrides)
    return ServiceConfig(**base)


def _keyed_pair(index: int):
    device = f"dev-{index}"
    return (
        SendRequest(
            device_id=device,
            message=f"m{index}".encode(),
            idempotency_key=f"t-{index}-send",
        ),
        ReceiveRequest(device_id=device, idempotency_key=f"t-{index}-recv"),
    )


class TestCrashRestart:
    def test_graceful_restart_serves_everything_from_cache(self, tmp_path):
        async def first_life():
            service = FleetService(_config(tmp_path))
            await service.start()
            results = []
            for index in range(2):
                send, receive = _keyed_pair(index)
                await service.submit(send)
                results.append(await service.submit(receive))
            await service.stop()  # leaves a final checkpoint behind
            return results

        async def second_life():
            service = FleetService(_config(tmp_path))
            report = service.recovery
            await service.start()
            results = []
            for index in range(2):
                send, receive = _keyed_pair(index)
                await service.submit(send)
                results.append(await service.submit(receive))
            executed = service.completed
            await service.stop()
            return results, report, executed

        first = asyncio.run(first_life())
        second, report, executed = asyncio.run(second_life())
        # Everything predates the checkpoint: cached, nothing re-executed.
        assert report.checkpoint is not None
        assert report.cached == 4 and report.replayed == 0
        assert executed == 0
        for a, b in zip(first, second):
            assert a.to_dict() == b.to_dict()

    def test_crash_window_admits_are_replayed(self, tmp_path):
        config = _config(tmp_path)

        async def crash():
            service = FleetService(config)
            await service.start()
            send, receive = _keyed_pair(0)
            await service.submit(send)
            await service.submit(receive)
            # The crash window: admitted on disk, never executed.
            tail_send, _ = _keyed_pair(1)
            service.journal.admit(
                "t-1-send", "send", tail_send.to_dict()
            )
            await service.abort()

        asyncio.run(crash())
        host, journal, cache, report = recover_components(config)
        journal.close()
        assert report.admitted == 3
        assert report.replayed == 1  # the dangling admit re-executed
        assert report.verified == 2  # completed ops replay digest-equal
        assert "t-1-send" in cache
        # The replay appended its own completion: a second recovery of
        # the same journal has nothing left to replay.
        host2, journal2, _cache2, second = recover_components(config)
        journal2.close()
        assert second.replayed == 0
        assert host2.state_digest() == host.state_digest()

    def test_shed_ops_are_skipped_and_stay_uncached(self, tmp_path):
        config = _config(tmp_path)
        send, _ = _keyed_pair(0)
        with Journal(journal_path(config.journal_dir)) as journal:
            seq = journal.admit("t-0-send", "send", send.to_dict())
            journal.complete(seq, "t-0-send", "shed")
        host, journal, cache, report = recover_components(config)
        journal.close()
        assert report.shed == 1 and report.replayed == 0
        assert "t-0-send" not in cache  # a retry must run fresh
        assert host.n_devices == 0  # shed means no silicon was touched

    def test_cached_errors_resurface_on_resubmit(self, tmp_path):
        async def first_life():
            service = FleetService(_config(tmp_path))
            await service.start()
            with pytest.raises(ServiceError, match="no staged message"):
                await service.submit(
                    ReceiveRequest(
                        device_id="ghost", idempotency_key="ghost-recv"
                    )
                )
            await service.stop()

        async def second_life():
            service = FleetService(_config(tmp_path))
            await service.start()
            try:
                with pytest.raises(ServiceError, match="no staged message"):
                    await service.submit(
                        ReceiveRequest(
                            device_id="ghost", idempotency_key="ghost-recv"
                        )
                    )
                return service.completed
            finally:
                await service.stop()

        asyncio.run(first_life())
        assert asyncio.run(second_life()) == 0  # served from the cache

    def test_replay_divergence_is_refused(self, tmp_path):
        config = _config(tmp_path)

        async def life():
            service = FleetService(config)
            await service.start()
            send, _ = _keyed_pair(0)
            await service.submit(send)
            await service.abort()  # no checkpoint: replay must re-verify

        asyncio.run(life())
        path = journal_path(config.journal_dir)
        lines = path.read_text().splitlines(keepends=True)
        records, _ = read_journal(path)
        doctored = False
        for index, record in enumerate(records):
            if record["op"] == "complete" and record["status"] == "ok":
                record["result"]["payload_digest"] = "0" * 16
                lines[index] = _frame(record)
                doctored = True
        assert doctored
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="diverged"):
            recover_components(config)


def test_stop_without_drain_journals_queued_jobs_as_shed(tmp_path):
    """Satellite: a no-drain stop leaves nothing dangling — every queued
    job gets a journaled ``shed`` completion and a ServiceStoppedError,
    the batch already held by a worker fails its future too (no journal
    completion: its dangling admit replays on restart), and recovery
    leaves the shed keys uncached."""
    config = _config(tmp_path, max_batch=1, queue_depth=16)

    async def scenario():
        service = FleetService(config)
        await service.start()
        service._pause.clear()  # stall the worker at the checkpoint gate
        tasks = []
        for index in range(5):
            send, _ = _keyed_pair(index)
            tasks.append(asyncio.create_task(service.submit(send)))
        await asyncio.sleep(0.02)  # all admitted; worker holds one batch
        await service.stop(drain=False)
        # Every submitter resolves — including the one whose job the
        # stalled worker held in flight when its task was cancelled.
        done, pending = await asyncio.wait(tasks, timeout=5)
        assert not pending, "a submitter hung on a no-drain stop"
        return await asyncio.gather(*tasks, return_exceptions=True)

    outcomes = asyncio.run(scenario())
    stopped = [o for o in outcomes if isinstance(o, ServiceStoppedError)]
    assert len(stopped) == 5  # four shed from queues + one mid-batch

    records, _ = read_journal(journal_path(config.journal_dir))
    shed = [
        r for r in records if r["op"] == "complete" and r["status"] == "shed"
    ]
    assert len(shed) == 4  # the in-flight job journals no completion

    host, journal, cache, report = recover_components(config)
    journal.close()
    assert report.shed == 4
    assert report.replayed == 1  # the in-flight job's dangling admit
    for record in shed:
        assert record["key"] not in cache


def test_faulted_lane_error_completions_replay_unverified(tmp_path):
    """An error journaled by a faulted lane replays on the clean replay
    lane (where it may well succeed) without tripping the divergence
    check — the injector's fault schedule is not reproducible there."""
    config = _config(tmp_path, shards=2, fault_shards=("shard-1",))
    send = SendRequest(
        device_id="dev-0", message=b"m", idempotency_key="f-send"
    )
    legacy = SendRequest(
        device_id="dev-1", message=b"n", idempotency_key="f-legacy"
    )
    with Journal(journal_path(config.journal_dir)) as journal:
        seq = journal.admit("f-send", "send", send.to_dict())
        journal.complete(
            seq,
            "f-send",
            "error",
            error="injected: brownout during capture",
            error_type="CaptureFaultError",
            shard="shard-1",
        )
        # A journal written before completions carried ``shard``: an
        # error record with no way to prove which lane produced it.
        seq2 = journal.admit("f-legacy", "send", legacy.to_dict())
        journal.complete(
            seq2,
            "f-legacy",
            "error",
            error="injected: flaky port",
            error_type="CaptureFaultError",
        )
    host, journal, cache, report = recover_components(config)
    journal.close()
    assert report.unverified == 2
    assert report.verified == 0
    # Both keys are cached with the fresh replay outcome; the rebuilt
    # host state reflects that successful re-execution.
    assert "f-send" in cache and "f-legacy" in cache
