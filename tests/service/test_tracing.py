"""End-to-end request tracing through the fleet service.

The acceptance claim of the tracing PR: a traced soak yields **one
connected span tree per request** — client → server → queue → lane →
capture/decode → journal — under a single ``trace_id``, including when
the request reroutes off a faulted lane, hits the idempotency cache, or
replays from the journal after a crash.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import metrics, telemetry
from repro.api import ReceiveRequest, SendRequest
from repro.errors import ServiceError
from repro.faults import FaultPlan, StuckRegion
from repro.service import (
    FleetService,
    ServiceClient,
    ServiceConfig,
    serve_forever,
)
from repro.service.journal import read_journal
from repro.service.recovery import journal_path, recover_components
from repro.telemetry import RingBufferSink

SEED = 99

T_SEND = "aa" * 16
T_RECV = "bb" * 16
T_OTHER = "cc" * 16


def _sink():
    sink = RingBufferSink(capacity=65536)
    telemetry.add_sink(sink)
    return sink


def _spans_of(sink, trace_id):
    return [
        r for r in sink.records(type="span") if r.get("trace_id") == trace_id
    ]


def _wait_for_spans(sink, trace_id, names, timeout=15.0):
    """Spans finish slightly after the HTTP response; poll briefly."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        seen = {s["name"] for s in _spans_of(sink, trace_id)}
        if set(names) <= seen:
            return
        time.sleep(0.02)
    raise AssertionError(f"missing spans: {set(names) - seen}")


def _assert_single_tree(spans):
    """Every span reaches one root by walking parent links; no cycles."""
    by_id = {s["span_id"]: s for s in spans}
    assert len(by_id) == len(spans), "span ids collide"
    roots = set()
    for span in spans:
        node, hops = span, 0
        while node["parent_id"] in by_id:
            node = by_id[node["parent_id"]]
            hops += 1
            assert hops <= len(spans), "parent links form a cycle"
        roots.add(node["span_id"])
    assert len(roots) == 1, (
        f"expected one connected tree, found {len(roots)} roots: "
        f"{[by_id[r]['name'] for r in roots]}"
    )
    return by_id[next(iter(roots))]


#: Shared with tests that need the live service's journal directory.
_MODULE_STATE: dict = {}


@pytest.fixture(scope="module")
def live_service(tmp_path_factory):
    """A journaled serve_forever loop in a thread for the whole module."""
    journal_dir = tmp_path_factory.mktemp("tracing-journal")
    _MODULE_STATE["journal_dir"] = journal_dir
    ready = threading.Event()
    box: dict = {}

    def on_ready(service) -> None:
        box["service"] = service
        ready.set()

    thread = threading.Thread(
        target=serve_forever,
        args=(
            ServiceConfig(
                shards=2, port=0, seed=SEED, journal_dir=str(journal_dir)
            ),
        ),
        kwargs={"duration": 120, "on_ready": on_ready},
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=15), "service never came up"
    client = ServiceClient(f"http://127.0.0.1:{box['service'].port}")
    yield client
    try:
        client.shutdown()
    except (ServiceError, OSError):
        pass
    thread.join(timeout=30)
    assert not thread.is_alive(), "serve_forever failed to drain and exit"


class TestConnectedTreeOverHttp:
    def test_send_spans_form_one_tree_under_the_request_trace(
        self, live_service
    ):
        sink = _sink()
        live_service.send(
            SendRequest(
                device_id="traced-dev", message=b"follow me", trace_id=T_SEND
            )
        )
        _wait_for_spans(
            sink,
            T_SEND,
            (
                "client.send",
                "service.request",
                "service.submit",
                "lane.execute",
                "channel.send",
                "service.journal",
            ),
        )
        spans = _spans_of(sink, T_SEND)
        root = _assert_single_tree(spans)
        # The client's span is the root: the server tree parented under
        # it via the traceparent header, not a fresh server-side trace.
        assert root["name"] == "client.send"

    def test_receive_tree_includes_capture_and_decode(self, live_service):
        sink = _sink()
        live_service.receive(
            ReceiveRequest(device_id="traced-dev", trace_id=T_RECV)
        )
        _wait_for_spans(
            sink,
            T_RECV,
            (
                "client.receive",
                "service.request",
                "service.submit",
                "lane.capture",
                "lane.execute",
                "channel.decode_state",
                "service.journal",
            ),
        )
        spans = _spans_of(sink, T_RECV)
        root = _assert_single_tree(spans)
        assert root["name"] == "client.receive"

    def test_journal_records_carry_the_trace(self, live_service):
        # Both requests above were journaled under their trace ids —
        # admits and completions alike, which is what lets a crash
        # replay correlate with the original request.
        records, _torn = read_journal(
            journal_path(_MODULE_STATE["journal_dir"])
        )
        traced = [r for r in records if r.get("trace") == T_SEND]
        assert {r["op"] for r in traced} == {"admit", "complete"}

    def test_stats_expose_latency_breakdown(self, live_service):
        stats = live_service.stats()
        latency = stats["latency"]
        assert latency["requests"] >= 2
        assert latency["mean_ms"] > 0
        phases = latency["phases"]
        # Send contributes queue_wait/encode/journal_fsync, receive adds
        # capture/decode.
        for phase in ("queue_wait", "encode", "capture", "decode",
                      "journal_fsync"):
            assert phase in phases, f"missing phase {phase}"
            assert phases[phase]["mean_ms"] >= 0
            assert phases[phase]["total_ms"] >= 0

    def test_metrics_exposition_carries_exemplars(self, live_service):
        # The autouse metrics fixture disabled the registry; the service
        # enabled it at start, so re-enable for this test's traffic.
        metrics.registry.enable()
        live_service.send(
            SendRequest(
                device_id="exemplar-dev", message=b"mark me", trace_id=T_OTHER
            )
        )
        text = live_service.metrics()
        assert "repro_service_request_latency_seconds_bucket" in text
        line = next(
            l
            for l in text.splitlines()
            if l.startswith("repro_service_request_latency_seconds_bucket")
            and T_OTHER in l
        )
        assert f'# {{trace_id="{T_OTHER}"}}' in line


class TestIdempotentReplayContinuity:
    def test_cache_hit_span_carries_the_original_trace(self):
        sink = _sink()

        async def scenario():
            service = FleetService(ServiceConfig(shards=1, seed=SEED))
            await service.start()
            request = SendRequest(
                device_id="idem-dev",
                message=b"once",
                idempotency_key="idem-k1",
                trace_id=T_SEND,
            )
            await service.submit(request)
            # A retry from a *different* trace: the replay span must
            # re-home onto the trace that did the work.
            retry = SendRequest(
                device_id="idem-dev",
                message=b"once",
                idempotency_key="idem-k1",
                trace_id=T_OTHER,
            )
            first = await service.submit(request)
            second = await service.submit(retry)
            await service.stop()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.to_dict() == second.to_dict()
        replays = [
            r
            for r in sink.records(type="span")
            if r["name"] == "service.idempotent_replay"
        ]
        assert replays, "no idempotent replay spans recorded"
        for span in replays:
            assert span["trace_id"] == T_SEND
            assert span["parent_id"] is None


class TestCrashReplayContinuity:
    def test_replay_reenters_the_admits_trace(self, tmp_path):
        config = ServiceConfig(
            shards=1, seed=SEED, journal_dir=str(tmp_path / "jd")
        )

        async def crash():
            service = FleetService(config)
            await service.start()
            # The crash window: admitted on disk under its trace, never
            # executed, never completed.
            dangling = SendRequest(device_id="crash-dev", message=b"lost")
            service.journal.admit(
                "crash-k1", "send", dangling.to_dict(), trace=T_SEND
            )
            await service.abort()

        asyncio.run(crash())
        sink = _sink()
        host, journal, cache, report = recover_components(config)
        journal.close()
        assert report.replayed == 1
        assert report.idem_traces == {"crash-k1": T_SEND}
        replay_spans = [
            r
            for r in sink.records(type="span")
            if r["name"] == "recovery.replay"
        ]
        assert len(replay_spans) == 1
        assert replay_spans[0]["trace_id"] == T_SEND
        # Lane spans under the replay join the same trace.
        lane_spans = [
            r
            for r in sink.records(type="span")
            if r["name"] == "lane.execute" and r["trace_id"] == T_SEND
        ]
        assert lane_spans, "replayed execution lost the original trace"
        # The appended completion correlates on disk too.
        records, _torn = read_journal(journal_path(config.journal_dir))
        completion = next(
            r
            for r in records
            if r["op"] == "complete" and r["key"] == "crash-k1"
        )
        assert completion["trace"] == T_SEND
        assert completion["replayed"] is True

    def test_idempotency_traces_survive_restart(self, tmp_path):
        config = ServiceConfig(
            shards=1, seed=SEED, journal_dir=str(tmp_path / "jd")
        )

        async def first_life():
            service = FleetService(config)
            await service.start()
            await service.submit(
                SendRequest(
                    device_id="restart-dev",
                    message=b"keyed",
                    idempotency_key="restart-k1",
                    trace_id=T_SEND,
                )
            )
            await service.stop()

        asyncio.run(first_life())
        sink = _sink()

        async def second_life():
            service = FleetService(config)
            await service.start()
            result = await service.submit(
                SendRequest(
                    device_id="restart-dev",
                    message=b"keyed",
                    idempotency_key="restart-k1",
                    trace_id=T_OTHER,
                )
            )
            await service.stop()
            return result

        asyncio.run(second_life())
        replays = [
            r
            for r in sink.records(type="span")
            if r["name"] == "service.idempotent_replay"
        ]
        assert replays, "restart lost the idempotency hit"
        # The hit correlates with the first life's trace, not the retry's.
        assert replays[-1]["trace_id"] == T_SEND


N_DEVICES = 24
SRAM_KIB = 0.25


def _stuck_plan() -> FaultPlan:
    n_bits = int(SRAM_KIB * 8192)
    return FaultPlan(
        seed=0,
        models=(
            StuckRegion(offset=n_bits // 2, length=n_bits // 2, value=0),
        ),
    )


class TestFaultedLaneContinuity:
    def test_rerouted_jobs_keep_their_request_trace(self):
        sink = _sink()
        send_traces = {
            f"dev-{i:03d}": f"{i:02x}" * 16 for i in range(N_DEVICES)
        }
        recv_traces = {
            f"dev-{i:03d}": f"{i + 64:02x}" * 16 for i in range(N_DEVICES)
        }

        async def scenario():
            service = FleetService(
                ServiceConfig(
                    shards=4,
                    seed=77,
                    sram_kib=SRAM_KIB,
                    max_batch=4,
                    fault_plan=_stuck_plan(),
                    fault_shards=("shard-2",),
                )
            )
            await service.start()

            async def one(device_id):
                await service.submit(
                    SendRequest(
                        device_id=device_id,
                        message=f"m {device_id}".encode(),
                        trace_id=send_traces[device_id],
                    )
                )
                # The raw-BER SLO only observes captures, so the trip
                # (and the reroutes it causes) happen on the receives.
                await service.submit(
                    ReceiveRequest(
                        device_id=device_id,
                        trace_id=recv_traces[device_id],
                    )
                )

            outcomes = await asyncio.gather(
                *(one(d) for d in send_traces), return_exceptions=True
            )
            stats = service.stats()
            await service.stop()
            return outcomes, stats

        outcomes, stats = asyncio.run(scenario())
        for out in outcomes:
            if isinstance(out, BaseException):
                raise out
        # The faulted lane tripped, so some jobs rerouted mid-flight.
        assert "shard-2" in stats["admission"]["tripped"]
        # Every device's lane execution happened under that device's own
        # trace — rerouting never re-minted or cross-wired a trace.
        for traces in (send_traces, recv_traces):
            for device_id, trace_id in traces.items():
                lane_spans = [
                    r
                    for r in _spans_of(sink, trace_id)
                    if r["name"] == "lane.execute"
                ]
                assert lane_spans, f"{device_id} lost its trace"
                for span in lane_spans:
                    assert span["attrs"]["device_id"] == device_id
