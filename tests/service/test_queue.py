"""BoundedJobQueue: batching, backpressure accounting, drain bookkeeping."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import ReceiveRequest, SendRequest
from repro.service import BoundedJobQueue, Job


def _job(kind: str = "send", device: str = "dev-1") -> Job:
    loop = asyncio.get_running_loop()
    request = (
        SendRequest(device_id=device, message=b"x")
        if kind == "send"
        else ReceiveRequest(device_id=device)
    )
    return Job.for_request(request, loop.create_future())


def test_maxsize_validated():
    with pytest.raises(ValueError):
        BoundedJobQueue(0)


def test_for_request_maps_kind():
    async def scenario():
        send = Job.for_request(
            SendRequest(device_id="d", message=b"x"),
            asyncio.get_running_loop().create_future(),
        )
        recv = Job.for_request(
            ReceiveRequest(device_id="d"),
            asyncio.get_running_loop().create_future(),
        )
        assert (send.kind, recv.kind) == ("send", "receive")
        assert send.reroutes == 0 and send.shard is None

    asyncio.run(scenario())


def test_get_batch_drains_up_to_max():
    async def scenario():
        queue = BoundedJobQueue(16)
        for _ in range(5):
            await queue.put(_job())
        batch = await queue.get_batch(3)
        assert len(batch) == 3
        assert queue.qsize() == 2
        rest = await queue.get_batch(8)
        assert len(rest) == 2

    asyncio.run(scenario())


def test_get_batch_returns_single_job_when_idle():
    async def scenario():
        queue = BoundedJobQueue(16)
        await queue.put(_job())
        batch = await queue.get_batch(8)
        assert len(batch) == 1

    asyncio.run(scenario())


def test_put_nowait_raises_when_full():
    async def scenario():
        queue = BoundedJobQueue(2)
        queue.put_nowait(_job())
        queue.put_nowait(_job())
        assert queue.full()
        with pytest.raises(asyncio.QueueFull):
            queue.put_nowait(_job())

    asyncio.run(scenario())


def test_stats_track_enqueues_and_watermark():
    async def scenario():
        queue = BoundedJobQueue(8)
        for _ in range(4):
            await queue.put(_job())
        await queue.get_batch(2)
        await queue.put(_job())
        assert queue.enqueued == 5
        assert queue.high_watermark == 4

    asyncio.run(scenario())


def test_drain_pending_returns_queued_jobs_and_balances_join():
    async def scenario():
        queue = BoundedJobQueue(8)
        jobs = [_job(device=f"dev-{i}") for i in range(3)]
        for job in jobs:
            await queue.put(job)
        drained = queue.drain_pending()
        assert drained == jobs  # FIFO order preserved for shed reporting
        assert queue.qsize() == 0
        # task_done was called for every drained job: join returns
        # immediately instead of hanging the no-drain stop path.
        assert queue.unfinished == 0
        await asyncio.wait_for(queue.join(), timeout=1)

    asyncio.run(scenario())


def test_drain_pending_on_empty_queue():
    async def scenario():
        queue = BoundedJobQueue(4)
        assert queue.drain_pending() == []

    asyncio.run(scenario())


def test_drain_pending_skips_jobs_already_in_flight():
    async def scenario():
        queue = BoundedJobQueue(8)
        for i in range(4):
            await queue.put(_job(device=f"dev-{i}"))
        batch = await queue.get_batch(2)  # a worker holds these
        drained = queue.drain_pending()
        assert len(batch) == 2 and len(drained) == 2
        assert {j.request.device_id for j in drained} == {"dev-2", "dev-3"}
        assert queue.unfinished == 2  # the in-flight batch still owes

    asyncio.run(scenario())


def test_jobs_carry_journal_bookkeeping_defaults():
    async def scenario():
        job = _job()
        assert job.seq is None and job.key is None

    asyncio.run(scenario())


def test_join_waits_for_task_done():
    async def scenario():
        queue = BoundedJobQueue(8)
        await queue.put(_job())
        batch = await queue.get_batch(4)
        assert queue.unfinished == 1
        join = asyncio.create_task(queue.join())
        await asyncio.sleep(0)
        assert not join.done()
        for _ in batch:
            queue.task_done()
        await asyncio.wait_for(join, timeout=1)
        assert queue.unfinished == 0

    asyncio.run(scenario())
