"""BoundedJobQueue: batching, backpressure accounting, drain bookkeeping."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import ReceiveRequest, SendRequest
from repro.service import BoundedJobQueue, Job


def _job(kind: str = "send", device: str = "dev-1") -> Job:
    loop = asyncio.get_running_loop()
    request = (
        SendRequest(device_id=device, message=b"x")
        if kind == "send"
        else ReceiveRequest(device_id=device)
    )
    return Job.for_request(request, loop.create_future())


def test_maxsize_validated():
    with pytest.raises(ValueError):
        BoundedJobQueue(0)


def test_for_request_maps_kind():
    async def scenario():
        send = Job.for_request(
            SendRequest(device_id="d", message=b"x"),
            asyncio.get_running_loop().create_future(),
        )
        recv = Job.for_request(
            ReceiveRequest(device_id="d"),
            asyncio.get_running_loop().create_future(),
        )
        assert (send.kind, recv.kind) == ("send", "receive")
        assert send.reroutes == 0 and send.shard is None

    asyncio.run(scenario())


def test_get_batch_drains_up_to_max():
    async def scenario():
        queue = BoundedJobQueue(16)
        for _ in range(5):
            await queue.put(_job())
        batch = await queue.get_batch(3)
        assert len(batch) == 3
        assert queue.qsize() == 2
        rest = await queue.get_batch(8)
        assert len(rest) == 2

    asyncio.run(scenario())


def test_get_batch_returns_single_job_when_idle():
    async def scenario():
        queue = BoundedJobQueue(16)
        await queue.put(_job())
        batch = await queue.get_batch(8)
        assert len(batch) == 1

    asyncio.run(scenario())


def test_put_nowait_raises_when_full():
    async def scenario():
        queue = BoundedJobQueue(2)
        queue.put_nowait(_job())
        queue.put_nowait(_job())
        assert queue.full()
        with pytest.raises(asyncio.QueueFull):
            queue.put_nowait(_job())

    asyncio.run(scenario())


def test_stats_track_enqueues_and_watermark():
    async def scenario():
        queue = BoundedJobQueue(8)
        for _ in range(4):
            await queue.put(_job())
        await queue.get_batch(2)
        await queue.put(_job())
        assert queue.enqueued == 5
        assert queue.high_watermark == 4

    asyncio.run(scenario())


def test_join_waits_for_task_done():
    async def scenario():
        queue = BoundedJobQueue(8)
        await queue.put(_job())
        batch = await queue.get_batch(4)
        assert queue.unfinished == 1
        join = asyncio.create_task(queue.join())
        await asyncio.sleep(0)
        assert not join.done()
        for _ in batch:
            queue.task_done()
        await asyncio.wait_for(join, timeout=1)
        assert queue.unfinished == 0

    asyncio.run(scenario())
