"""ShardRouter: stable rendezvous routing with minimal-churn failover."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service import ShardRouter, stable_seed

SHARDS = ("shard-0", "shard-1", "shard-2", "shard-3")
DEVICES = [f"dev-{i:04d}" for i in range(200)]


def test_router_validates_names():
    with pytest.raises(ConfigurationError):
        ShardRouter(())
    with pytest.raises(ConfigurationError):
        ShardRouter(("a", "a"))


def test_stable_seed_is_stable_and_distinct():
    assert stable_seed("a", 1) == stable_seed("a", 1)
    assert stable_seed("a", 1) != stable_seed("a", 2)
    # Part boundaries matter: ("ab", "c") is not ("a", "bc").
    assert stable_seed("ab", "c") != stable_seed("a", "bc")


def test_routing_is_deterministic():
    router = ShardRouter(SHARDS)
    again = ShardRouter(SHARDS)
    for device in DEVICES:
        assert router.route(device) == again.route(device)


def test_routing_spreads_load():
    router = ShardRouter(SHARDS)
    homes = [router.route(device) for device in DEVICES]
    counts = {name: homes.count(name) for name in SHARDS}
    assert set(counts) == set(SHARDS)
    # 200 devices over 4 shards: every lane gets a real share.
    assert min(counts.values()) >= 20


def test_removing_a_shard_moves_only_its_devices():
    router = ShardRouter(SHARDS)
    before = {device: router.route(device) for device in DEVICES}
    pool = set(SHARDS) - {"shard-2"}
    for device in DEVICES:
        after = router.route(device, pool)
        if before[device] == "shard-2":
            assert after in pool
        else:
            assert after == before[device]


def test_empty_pool_returns_none():
    router = ShardRouter(SHARDS)
    assert router.route("dev-1", set()) is None
