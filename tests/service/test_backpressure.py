"""SLO-driven shed/reroute: a faulted lane must not perturb healthy ones.

The scenario the serving layer exists for: one shard's harness lane has a
stuck-at region (half the capture readback forced to 0 — raw BER ~50%
against the staged payloads, the pattern from tests/monitor).  The lane's
raw-BER SLO pages, admission trips exactly that lane, its jobs reroute,
and — the load-bearing claim — every device homed on a *healthy* lane
produces results bit-identical to the same run without any fault.
"""

from __future__ import annotations

import asyncio

from repro.faults import FaultPlan, StuckRegion
from repro.service import FleetService, ServiceConfig, ShardRouter
from repro.api import ReceiveRequest, SendRequest

N_DEVICES = 24
SRAM_KIB = 0.25
SEED = 77


def _stuck_plan() -> FaultPlan:
    n_bits = int(SRAM_KIB * 8192)
    return FaultPlan(
        seed=0,
        models=(
            StuckRegion(offset=n_bits // 2, length=n_bits // 2, value=0),
        ),
    )


def _config(**overrides) -> ServiceConfig:
    base = dict(shards=4, seed=SEED, sram_kib=SRAM_KIB, max_batch=4)
    base.update(overrides)
    return ServiceConfig(**base)


async def _run_fleet(config: ServiceConfig) -> "tuple[dict, dict]":
    """Send+receive one message per device; returns (results, stats)."""
    service = FleetService(config)
    await service.start()

    async def one(index: int):
        device_id = f"dev-{index:03d}"
        message = f"msg {index:03d}".encode()
        await service.submit(SendRequest(device_id=device_id, message=message))
        received = await service.submit(ReceiveRequest(device_id=device_id))
        return device_id, message, received

    outcomes = await asyncio.gather(
        *(one(i) for i in range(N_DEVICES)), return_exceptions=True
    )
    stats = service.stats()
    await service.stop()
    results = {}
    for out in outcomes:
        if isinstance(out, BaseException):
            raise out
        device_id, message, received = out
        results[device_id] = (message, received)
    return results, stats


def test_fault_on_one_shard_trips_reroutes_and_preserves_the_rest():
    baseline, baseline_stats = asyncio.run(_run_fleet(_config()))
    faulted, faulted_stats = asyncio.run(
        _run_fleet(
            _config(fault_plan=_stuck_plan(), fault_shards=("shard-2",))
        )
    )

    # Sanity on the baseline: every lane healthy, nothing rerouted.
    assert baseline_stats["admission"]["tripped"] == {}
    assert all(
        received.message == message
        for message, received in baseline.values()
    )

    # Exactly the faulted lane tripped, on the raw-BER SLO.
    tripped = faulted_stats["admission"]["tripped"]
    assert set(tripped) == {"shard-2"}
    assert "raw-ber-slo" in tripped["shard-2"]
    assert faulted_stats["admission"]["healthy"] == [
        "shard-0", "shard-1", "shard-3",
    ]

    # Zero lost jobs: every message still round-trips exactly — the
    # tripped lane's jobs were rescued by reroute, not dropped.
    assert set(faulted) == set(baseline)
    for device_id, (message, received) in faulted.items():
        assert received.message == message, device_id

    # Devices homed on healthy lanes are *bit-identical* to the
    # unfaulted run: same executing shard, same majority-voted power-on
    # state digest, same diagnostics-bearing payload.
    router = ShardRouter(_config().shard_names)
    healthy_homed = [
        device_id
        for device_id in baseline
        if router.route(device_id) != "shard-2"
    ]
    assert healthy_homed, "routing should put some devices off shard-2"
    for device_id in healthy_homed:
        _, base_received = baseline[device_id]
        _, fault_received = faulted[device_id]
        assert fault_received.shard == base_received.shard
        assert fault_received.state_digest == base_received.state_digest
        assert fault_received.raw_ber == base_received.raw_ber

    # And the faulted lane's devices really moved somewhere healthy.
    moved = [
        device_id
        for device_id in baseline
        if router.route(device_id) == "shard-2"
    ]
    assert moved, "routing should put some devices on shard-2"
    for device_id in moved:
        _, fault_received = faulted[device_id]
        assert fault_received.shard != "shard-2"
