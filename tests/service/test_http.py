"""The HTTP frontend over real TCP: routes, errors, drain-on-shutdown."""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.api import ReceiveRequest, SendRequest
from repro.errors import ServiceError
from repro.service import (
    LoadGenerator,
    ServiceClient,
    ServiceConfig,
    serve_forever,
)


@pytest.fixture(scope="module")
def live_service():
    """One serve_forever loop in a thread for the whole module."""
    ready = threading.Event()
    box: dict = {}

    def on_ready(service) -> None:
        box["service"] = service
        ready.set()

    thread = threading.Thread(
        target=serve_forever,
        args=(ServiceConfig(shards=2, port=0),),
        kwargs={"duration": 120, "on_ready": on_ready},
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=15), "service never came up"
    client = ServiceClient(f"http://127.0.0.1:{box['service'].port}")
    yield client
    try:
        client.shutdown()
    except (ServiceError, OSError):
        pass  # already shut down by the shutdown test
    thread.join(timeout=30)
    assert not thread.is_alive(), "serve_forever failed to drain and exit"


def test_healthz(live_service):
    health = live_service.healthz()
    assert health["http_status"] == 200
    assert health["status"] == "ok"
    assert health["healthy_shards"] == ["shard-0", "shard-1"]


def test_send_receive_over_http(live_service):
    sent = live_service.send(
        SendRequest(device_id="http-dev", message=b"over the wire")
    )
    assert sent.device_id == "http-dev"
    assert sent.shard in ("shard-0", "shard-1")
    received = live_service.receive(ReceiveRequest(device_id="http-dev"))
    assert received.message == b"over the wire"
    assert received.shard == sent.shard


def test_load_generator_remote(live_service):
    generator = LoadGenerator(seed=21, message_bytes=6)
    report = generator.run_remote(live_service, 10, concurrency=4)
    assert report.lost == 0
    assert report.completed == 10
    assert report.mismatched == 0


def test_metrics_exposition(live_service):
    text = live_service.metrics()
    assert "repro_service_jobs_total" in text
    assert "# HELP" in text


def test_stats_endpoint(live_service):
    stats = live_service.stats()
    assert stats["accepting"] is True
    assert set(stats["queues"]) == {"shard-0", "shard-1"}


def test_unknown_route_404(live_service):
    conn = HTTPConnection(live_service.host, live_service.port, timeout=10)
    try:
        conn.request("GET", "/nope")
        response = conn.getresponse()
        assert response.status == 404
    finally:
        conn.close()


def test_malformed_job_400(live_service):
    conn = HTTPConnection(live_service.host, live_service.port, timeout=10)
    try:
        conn.request(
            "POST", "/send",
            body=json.dumps({"device_id": "x"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        assert "message_hex" in json.loads(response.read().decode())["error"]
    finally:
        conn.close()


def test_shutdown_drains(live_service):
    # Ordered last by name? No — pytest runs in definition order; this
    # is the final test in the module, so the fixture teardown only has
    # to tolerate an already-closed service.
    assert live_service.shutdown() == {"status": "draining"}
