"""Write-ahead journal: CRC framing, torn tails, fsync batching, seq resume."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError, JournalError
from repro.service import Journal, read_journal


def _path(tmp_path):
    return tmp_path / "journal.jsonl"


def test_records_round_trip_through_framing(tmp_path):
    with Journal(_path(tmp_path)) as journal:
        seq = journal.admit("key-1", "send", {"device_id": "dev-1"})
        journal.complete(seq, "key-1", "ok", result={"shard": "shard-0"})
        journal.checkpoint("ckpt-00000002", [seq])
    records, torn = read_journal(_path(tmp_path))
    assert torn == 0
    assert [r["op"] for r in records] == ["admit", "complete", "checkpoint"]
    assert records[0]["request"] == {"device_id": "dev-1"}
    assert records[1]["status"] == "ok"
    assert records[2]["completed"] == [seq]


def test_every_line_carries_a_valid_crc(tmp_path):
    with Journal(_path(tmp_path)) as journal:
        journal.admit("k", "send", {"device_id": "d"})
    line = _path(tmp_path).read_text().splitlines()[0]
    import zlib

    crc_hex, body = line.split(" ", 1)
    assert int(crc_hex, 16) == zlib.crc32(body.encode())


def test_torn_tail_is_tolerated(tmp_path):
    with Journal(_path(tmp_path)) as journal:
        journal.admit("k1", "send", {"device_id": "d"})
        journal.admit("k2", "send", {"device_id": "d"})
    # The crash signature: a final line cut mid-write.
    with open(_path(tmp_path), "a") as handle:
        handle.write('0badc0de {"op": "adm')
    records, torn = read_journal(_path(tmp_path))
    assert len(records) == 2
    assert torn == 1


def test_reopen_after_torn_tail_repairs_before_appending(tmp_path):
    """The second-restart regression: appending after a torn tail must
    not concatenate onto the fragment — that would turn one tolerated
    torn line into corruption-followed-by-valid-records, and the restart
    after next would refuse to boot."""
    with Journal(_path(tmp_path)) as journal:
        journal.admit("k1", "send", {"device_id": "d"})
    with open(_path(tmp_path), "a") as handle:
        handle.write('0badc0de {"op": "adm')  # crash cut a line mid-write
    # First restart: the torn fragment is truncated before any append.
    with Journal(_path(tmp_path)) as revived:
        assert revived.repaired_tail
        assert revived.next_seq == 2
        revived.admit("k2", "send", {"device_id": "d"})
    # Second restart: the journal reads clean end to end.
    records, torn = read_journal(_path(tmp_path))
    assert torn == 0
    assert [r["key"] for r in records] == ["k1", "k2"]
    with Journal(_path(tmp_path)) as third:
        assert not third.repaired_tail
        assert third.next_seq == 3


def test_reopen_terminates_a_record_that_only_lost_its_newline(tmp_path):
    with Journal(_path(tmp_path)) as journal:
        journal.admit("k1", "send", {"device_id": "d"})
        journal.admit("k2", "send", {"device_id": "d"})
    raw = _path(tmp_path).read_bytes()
    _path(tmp_path).write_bytes(raw[:-1])  # the crash ate only the "\n"
    with Journal(_path(tmp_path)) as revived:
        assert revived.repaired_tail
        revived.admit("k3", "send", {"device_id": "d"})
    records, torn = read_journal(_path(tmp_path))
    assert torn == 0
    assert [r["key"] for r in records] == ["k1", "k2", "k3"]


def test_corruption_before_a_valid_record_raises(tmp_path):
    with Journal(_path(tmp_path)) as journal:
        journal.admit("k1", "send", {"device_id": "d"})
        journal.admit("k2", "send", {"device_id": "d"})
    lines = _path(tmp_path).read_text().splitlines(keepends=True)
    first = lines[0]
    lines[0] = first[:12] + chr(ord(first[12]) ^ 1) + first[13:]
    _path(tmp_path).write_text("".join(lines))
    with pytest.raises(JournalError, match="corrupt record at line 1"):
        read_journal(_path(tmp_path))


def test_missing_file_reads_empty(tmp_path):
    records, torn = read_journal(_path(tmp_path))
    assert records == [] and torn == 0


def test_fsync_batches_and_flush_forces(tmp_path):
    journal = Journal(_path(tmp_path), fsync_every=3)
    try:
        journal.admit("k1", "send", {})
        journal.admit("k2", "send", {})
        assert journal.fsyncs == 0  # below the batch threshold
        journal.admit("k3", "send", {})
        # Batched syncs run on the writer thread, off the appender.
        deadline = time.monotonic() + 5.0
        while journal.fsyncs < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert journal.fsyncs == 1  # batch boundary
        journal.admit("k4", "send", {})
        journal.flush()  # inline: a hard durability point
        assert journal.fsyncs == 2
        journal.flush()  # nothing pending: no extra fsync
        assert journal.fsyncs == 2
    finally:
        journal.close()


def test_checkpoint_marker_always_fsyncs(tmp_path):
    journal = Journal(_path(tmp_path), fsync_every=100)
    try:
        journal.admit("k", "send", {})
        assert journal.fsyncs == 0
        journal.checkpoint("ckpt-00000002", [1])
        assert journal.fsyncs == 1
    finally:
        journal.close()


def test_next_seq_resumes_across_lives(tmp_path):
    with Journal(_path(tmp_path)) as journal:
        first = journal.admit("k1", "send", {})
        second = journal.admit("k2", "receive", {})
    assert (first, second) == (1, 2)
    with Journal(_path(tmp_path)) as revived:
        assert revived.next_seq == 3
        assert revived.admit("k3", "send", {}) == 3


def test_abandon_skips_the_final_fsync_but_flushed_records_survive(tmp_path):
    journal = Journal(_path(tmp_path), fsync_every=100)
    journal.admit("k", "send", {"device_id": "d"})
    journal.abandon()
    assert journal.fsyncs == 0
    records, _ = read_journal(_path(tmp_path))
    assert len(records) == 1


def test_validation():
    with pytest.raises(ConfigurationError):
        Journal("unused", fsync_every=0)


def test_unknown_complete_status_rejected(tmp_path):
    with Journal(_path(tmp_path)) as journal:
        with pytest.raises(ConfigurationError, match="unknown complete"):
            journal.complete(1, "k", "maybe")
