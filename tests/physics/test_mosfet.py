"""Unit tests for the square-law MOSFET model."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.mosfet import MOSFET, MOSType


@pytest.fixture
def nmos():
    return MOSFET(MOSType.NMOS, vth=0.35, beta=3e-4)


@pytest.fixture
def pmos():
    return MOSFET(MOSType.PMOS, vth=0.35, beta=1.5e-4)


class TestRegions:
    def test_cutoff_below_threshold(self, nmos):
        assert nmos.drain_current(vg=0.3, vd=1.0, vs=0.0) == 0.0

    def test_no_current_without_vds(self, nmos):
        assert nmos.drain_current(vg=1.0, vd=0.0, vs=0.0) == 0.0

    def test_triode_current_positive(self, nmos):
        i = nmos.drain_current(vg=1.0, vd=0.1, vs=0.0)
        assert i > 0

    def test_saturation_exceeds_triode_at_fixed_vgs(self, nmos):
        triode = nmos.drain_current(vg=1.0, vd=0.1, vs=0.0)
        sat = nmos.drain_current(vg=1.0, vd=1.0, vs=0.0)
        assert sat > triode

    def test_saturation_value(self, nmos):
        # Ids = beta/2 * (vgs - vth)^2 with lambda = 0
        i = nmos.drain_current(vg=1.0, vd=1.0, vs=0.0)
        assert i == pytest.approx(0.5 * 3e-4 * (1.0 - 0.35) ** 2)

    def test_current_monotone_in_vgs(self, nmos):
        currents = [
            nmos.drain_current(vg=v, vd=1.2, vs=0.0) for v in (0.4, 0.6, 0.8, 1.0)
        ]
        assert currents == sorted(currents)


class TestPmosMirror:
    def test_pmos_conducts_when_gate_low(self, pmos):
        i = pmos.drain_current(vg=0.0, vd=0.0, vs=1.0)
        assert i < 0  # current flows out of the drain into the node

    def test_pmos_cuts_off_when_gate_high(self, pmos):
        assert pmos.drain_current(vg=1.0, vd=0.0, vs=1.0) == 0.0

    def test_symmetry_with_nmos(self, nmos):
        pmos_same_beta = MOSFET(MOSType.PMOS, vth=0.35, beta=3e-4)
        i_n = nmos.drain_current(vg=1.0, vd=1.0, vs=0.0)
        i_p = pmos_same_beta.drain_current(vg=0.0, vd=0.0, vs=1.0)
        assert i_p == pytest.approx(-i_n)


class TestAging:
    def test_aged_raises_vth(self, pmos):
        older = pmos.aged(0.05)
        assert older.vth == pytest.approx(0.40)

    def test_aged_reduces_current(self, pmos):
        fresh = pmos.drain_current(vg=0.0, vd=0.0, vs=1.0)
        aged = pmos.aged(0.1).drain_current(vg=0.0, vd=0.0, vs=1.0)
        assert abs(aged) < abs(fresh)

    def test_negative_aging_rejected(self, pmos):
        with pytest.raises(ConfigurationError):
            pmos.aged(-0.01)


class TestValidation:
    def test_negative_vth_rejected(self):
        with pytest.raises(ConfigurationError):
            MOSFET(MOSType.NMOS, vth=-0.1, beta=1e-4)

    def test_nonpositive_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            MOSFET(MOSType.NMOS, vth=0.3, beta=0.0)

    def test_channel_length_modulation_increases_sat_current(self):
        flat = MOSFET(MOSType.NMOS, vth=0.35, beta=3e-4, lambda_=0.0)
        clm = MOSFET(MOSType.NMOS, vth=0.35, beta=3e-4, lambda_=0.1)
        assert clm.drain_current(1.0, 1.0, 0.0) > flat.drain_current(1.0, 1.0, 0.0)
