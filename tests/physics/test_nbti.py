"""Unit tests for the NBTI stress/recovery model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physics.nbti import NBTIModel, NBTIState


@pytest.fixture
def model():
    return NBTIModel(k_scale=1e-3, time_exponent=0.75)


class TestState:
    def test_fresh_state_is_zero(self, model):
        state = NBTIState.fresh(4)
        assert np.all(model.dvth(state) == 0.0)

    def test_fresh_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            NBTIState.fresh(0)

    def test_copy_is_independent(self, model):
        state = NBTIState.fresh(2)
        dup = state.copy()
        model.stress(state, 100.0)
        assert np.all(dup.stress_seconds == 0.0)


class TestStress:
    def test_power_law_growth(self, model):
        state = NBTIState.fresh(1)
        model.stress(state, 1000.0)
        assert model.dvth(state)[0] == pytest.approx(1e-3 * 1000.0**0.75)

    def test_stress_accumulates(self, model):
        split = NBTIState.fresh(1)
        model.stress(split, 500.0)
        model.stress(split, 500.0)
        whole = NBTIState.fresh(1)
        model.stress(whole, 1000.0)
        assert model.dvth(split)[0] == pytest.approx(model.dvth(whole)[0])

    def test_sublinear_in_time(self, model):
        a, b = NBTIState.fresh(1), NBTIState.fresh(1)
        model.stress(a, 1000.0)
        model.stress(b, 2000.0)
        ratio = model.dvth(b)[0] / model.dvth(a)[0]
        assert 1.0 < ratio < 2.0

    def test_per_transistor_array_stress(self, model):
        state = NBTIState.fresh(3)
        model.stress(state, np.array([0.0, 100.0, 200.0]))
        d = model.dvth(state)
        assert d[0] == 0.0
        assert 0 < d[1] < d[2]

    def test_zero_stress_leaves_relax_clock_running(self, model):
        state = NBTIState.fresh(2)
        model.stress(state, np.array([100.0, 100.0]))
        model.relax(state, 3600.0)
        # Stress only transistor 0; transistor 1's relax clock must survive.
        model.stress(state, np.array([50.0, 0.0]))
        assert state.relax_seconds[0] == 0.0
        assert state.relax_seconds[1] == 3600.0

    def test_negative_stress_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.stress(NBTIState.fresh(1), -1.0)


class TestRecovery:
    def test_relax_reduces_shift(self, model):
        state = NBTIState.fresh(1)
        model.stress(state, 36000.0)
        before = model.dvth(state)[0]
        model.relax(state, 30 * 86400.0)
        after = model.dvth(state)[0]
        assert after < before

    def test_recovery_is_partial(self, model):
        state = NBTIState.fresh(1)
        model.stress(state, 36000.0)
        full = model.dvth_unrecovered(state)[0]
        model.relax(state, 10 * 365 * 86400.0)  # a decade
        assert model.dvth(state)[0] >= full * (1.0 - model.rec_ceiling)

    def test_recovery_logarithmic_shape(self, model):
        """Recovered fraction at 1 week / 1 month / 14 weeks follows the
        paper's Figure 7 log-in-time trend (diminishing rate)."""
        state = NBTIState.fresh(1)
        model.stress(state, 36000.0)
        full = model.dvth_unrecovered(state)[0]
        recovered = []
        elapsed = 0.0
        for target_days in (7, 30, 98):
            model.relax(state, (target_days - elapsed) * 86400.0)
            elapsed = target_days
            recovered.append(1.0 - model.dvth(state)[0] / full)
        week, month, quarter = recovered
        assert 0 < week < month < quarter
        # Rate decays: the second interval recovers less per day.
        assert (month - week) / 23 < week / 7

    def test_restress_relocks_recovery(self, model):
        state = NBTIState.fresh(1)
        model.stress(state, 36000.0)
        model.relax(state, 30 * 86400.0)
        recovered_shift = model.dvth(state)[0]
        model.stress(state, 1.0)  # tiny re-stress re-locks
        assert state.relax_seconds[0] == 0.0
        assert model.dvth(state)[0] == pytest.approx(recovered_shift, rel=1e-3)

    def test_stress_ac_does_not_touch_relax_clock(self, model):
        state = NBTIState.fresh(1)
        model.stress(state, 36000.0)
        model.relax(state, 86400.0)
        model.stress_ac(state, 100.0)
        assert state.relax_seconds[0] == 86400.0

    def test_negative_relax_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.relax(NBTIState.fresh(1), -5.0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(k_scale=-1.0),
            dict(k_scale=1.0, time_exponent=0.0),
            dict(k_scale=1.0, time_exponent=1.5),
            dict(k_scale=1.0, rec_ceiling=1.0),
            dict(k_scale=1.0, rec_log_coeff=-0.1),
            dict(k_scale=1.0, rec_tau_s=0.0),
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            NBTIModel(**kwargs)

    def test_shift_after_closed_form(self, model):
        state = NBTIState.fresh(1)
        model.stress(state, 12345.0)
        assert model.shift_after(12345.0) == pytest.approx(model.dvth(state)[0])
