"""Unit tests for the V/T acceleration law (paper Figure 3d ordering)."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.acceleration import AccelerationModel
from repro.units import celsius_to_kelvin


@pytest.fixture
def model():
    return AccelerationModel(vdd_nominal=1.2)


def test_unity_at_nominal(model):
    assert model.factor(1.2, celsius_to_kelvin(25.0)) == pytest.approx(1.0)


def test_monotone_in_voltage(model):
    t = celsius_to_kelvin(25.0)
    factors = [model.factor(v, t) for v in (1.2, 1.8, 2.4, 3.3)]
    assert factors == sorted(factors)
    assert factors[-1] > factors[0]


def test_monotone_in_temperature(model):
    factors = [
        model.factor(1.2, celsius_to_kelvin(c)) for c in (25.0, 45.0, 65.0, 85.0)
    ]
    assert factors == sorted(factors)


def test_voltage_dominates_temperature_figure_3d(model):
    """The paper: 'voltage has the largest acceleration effect'."""
    volts_only = model.factor(3.3, celsius_to_kelvin(25.0))
    temp_only = model.factor(1.2, celsius_to_kelvin(85.0))
    both = model.factor(3.3, celsius_to_kelvin(85.0))
    assert volts_only > temp_only
    assert both == pytest.approx(volts_only * temp_only)


def test_equivalent_seconds_scales_linearly(model):
    t = celsius_to_kelvin(85.0)
    assert model.equivalent_seconds(3.3, t, 200.0) == pytest.approx(
        2 * model.equivalent_seconds(3.3, t, 100.0)
    )


def test_factor_magnitude_is_physical(model):
    # The paper encodes in ~10 h what would take years at nominal: the
    # acceleration factor at (3.3 V, 85 C) should be in the hundreds+.
    factor = model.factor(3.3, celsius_to_kelvin(85.0))
    assert 100 < factor < 100_000


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(vdd_nominal=0.0),
        dict(vdd_nominal=1.2, temp_nominal_k=-5.0),
        dict(vdd_nominal=1.2, voltage_exponent=0.0),
        dict(vdd_nominal=1.2, activation_energy_ev=-0.1),
    ],
)
def test_invalid_construction(kwargs):
    with pytest.raises(ConfigurationError):
        AccelerationModel(**kwargs)


def test_invalid_operating_points(model):
    with pytest.raises(ConfigurationError):
        model.factor(-1.0, 300.0)
    with pytest.raises(ConfigurationError):
        model.factor(1.2, 0.0)
    with pytest.raises(ConfigurationError):
        model.equivalent_seconds(1.2, 300.0, -1.0)
