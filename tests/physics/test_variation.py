"""Unit tests for process-variation sampling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physics.variation import sample_mismatch
from repro.stats.morans_i import morans_i


def test_unit_variance():
    m = sample_mismatch(200_000, rng=0)
    assert m.std() == pytest.approx(1.0, abs=0.02)
    assert abs(m.mean()) < 0.02


def test_deterministic_for_seed():
    a = sample_mismatch(1000, rng=5)
    b = sample_mismatch(1000, rng=5)
    assert np.array_equal(a, b)


def test_zero_correlated_share_is_iid():
    m = sample_mismatch(256 * 64, row_width=256, correlated_share=0.0, rng=1)
    result = morans_i(m, grid_shape=(64, 256))
    assert abs(result.statistic) < 0.01


def test_correlated_share_raises_morans_i():
    m = sample_mismatch(256 * 64, row_width=256, correlated_share=0.05, rng=1)
    result = morans_i(m, grid_shape=(64, 256))
    # ~share of variance is spatially smooth -> I approximately the share.
    assert 0.02 < result.statistic < 0.10


def test_default_share_matches_paper_table2_scale():
    # Table 2: unstressed devices show Moran's I around 0.009-0.011.
    m = sample_mismatch(256 * 128, row_width=256, rng=3)
    result = morans_i(m, grid_shape=(128, 256))
    assert 0.001 < result.statistic < 0.03


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_cells=0),
        dict(n_cells=10, correlated_share=1.0),
        dict(n_cells=10, correlated_share=-0.1),
        dict(n_cells=10, row_width=0),
    ],
)
def test_invalid_arguments(kwargs):
    with pytest.raises(ConfigurationError):
        sample_mismatch(**kwargs)


def test_dtype_is_float32():
    assert sample_mismatch(16, rng=0).dtype == np.float32
