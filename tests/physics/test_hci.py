"""Unit tests for the HCI common-mode model."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.hci import HCIModel


def test_zero_toggles_zero_shift():
    assert HCIModel().dvth(0) == 0.0


def test_shift_grows_sublinearly():
    model = HCIModel(k_scale=1e-4, exponent=0.5)
    assert model.dvth(100) == pytest.approx(1e-3)
    assert model.dvth(400) == pytest.approx(2e-3)


def test_noise_widening_monotone():
    model = HCIModel(k_scale=1e-4)
    fresh = model.noise_widening(0, 0.05)
    worn = model.noise_widening(1e9, 0.05)
    assert fresh == pytest.approx(0.05)
    assert worn > fresh


def test_validation():
    with pytest.raises(ConfigurationError):
        HCIModel(k_scale=-1.0)
    with pytest.raises(ConfigurationError):
        HCIModel(exponent=0.0)
    with pytest.raises(ConfigurationError):
        HCIModel().dvth(-1)
    with pytest.raises(ConfigurationError):
        HCIModel().noise_widening(10, -0.1)
