"""Unit tests for capture/enrollment serialization."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io import (
    load_captures,
    load_enrollment,
    load_helper_data,
    save_captures,
    save_enrollment,
    save_helper_data,
)


@pytest.fixture
def samples():
    return np.random.default_rng(0).integers(0, 2, (5, 1024)).astype(np.uint8)


class TestCaptures:
    def test_round_trip(self, tmp_path, samples):
        path = tmp_path / "caps.json"
        save_captures(
            path, samples, device_name="MSP432P401", device_id=b"\x01\x02",
            metadata={"trip": "test"},
        )
        loaded, info = load_captures(path)
        assert np.array_equal(loaded, samples)
        assert info["device_name"] == "MSP432P401"
        assert info["device_id"] == b"\x01\x02"
        assert info["metadata"] == {"trip": "test"}

    def test_rejects_partial_byte_rows(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_captures(tmp_path / "x.json", np.zeros((2, 10), dtype=np.uint8))

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigurationError):
            load_captures(path)

    def test_rejects_future_version(self, tmp_path, samples):
        path = tmp_path / "caps.json"
        save_captures(path, samples)
        raw = json.loads(path.read_text())
        raw["version"] = 999
        path.write_text(json.dumps(raw))
        with pytest.raises(ConfigurationError):
            load_captures(path)

    def test_file_is_not_pickle(self, tmp_path, samples):
        path = tmp_path / "caps.json"
        save_captures(path, samples)
        # plain JSON: loadable by the stdlib without repro installed
        assert json.loads(path.read_text())["n_bits"] == 1024

    def test_end_to_end_with_pipeline(self, tmp_path, small_board):
        """Field laptop saves captures; analyst decodes from the file."""
        from repro.bitutils import bit_error_rate, invert_bits, majority_vote

        payload = np.random.default_rng(1).integers(
            0, 2, small_board.device.sram.n_bits
        ).astype(np.uint8)
        small_board.encode_message(payload, use_firmware=False, camouflage=False)
        caps = small_board.capture_power_on_states(5)
        path = tmp_path / "field.json"
        save_captures(path, caps, device_id=small_board.device.device_id)
        loaded, info = load_captures(path)
        error = bit_error_rate(payload, invert_bits(majority_vote(loaded)))
        assert error < 0.09
        assert info["device_id"] == small_board.device.device_id

    def test_captures_convention_round_trip(self, tmp_path, small_board):
        """The unified Captures contract: every producer returns
        (n_captures, n_bits) uint8, and disk round-trips it unchanged."""
        from repro.core.pipeline import InvisibleBits

        n_bits = small_board.device.sram.n_bits
        board_caps = small_board.capture_power_on_states(3)
        assert board_caps.shape == (3, n_bits)
        assert board_caps.dtype == np.uint8

        channel = InvisibleBits(small_board, use_firmware=False)
        chan_caps = channel.capture_samples(3)
        assert chan_caps.shape == (3, n_bits)
        assert chan_caps.dtype == np.uint8

        path = tmp_path / "contract.json"
        save_captures(path, board_caps)
        loaded, _ = load_captures(path)
        assert loaded.shape == board_caps.shape
        assert loaded.dtype == np.uint8
        assert np.array_equal(loaded, board_caps)


class TestEnrollment:
    def test_round_trip(self, tmp_path):
        from repro.device import make_device
        from repro.puf import SramPuf

        device = make_device("MSP432P401", rng=85, sram_kib=1)
        puf = SramPuf(device)
        enrollment = puf.enroll()
        path = tmp_path / "enroll.json"
        save_enrollment(path, enrollment)
        loaded = load_enrollment(path)
        assert loaded.device_name == enrollment.device_name
        assert np.array_equal(loaded.reference, enrollment.reference)
        ok, _ = puf.authenticate(loaded)
        assert ok

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ConfigurationError):
            load_enrollment(path)


class TestHelperData:
    def test_round_trip(self, tmp_path):
        from repro.puf import FuzzyExtractor

        extractor = FuzzyExtractor(copies=7, secret_bits=64)
        response = np.random.default_rng(2).integers(
            0, 2, extractor.response_bits
        ).astype(np.uint8)
        key, helper = extractor.generate(response, rng=3)
        path = tmp_path / "helper.json"
        save_helper_data(path, helper)
        loaded = load_helper_data(path)
        assert extractor.reproduce(response, loaded) == key

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ConfigurationError):
            load_helper_data(path)
