"""Sink behaviour in isolation: rendering, eviction, file modes."""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry import ConsoleSink, JsonlSink, RingBufferSink


class TestRingBufferSink:
    def test_evicts_oldest_beyond_capacity(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit({"type": "counter", "name": f"c{i}", "value": i})
        assert len(sink) == 3
        assert [r["name"] for r in sink.records()] == ["c2", "c3", "c4"]

    def test_filters_by_type_and_name(self):
        sink = RingBufferSink()
        sink.emit({"type": "span", "name": "a"})
        sink.emit({"type": "counter", "name": "a"})
        sink.emit({"type": "counter", "name": "b"})
        assert len(sink.records(type="counter")) == 2
        assert len(sink.records(name="a")) == 2
        assert len(sink.records(type="counter", name="a")) == 1

    def test_filter_tolerates_typeless_records(self):
        sink = RingBufferSink()
        sink.emit({"name": "orphan"})
        assert sink.records(type="span") == []
        assert sink.records(name="orphan") == [{"name": "orphan"}]

    def test_clear_empties_buffer(self):
        sink = RingBufferSink()
        sink.emit({"type": "counter", "name": "c"})
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def _emit_some(self, sink, names):
        for name in names:
            sink.emit({"type": "counter", "name": name, "value": 1})
        sink.close()

    def test_write_mode_truncates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._emit_some(JsonlSink(path), ["first"])
        self._emit_some(JsonlSink(path), ["second"])
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["second"]

    def test_append_mode_preserves_existing_records(self, tmp_path):
        # Regression: a resumed run (or a second registry sharing one
        # trace file) must not destroy the earlier records.
        path = tmp_path / "trace.jsonl"
        self._emit_some(JsonlSink(path), ["first"])
        self._emit_some(JsonlSink(path, mode="a"), ["second"])
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["first", "second"]

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "t.jsonl", mode="x")

    def test_file_opened_lazily(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()
        sink.emit({"type": "counter", "name": "c", "value": 1})
        assert path.exists()
        sink.close()

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit({"type": "counter", "name": "c", "value": 1})
        sink.close()
        sink.close()  # second close must not raise
        # And a sink that never opened closes cleanly too.
        JsonlSink(tmp_path / "never.jsonl").close()

    def test_reopens_after_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, mode="a")
        sink.emit({"type": "counter", "name": "a", "value": 1})
        sink.close()
        sink.emit({"type": "counter", "name": "b", "value": 2})
        sink.close()
        assert len(path.read_text().splitlines()) == 2


class TestConsoleSink:
    def _render(self, record):
        stream = io.StringIO()
        ConsoleSink(stream).emit(record)
        return stream.getvalue()

    def test_span_line(self):
        line = self._render(
            {
                "type": "span",
                "name": "channel.receive",
                "dur_ms": 12.345,
                "status": "ok",
                "attrs": {"device": "X"},
                "counters": {"retry.attempts": 2},
            }
        )
        assert line == "[span] channel.receive 12.35ms ok device=X retry.attempts=2\n"

    def test_span_with_missing_fields_renders_placeholders(self):
        # Regression: foreign/truncated records must render, not raise
        # KeyError inside the registry's emit loop.
        line = self._render({"type": "span"})
        assert line == "[span] ? ? ?\n"

    def test_alert_line(self):
        line = self._render(
            {
                "type": "alert",
                "name": "raw-ber-ceiling",
                "severity": "page",
                "message": "repro_raw_ber = 0.31 breached",
            }
        )
        assert line == "[alert] page raw-ber-ceiling: repro_raw_ber = 0.31 breached\n"

    def test_alert_falls_back_to_value(self):
        line = self._render({"type": "alert", "name": "r", "value": 0.4})
        assert line == "[alert] page r: 0.4\n"

    def test_counter_and_gauge_lines(self):
        assert (
            self._render({"type": "counter", "name": "retry.attempts", "value": 3})
            == "[counter] retry.attempts = 3\n"
        )
        assert (
            self._render({"type": "gauge", "name": "temp_c", "value": 55.0})
            == "[gauge] temp_c = 55.0\n"
        )

    def test_empty_record_renders(self):
        assert self._render({}) == "[?] ? = None\n"
