"""Sink behaviour in isolation: rendering, eviction, file modes."""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry import ConsoleSink, JsonlSink, RingBufferSink


class TestRingBufferSink:
    def test_evicts_oldest_beyond_capacity(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit({"type": "counter", "name": f"c{i}", "value": i})
        assert len(sink) == 3
        assert [r["name"] for r in sink.records()] == ["c2", "c3", "c4"]

    def test_filters_by_type_and_name(self):
        sink = RingBufferSink()
        sink.emit({"type": "span", "name": "a"})
        sink.emit({"type": "counter", "name": "a"})
        sink.emit({"type": "counter", "name": "b"})
        assert len(sink.records(type="counter")) == 2
        assert len(sink.records(name="a")) == 2
        assert len(sink.records(type="counter", name="a")) == 1

    def test_filter_tolerates_typeless_records(self):
        sink = RingBufferSink()
        sink.emit({"name": "orphan"})
        assert sink.records(type="span") == []
        assert sink.records(name="orphan") == [{"name": "orphan"}]

    def test_clear_empties_buffer(self):
        sink = RingBufferSink()
        sink.emit({"type": "counter", "name": "c"})
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def _emit_some(self, sink, names):
        for name in names:
            sink.emit({"type": "counter", "name": name, "value": 1})
        sink.close()

    def test_write_mode_truncates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._emit_some(JsonlSink(path), ["first"])
        self._emit_some(JsonlSink(path), ["second"])
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["second"]

    def test_append_mode_preserves_existing_records(self, tmp_path):
        # Regression: a resumed run (or a second registry sharing one
        # trace file) must not destroy the earlier records.
        path = tmp_path / "trace.jsonl"
        self._emit_some(JsonlSink(path), ["first"])
        self._emit_some(JsonlSink(path, mode="a"), ["second"])
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["first", "second"]

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "t.jsonl", mode="x")

    def test_file_opened_lazily(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()
        sink.emit({"type": "counter", "name": "c", "value": 1})
        assert path.exists()
        sink.close()

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit({"type": "counter", "name": "c", "value": 1})
        sink.close()
        sink.close()  # second close must not raise
        # And a sink that never opened closes cleanly too.
        JsonlSink(tmp_path / "never.jsonl").close()

    def test_reopens_after_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, mode="a")
        sink.emit({"type": "counter", "name": "a", "value": 1})
        sink.close()
        sink.emit({"type": "counter", "name": "b", "value": 2})
        sink.close()
        assert len(path.read_text().splitlines()) == 2


class TestJsonlRotation:
    def _record(self, name, pad=0):
        return {"type": "counter", "name": name, "value": "x" * pad}

    def test_rotates_to_dot_one_at_cap(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # Each record serializes to 63 bytes, so the cap fits two.
        sink = JsonlSink(path, max_bytes=130)
        for i in range(4):
            sink.emit(self._record(f"c{i:02d}", pad=20))
        sink.close()
        rotated = tmp_path / "trace.jsonl.1"
        assert rotated.exists()
        # Every line in both files is valid JSON and nothing was lost:
        # the rotated file holds the older records, the live file the
        # newer ones, in emit order across the boundary.
        names = [
            json.loads(line)["name"]
            for target in (rotated, path)
            for line in target.read_text().splitlines()
        ]
        assert names == [f"c{i:02d}" for i in range(4)]
        assert rotated.stat().st_size <= 130

    def test_second_rotation_replaces_previous_dot_one(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, max_bytes=80)
        for i in range(40):
            sink.emit(self._record(f"c{i:02d}", pad=10))
        sink.close()
        # Disk usage stays bounded at two files regardless of volume.
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["trace.jsonl", "trace.jsonl.1"]
        total = path.stat().st_size + (tmp_path / "trace.jsonl.1").stat().st_size
        assert total <= 2 * 80 + 60  # one oversize record of slack

    def test_oversize_record_lands_whole(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, max_bytes=50)
        sink.emit(self._record("big", pad=200))
        sink.close()
        # A record larger than the cap is never split or dropped.
        assert json.loads(path.read_text())["name"] == "big"

    def test_append_mode_resumes_byte_budget(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = JsonlSink(path, max_bytes=100)
        first.emit(self._record("a", pad=40))
        first.close()
        second = JsonlSink(path, mode="a", max_bytes=100)
        second.emit(self._record("b", pad=40))
        second.close()
        # The resumed sink counted the existing bytes, so the second
        # record tripped the rotation instead of blowing past the cap.
        assert (tmp_path / "trace.jsonl.1").exists()

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "t.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "t.jsonl", max_bytes=-5)


class TestConsoleSink:
    def _render(self, record):
        stream = io.StringIO()
        ConsoleSink(stream).emit(record)
        return stream.getvalue()

    def test_span_line(self):
        line = self._render(
            {
                "type": "span",
                "name": "channel.receive",
                "dur_ms": 12.345,
                "status": "ok",
                "attrs": {"device": "X"},
                "counters": {"retry.attempts": 2},
            }
        )
        assert line == "[span] channel.receive 12.35ms ok device=X retry.attempts=2\n"

    def test_span_with_missing_fields_renders_placeholders(self):
        # Regression: foreign/truncated records must render, not raise
        # KeyError inside the registry's emit loop.
        line = self._render({"type": "span"})
        assert line == "[span] ? ? ?\n"

    def test_alert_line(self):
        line = self._render(
            {
                "type": "alert",
                "name": "raw-ber-ceiling",
                "severity": "page",
                "message": "repro_raw_ber = 0.31 breached",
            }
        )
        assert line == "[alert] page raw-ber-ceiling: repro_raw_ber = 0.31 breached\n"

    def test_alert_falls_back_to_value(self):
        line = self._render({"type": "alert", "name": "r", "value": 0.4})
        assert line == "[alert] page r: 0.4\n"

    def test_counter_and_gauge_lines(self):
        assert (
            self._render({"type": "counter", "name": "retry.attempts", "value": 3})
            == "[counter] retry.attempts = 3\n"
        )
        assert (
            self._render({"type": "gauge", "name": "temp_c", "value": 55.0})
            == "[gauge] temp_c = 55.0\n"
        )

    def test_empty_record_renders(self):
        assert self._render({}) == "[?] ? = None\n"
