"""Unit tests for the repro.telemetry registry, spans and sinks."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import (
    ConsoleSink,
    JsonlSink,
    RingBufferSink,
    load_records,
    summarize,
)


class TestDisabledByDefault:
    def test_no_sinks_means_disabled(self):
        assert not telemetry.enabled()
        assert not telemetry.active()

    def test_trace_yields_null_span_when_disabled(self):
        with telemetry.trace("x", a=1) as span:
            # The shared null span: set/count are chainable no-ops.
            assert span.set(b=2) is span
            span.count("c", 3)
            assert span.counters == {}
        assert not telemetry.active()

    def test_count_and_gauge_are_noops_when_disabled(self):
        telemetry.count("nothing", 1)
        telemetry.gauge("nothing", 2.0)

    def test_null_span_is_shared(self):
        with telemetry.trace("a") as s1:
            pass
        with telemetry.trace("b") as s2:
            pass
        assert s1 is s2


class TestSpans:
    def test_span_records_emitted_to_sink(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        with telemetry.trace("outer", device="X") as span:
            span.count("things", 2)
            with telemetry.trace("inner"):
                telemetry.count("things", 3)
        spans = sink.records(type="span")
        assert [s["name"] for s in spans] == ["inner", "outer"]
        outer = spans[1]
        assert outer["attrs"]["device"] == "X"
        assert outer["status"] == "ok"
        assert outer["dur_ms"] >= 0
        assert outer["parent_id"] is None
        assert spans[0]["parent_id"] == outer["span_id"]

    def test_child_counters_fold_into_parent(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        with telemetry.trace("outer"):
            with telemetry.trace("inner"):
                telemetry.count("ecc.corrections", 5)
            telemetry.count("ecc.corrections", 1)
        outer = sink.records(type="span", name="outer")[0]
        assert outer["counters"]["ecc.corrections"] == 6

    def test_counter_records_emitted_once_per_count_call(self):
        # Summaries rely on this: folding into parents must not create
        # duplicate counter records.
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        with telemetry.trace("outer"):
            with telemetry.trace("inner"):
                telemetry.count("k", 5)
        counters = sink.records(type="counter", name="k")
        assert len(counters) == 1
        assert counters[0]["value"] == 5

    def test_error_status_on_exception(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        with pytest.raises(ValueError):
            with telemetry.trace("boom"):
                raise ValueError("no")
        assert sink.records(type="span", name="boom")[0]["status"] == "error"

    def test_forced_span_collects_without_sinks(self):
        with telemetry.trace("forced", force=True) as span:
            assert telemetry.active()
            telemetry.count("k", 7)
        assert span.counters["k"] == 7
        assert not telemetry.active()

    def test_gauge_sets_span_attr(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        with telemetry.trace("g"):
            telemetry.gauge("level", 0.5)
        assert sink.records(type="span", name="g")[0]["attrs"]["level"] == 0.5
        assert sink.records(type="gauge", name="level")[0]["value"] == 0.5

    def test_numpy_and_bytes_attrs_become_jsonable(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        with telemetry.trace(
            "np",
            scalar=np.float64(1.5),
            arr=np.arange(3, dtype=np.uint8),
            blob=b"\x01\x02",
        ):
            pass
        record = sink.records(type="span", name="np")[0]
        json.dumps(record)  # must not raise
        assert record["attrs"]["scalar"] == 1.5
        assert record["attrs"]["arr"] == [0, 1, 2]
        assert record["attrs"]["blob"] == "0102"


class TestSinks:
    def test_ring_buffer_capacity(self):
        sink = RingBufferSink(capacity=3)
        telemetry.add_sink(sink)
        for i in range(5):
            with telemetry.trace(f"s{i}"):
                pass
        assert len(sink) == 3
        assert [r["name"] for r in sink.records()] == ["s2", "s3", "s4"]
        sink.clear()
        assert len(sink) == 0

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        telemetry.add_sink(sink)
        with telemetry.trace("one", k=1):
            telemetry.count("c", 2)
        telemetry.remove_sink(sink)
        sink.close()
        records = load_records(path)
        assert {r["type"] for r in records} == {"span", "counter"}
        assert records[-1]["name"] == "one"

    def test_console_sink_renders_lines(self):
        stream = io.StringIO()
        sink = ConsoleSink(stream)
        telemetry.add_sink(sink)
        with telemetry.trace("shown", device="X"):
            telemetry.count("n", 2)
        text = stream.getvalue()
        assert "[span] shown" in text
        assert "device=X" in text
        assert "[counter] n = 2" in text

    def test_remove_sink_disables(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        assert telemetry.enabled()
        telemetry.remove_sink(sink)
        assert not telemetry.enabled()
        with telemetry.trace("after"):
            pass
        assert len(sink) == 0


class TestSummary:
    def test_summarize_totals_and_spans(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        for _ in range(3):
            with telemetry.trace("board.capture"):
                telemetry.count("board.captures", 5)
        text = summarize(sink.records())
        assert "board.capture" in text
        assert "board.captures" in text
        assert "15" in text  # 3 bursts x 5 captures

    def test_summarize_empty(self):
        assert "0 records" in summarize([])
