"""Trace-context propagation: ids, headers, tasks and threads."""

from __future__ import annotations

import asyncio
import threading

from repro import telemetry
from repro.telemetry import RingBufferSink
from repro.telemetry import context as trace_ctx
from repro.telemetry.context import (
    TraceContext,
    from_traceparent,
    new_trace_id,
    to_traceparent,
    trace_context,
    valid_trace_id,
)


class TestTraceIds:
    def test_new_trace_id_is_32_hex(self):
        tid = new_trace_id()
        assert valid_trace_id(tid)
        assert len(tid) == 32

    def test_valid_trace_id_rejects_garbage(self):
        assert not valid_trace_id(None)
        assert not valid_trace_id(123)
        assert not valid_trace_id("short")
        assert not valid_trace_id("Z" * 32)


class TestTraceparent:
    def test_roundtrip(self):
        tid = new_trace_id()
        ctx = TraceContext(tid, span_id=0xBEEF)
        parsed = from_traceparent(to_traceparent(ctx))
        assert parsed == ctx

    def test_roundtrip_without_span(self):
        tid = new_trace_id()
        header = to_traceparent(TraceContext(tid))
        parsed = from_traceparent(header)
        # span id 0 encodes "no parent hint" and parses back to None.
        assert parsed == TraceContext(tid, span_id=None)

    def test_ambient_context_renders(self):
        assert to_traceparent() is None
        with trace_context("ab" * 16, 7):
            header = to_traceparent()
        assert header == f"00-{'ab' * 16}-{7:016x}-01"

    def test_malformed_headers_treated_as_absent(self):
        for header in (
            None,
            "",
            "garbage",
            "00-short-0000000000000001-01",
            "00-" + "g" * 32 + "-0000000000000001-01",  # non-hex
            "ff",  # truncated
            "00-" + "a" * 32 + "-" + "b" * 15 + "-01",  # short span
        ):
            assert from_traceparent(header) is None

    def test_header_case_and_whitespace_tolerated(self):
        tid = "AB" * 16
        header = f"  00-{tid}-000000000000BEEF-01  "
        parsed = from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == tid.lower()
        assert parsed.span_id == 0xBEEF


class TestTraceContextManager:
    def test_outside_any_context(self):
        assert trace_ctx.current() is None
        assert trace_ctx.current_trace_id() is None

    def test_mints_when_no_ambient(self):
        with trace_context() as ctx:
            assert valid_trace_id(ctx.trace_id)
            assert trace_ctx.current_trace_id() == ctx.trace_id
        assert trace_ctx.current() is None

    def test_inherits_ambient(self):
        with trace_context("cd" * 16) as outer:
            with trace_context() as inner:
                assert inner is outer

    def test_explicit_id_reenters_that_trace(self):
        with trace_context("cd" * 16):
            with trace_context("ef" * 16, 42) as inner:
                assert inner.trace_id == "ef" * 16
                assert inner.span_id == 42
            # The outer context is restored on exit.
            assert trace_ctx.current_trace_id() == "cd" * 16

    def test_inherit_false_forces_fresh_trace(self):
        with trace_context("cd" * 16):
            with trace_context(inherit=False) as inner:
                assert inner.trace_id != "cd" * 16
                assert valid_trace_id(inner.trace_id)


class TestSpanTraceIds:
    def test_root_span_mints_a_trace(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        with telemetry.trace("root"):
            with telemetry.trace("child"):
                pass
        child, root = sink.records(type="span")
        assert valid_trace_id(root["trace_id"])
        assert child["trace_id"] == root["trace_id"]
        assert child["parent_id"] == root["span_id"]

    def test_root_span_joins_ambient_context(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        with trace_context("ab" * 16, 99):
            with telemetry.trace("root"):
                pass
        (span,) = sink.records(type="span")
        assert span["trace_id"] == "ab" * 16
        # The carried span id becomes the root's parent — how a server
        # span parents under the client's request span across HTTP.
        assert span["parent_id"] == 99

    def test_counters_carry_the_trace_id(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        with trace_context("ab" * 16):
            telemetry.count("loose", 1)
        (counter,) = sink.records(type="counter")
        assert counter["trace_id"] == "ab" * 16

    def test_null_span_mirrors_span_identity_fields(self):
        # Telemetry disabled: call sites like
        # ``job.trace_id = span.trace_id or ...`` must not need guards.
        with telemetry.trace("x") as span:
            assert span.trace_id is None
            assert span.span_id is None
            assert span.parent_id is None


class TestAsyncioIsolation:
    def test_interleaved_tasks_keep_their_own_lineage(self):
        # Regression: with a thread-local stack, two tasks sharing the
        # event-loop thread interleaved spans under each other's parents.
        sink = RingBufferSink()
        telemetry.add_sink(sink)

        async def request(name):
            with telemetry.trace(f"{name}.outer"):
                await asyncio.sleep(0)  # force an interleave point
                with telemetry.trace(f"{name}.inner"):
                    await asyncio.sleep(0)

        async def main():
            await asyncio.gather(request("a"), request("b"))

        asyncio.run(main())
        spans = {s["name"]: s for s in sink.records(type="span")}
        for name in ("a", "b"):
            outer, inner = spans[f"{name}.outer"], spans[f"{name}.inner"]
            assert inner["parent_id"] == outer["span_id"]
            assert inner["trace_id"] == outer["trace_id"]
            assert outer["parent_id"] is None
        assert spans["a.outer"]["trace_id"] != spans["b.outer"]["trace_id"]

    def test_to_thread_inherits_context(self):
        sink = RingBufferSink()
        telemetry.add_sink(sink)

        async def main():
            with trace_context("ab" * 16):
                await asyncio.to_thread(lambda: telemetry.count("hop", 1))

        asyncio.run(main())
        (counter,) = sink.records(type="counter")
        assert counter["trace_id"] == "ab" * 16


class TestThreadIsolation:
    def test_plain_threads_do_not_inherit_spans(self):
        # Fleet encode threads must keep tracing independently — their
        # root spans start fresh traces, never parenting under whatever
        # span the spawning thread happened to be inside.
        sink = RingBufferSink()
        telemetry.add_sink(sink)
        seen = {}

        def worker():
            with telemetry.trace("thread.root") as span:
                seen["trace_id"] = span.trace_id
                seen["parent_id"] = span.parent_id

        with telemetry.trace("spawner") as outer:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["parent_id"] is None
        assert seen["trace_id"] != outer.trace_id
