"""One traced send+receive emits the full provenance record (ISSUE gate).

With a JSONL sink attached, a single protocol round trip must produce
spans for stress, capture, vote, decrypt and ECC decode, carrying
per-capture BER and ECC correction counts — and ``repro telemetry
summarize`` must render them.
"""

from __future__ import annotations

import numpy as np

from repro import ControlBoard, InvisibleBits, make_device, paper_end_to_end_scheme
from repro import telemetry
from repro.cli import main
from repro.telemetry import JsonlSink, load_records

KEY = b"0123456789abcdef"


def _traced_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    telemetry.add_sink(sink)
    try:
        device = make_device("MSP432P401", rng=7, sram_kib=2)
        board = ControlBoard(device)
        channel = InvisibleBits(
            board, scheme=paper_end_to_end_scheme(KEY), use_firmware=False
        )
        sent = channel.send(b"provenance check")
        result = channel.receive(expected_payload=sent.payload_bits)
    finally:
        telemetry.remove_sink(sink)
        sink.close()
    return path, result


def test_round_trip_emits_all_pipeline_spans(tmp_path):
    path, result = _traced_round_trip(tmp_path)
    records = load_records(path)
    span_names = {r["name"] for r in records if r["type"] == "span"}
    assert {
        "channel.send",
        "board.stage",
        "board.stress",
        "physics.stress",
        "channel.receive",
        "board.capture",
        "channel.vote",
        "channel.decrypt",
        "channel.ecc_decode",
    } <= span_names

    receive = next(
        r for r in records if r["type"] == "span" and r["name"] == "channel.receive"
    )
    attrs = receive["attrs"]
    assert attrs["device"] == "MSP432P401"
    assert attrs["n_captures"] == 5
    assert len(attrs["per_capture_ber"]) == 5
    assert all(0.0 <= b <= 1.0 for b in attrs["per_capture_ber"])
    assert sum(attrs["vote_margin_hist"]) == 2 * 8192  # every bit counted
    assert attrs["ecc_corrections"] >= 0
    # The nested decode's counters folded up into the receive span.
    assert receive["counters"]["board.captures"] == 5
    assert any(k.endswith(".corrections") for k in receive["counters"])

    send = next(
        r for r in records if r["type"] == "span" and r["name"] == "channel.send"
    )
    assert send["attrs"]["stress_hours"] > 0
    assert send["attrs"]["recipe"]["vdd_stress"] > 0
    assert send["attrs"]["scheme"]["ecc"].startswith("hamming")

    # The in-process provenance mirrors the trace.
    assert result.ecc_corrections == attrs["ecc_corrections"]
    assert list(result.per_capture_error_vs) == attrs["per_capture_ber"]


def test_cli_summarize_renders_trace(tmp_path, capsys):
    path, _ = _traced_round_trip(tmp_path)
    assert main(["telemetry", "summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "channel.receive" in out
    assert "board.capture" in out
    assert "per_capture_ber" in out
    assert "corrections" in out


def test_cli_summarize_missing_file(tmp_path, capsys):
    assert main(["telemetry", "summarize", str(tmp_path / "nope.jsonl")]) == 2


def test_cli_trace_option_writes_jsonl(tmp_path, capsys):
    path = tmp_path / "cli.jsonl"
    code = main([
        "--trace", str(path),
        "roundtrip", "--sram-kib", "1", "--fast", "--message", "hi",
    ])
    assert code == 0
    names = {r["name"] for r in load_records(path) if r["type"] == "span"}
    assert {"channel.send", "channel.receive", "board.capture"} <= names
    # The sink detaches with the command: nothing else appends afterwards.
    assert not telemetry.enabled()


def test_provenance_without_sink(small_board):
    """force=True spans give DecodeResult its provenance sink-free."""
    channel = InvisibleBits(
        small_board, scheme=paper_end_to_end_scheme(KEY), use_firmware=False
    )
    sent = channel.send(b"quiet")
    result = channel.receive(expected_payload=sent.payload_bits)
    assert result.ecc_corrections is not None and result.ecc_corrections >= 0
    assert len(result.per_capture_flip_rate) == 5
    assert sum(result.vote_margin_hist) == small_board.device.sram.n_bits
    assert result.captures.shape == (5, small_board.device.sram.n_bits)
    prov = result.provenance()
    assert prov["ecc_corrections"] == result.ecc_corrections
    assert prov["raw_error_vs"] == result.raw_error_vs
    assert not telemetry.enabled()
