"""Trace querying (``repro trace``) and summary percentiles."""

from __future__ import annotations

import pytest

from repro.telemetry import percentile, summarize
from repro.telemetry.traceview import (
    critical_path,
    group_traces,
    render_critical_path,
    render_search,
    render_tree,
    resolve_trace_id,
    search_traces,
    summarize_trace,
)

T1 = "a1" * 16
T2 = "b2" * 16


def _span(name, *, trace, span_id, parent=None, ts=0.0, dur=1.0, status="ok",
          counters=None):
    return {
        "type": "span",
        "name": name,
        "ts": ts,
        "dur_ms": dur,
        "status": status,
        "span_id": span_id,
        "parent_id": parent,
        "trace_id": trace,
        "attrs": {},
        "counters": counters or {},
    }


@pytest.fixture
def fixture_records():
    """Two traces: a 4-span request tree and a later, slower errored one."""
    return [
        # trace 1: root(10ms) -> submit(8ms) -> {capture(5ms), journal(1ms)}
        _span("service.request", trace=T1, span_id=1, ts=100.0, dur=10.0),
        _span("service.submit", trace=T1, span_id=2, parent=1, ts=100.1, dur=8.0),
        _span("lane.capture", trace=T1, span_id=3, parent=2, ts=100.2, dur=5.0,
              counters={"captures": 3}),
        _span("service.journal", trace=T1, span_id=4, parent=2, ts=100.3, dur=1.0),
        # trace 2: a slower, failed request
        _span("service.request", trace=T2, span_id=5, ts=200.0, dur=50.0,
              status="error"),
        _span("service.submit", trace=T2, span_id=6, parent=5, ts=200.1, dur=45.0,
              status="error"),
        # noise the grouper must skip
        {"type": "counter", "name": "loose", "value": 1, "trace_id": T1},
        _span("legacy.span", trace=None, span_id=7),
    ]


class TestGrouping:
    def test_groups_by_trace_skipping_untraced(self, fixture_records):
        traces = group_traces(fixture_records)
        assert set(traces) == {T1, T2}
        assert len(traces[T1]) == 4
        assert len(traces[T2]) == 2

    def test_summary_of_a_tree(self, fixture_records):
        summary = summarize_trace(T1, group_traces(fixture_records)[T1])
        assert summary.spans == 4
        assert summary.roots == 1
        assert summary.root_name == "service.request"
        assert summary.duration_ms == 10.0
        assert summary.status == "ok"
        assert summary.complete

    def test_missing_parent_is_still_a_local_root(self):
        # A server-side tree whose client spans live in another file:
        # the top server span is the local root, the trace still renders.
        orphan = _span("service.request", trace=T1, span_id=9, parent=999)
        summary = summarize_trace(T1, [orphan])
        assert summary.complete
        assert summary.root_name == "service.request"

    def test_parent_cycle_is_incomplete(self):
        looped = [
            _span("a", trace=T1, span_id=8, parent=9),
            _span("b", trace=T1, span_id=9, parent=8),
        ]
        summary = summarize_trace(T1, looped)
        assert not summary.complete


class TestSearch:
    def test_ordered_by_start_time(self, fixture_records):
        out = search_traces(fixture_records)
        assert [s.trace_id for s in out] == [T1, T2]

    def test_filters(self, fixture_records):
        assert [s.trace_id for s in search_traces(fixture_records, status="error")] == [T2]
        assert [s.trace_id for s in search_traces(fixture_records, min_dur_ms=20)] == [T2]
        assert [s.trace_id for s in search_traces(fixture_records, name="lane.capture")] == [T1]
        assert [s.trace_id for s in search_traces(fixture_records, trace_id=T1[:8])] == [T1]

    def test_limit_keeps_slowest(self, fixture_records):
        out = search_traces(fixture_records, limit=1)
        assert [s.trace_id for s in out] == [T2]

    def test_render(self, fixture_records):
        text = render_search(search_traces(fixture_records))
        assert "2 trace(s)" in text
        assert T1 in text and T2 in text
        assert "service.request" in text
        assert render_search([]) == "no traces matched"

    def test_resolve_prefix(self, fixture_records):
        assert resolve_trace_id(fixture_records, T1[:6]) == T1
        with pytest.raises(ValueError):
            resolve_trace_id(fixture_records, "ffff")
        # Ambiguous prefix: both ids share no prefix here, so fabricate.
        records = [
            _span("x", trace="cc" * 16, span_id=1),
            _span("y", trace="cc" * 15 + "dd", span_id=2),
        ]
        with pytest.raises(ValueError):
            resolve_trace_id(records, "cccc")


class TestTreeAndCriticalPath:
    def test_tree_renders_nested(self, fixture_records):
        text = render_tree(fixture_records, T1[:8])
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {T1}: 4 span(s)")
        assert lines[1].startswith("service.request")
        assert lines[2].startswith("  service.submit")
        # Children indent under their parent, siblings in ts order.
        assert lines[3].startswith("    lane.capture")
        assert "(captures=3)" in lines[3]
        assert lines[4].startswith("    service.journal")

    def test_error_status_marked(self, fixture_records):
        text = render_tree(fixture_records, T2)
        assert "[error]" in text

    def test_critical_path_descends_heaviest_child(self, fixture_records):
        path = critical_path(group_traces(fixture_records)[T1])
        names = [span["name"] for span, _ in path]
        assert names == ["service.request", "service.submit", "lane.capture"]
        # Self-times: 10-8=2, 8-5=3, then the leaf keeps its full 5.
        selfs = [self_ms for _, self_ms in path]
        assert selfs == [2.0, 3.0, 5.0]

    def test_render_single_and_aggregate(self, fixture_records):
        single = render_critical_path(fixture_records, T1[:4])
        assert single.startswith(f"critical path of trace {T1}")
        assert "lane.capture" in single
        aggregate = render_critical_path(fixture_records)
        assert aggregate.startswith("aggregate critical path over 2 trace(s)")
        assert "service.submit" in aggregate
        assert render_critical_path([]) == "no traces found"


class TestPercentiles:
    def test_interpolation_matches_numpy(self):
        import numpy as np

        values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        for q in (0, 25, 50, 75, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_edges(self):
        assert percentile([4.0], 99) == 4.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summarize_reports_percentiles(self, fixture_records):
        # Satellite: `repro telemetry summarize` shows p50/p95/p99 per
        # span name over the fixture trace.
        text = summarize(fixture_records)
        assert "p50 ms" in text and "p95 ms" in text and "p99 ms" in text
        row = next(
            line for line in text.splitlines()
            if line.strip().startswith("service.request")
        )
        # Two service.request spans of 10ms and 50ms: p50 = 30ms.
        assert "30.00" in row
