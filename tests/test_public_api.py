"""The public surface: the Quickstart runs verbatim, __all__ is honest."""

from __future__ import annotations

import contextlib
import io
import textwrap

import repro


def _quickstart_source() -> str:
    """Extract the literal Quickstart code block from repro.__doc__."""
    doc = repro.__doc__
    assert "Quickstart::" in doc
    block = doc.split("Quickstart::", 1)[1]
    lines = []
    for line in block.splitlines()[1:]:
        if line.strip() and not line.startswith("    "):
            break  # first unindented line ends the literal block
        lines.append(line)
    code = textwrap.dedent("\n".join(lines)).strip()
    assert code, "Quickstart block is empty"
    return code


def test_quickstart_runs_verbatim():
    code = _quickstart_source()
    assert "scheme=" in code  # the documented API is the scheme API
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        exec(compile(code, "<repro-quickstart>", "exec"), {})
    assert "meet at the dead drop at dawn" in stdout.getvalue()


def test_all_names_are_importable():
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert missing == []


def test_star_import_matches_all():
    namespace: dict = {}
    exec("from repro import *", namespace)
    imported = {name for name in namespace if name != "__builtins__"}
    assert imported == set(repro.__all__)


def test_all_is_sorted_and_unique():
    assert len(repro.__all__) == len(set(repro.__all__))
    assert list(repro.__all__) == sorted(repro.__all__)


def test_new_api_exported():
    from repro import Captures, CodingScheme, paper_end_to_end_scheme, telemetry

    assert CodingScheme is repro.core.scheme.CodingScheme
    assert callable(paper_end_to_end_scheme)
    assert hasattr(telemetry, "trace") and hasattr(telemetry, "add_sink")
    assert Captures is not None
