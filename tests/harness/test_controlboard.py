"""Integration tests for the control-board automation (Algorithms 1 & 2)."""

import numpy as np
import pytest

from repro.bitutils import bit_error_rate, invert_bits
from repro.device import make_device
from repro.errors import CapacityError, ConfigurationError, DeviceError
from repro.harness import ControlBoard


@pytest.fixture
def board():
    return ControlBoard(make_device("MSP432P401", rng=21, sram_kib=2))


@pytest.fixture
def payload(board, random_payload):
    return random_payload(board.device.sram.n_bits, seed=9)


class TestStagePayload:
    def test_debugger_path(self, board, payload):
        board.stage_payload(payload, use_firmware=False)
        assert np.array_equal(board.debug.read_sram_bits(), payload)

    def test_firmware_path(self, board, payload):
        board.stage_payload(payload, use_firmware=True)
        assert np.array_equal(board.debug.read_sram_bits(), payload)
        assert board.device.cpu.spinning

    def test_wrong_size_rejected(self, board):
        with pytest.raises(CapacityError):
            board.stage_payload(np.ones(16, dtype=np.uint8))


class TestEncodeDecode:
    def test_full_recipe_hits_table4_error(self, board, payload):
        board.encode_message(payload, use_firmware=False, camouflage=False)
        state = board.majority_power_on_state(5)
        err = bit_error_rate(payload, invert_bits(state))
        assert err == pytest.approx(0.065, abs=0.012)

    def test_encode_requires_staged_payload(self, board):
        with pytest.raises(DeviceError):
            board.encode(stress_hours=1.0)

    def test_captures_shape(self, board, payload):
        board.stage_payload(payload, use_firmware=False)
        board.power_off()
        samples = board.capture_power_on_states(3)
        assert samples.shape == (3, board.device.sram.n_bits)

    def test_even_votes_rejected(self, board):
        with pytest.raises(ConfigurationError):
            board.majority_power_on_state(4)

    @pytest.mark.parametrize("bad_n", [0, -1, -5])
    def test_capture_count_must_be_positive(self, board, bad_n):
        with pytest.raises(ConfigurationError, match="at least one capture"):
            board.capture_power_on_states(bad_n)

    @pytest.mark.parametrize("bad_n", [2.0, "5", None, True])
    def test_capture_count_must_be_an_integer(self, board, bad_n):
        with pytest.raises(ConfigurationError, match="must be an integer"):
            board.capture_power_on_states(bad_n)

    def test_numpy_integer_capture_count_accepted(self, board, payload):
        board.stage_payload(payload, use_firmware=False)
        board.power_off()
        samples = board.capture_power_on_states(np.int64(3))
        assert samples.shape == (3, board.device.sram.n_bits)

    def test_camouflage_reload(self, board, payload):
        board.encode_message(payload, use_firmware=False, camouflage=True)
        # Flash now holds the camouflage app, not the payload writer.
        board.power_on_nominal()
        flash = board.debug.read_flash(0, 64)
        assert flash != b"\xff" * 64
        board.power_off()
        # And the analog message is still there.
        state = board.majority_power_on_state(5)
        err = bit_error_rate(payload, invert_bits(state))
        assert err < 0.09


class TestFunctionalInspection:
    def test_encoded_device_passes_every_check(self, board, payload):
        """Digital-domain plausible deniability: the inspector's functional
        checks all pass on a device carrying a message."""
        board.encode_message(payload, use_firmware=False, camouflage=True)
        report = board.verify_device_functionality()
        assert report["functional"]
        assert report["boots"] and report["cpu_runs"]
        assert report["sram_read_write"] and report["firmware_present"]

    def test_inspection_does_not_damage_the_message(self, board, payload):
        board.encode_message(payload, use_firmware=False, camouflage=True)
        board.verify_device_functionality()
        state = board.majority_power_on_state(5)
        err = bit_error_rate(payload, invert_bits(state))
        assert err < 0.09


class TestRegulatedTarget:
    def test_bcm2837_encode_applies_bypass(self, random_payload):
        board = ControlBoard(make_device("BCM2837", rng=8, sram_kib=1))
        payload = random_payload(board.device.sram.n_bits, seed=2)
        board.encode_message(payload, use_firmware=False, camouflage=False)
        assert board.device.regulator.bypassed
        state = board.majority_power_on_state(5)
        err = bit_error_rate(payload, invert_bits(state))
        assert err == pytest.approx(0.208, abs=0.02)
