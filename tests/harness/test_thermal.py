"""Unit tests for the thermal chamber."""

import pytest

from repro.device import make_device
from repro.errors import ConfigurationError
from repro.harness.thermal import ThermalChamber
from repro.units import celsius_to_kelvin


@pytest.fixture
def chamber():
    return ThermalChamber()


def test_setpoint_range_enforced(chamber):
    chamber.set_temperature(85.0)
    assert chamber.temperature_c == pytest.approx(85.0)
    with pytest.raises(ConfigurationError):
        chamber.set_temperature(200.0)
    with pytest.raises(ConfigurationError):
        chamber.set_temperature(-100.0)


def test_inserted_device_tracks_setpoint(chamber):
    device = make_device("MSP432P401", rng=0, sram_kib=1)
    chamber.insert(device)
    chamber.set_temperature(85.0)
    assert device.sram.temp_k == pytest.approx(celsius_to_kelvin(85.0))


def test_removed_device_returns_to_ambient(chamber):
    device = make_device("MSP432P401", rng=0, sram_kib=1)
    chamber.insert(device)
    chamber.set_temperature(85.0)
    chamber.remove(device)
    assert device.sram.temp_k == pytest.approx(chamber.ambient_k)


def test_insertion_applies_current_setpoint(chamber):
    chamber.set_temperature(60.0)
    device = make_device("MSP432P401", rng=0, sram_kib=1)
    chamber.insert(device)
    assert device.sram.temp_k == pytest.approx(celsius_to_kelvin(60.0))


def test_double_insert_rejected(chamber):
    device = make_device("MSP432P401", rng=0, sram_kib=1)
    chamber.insert(device)
    with pytest.raises(ConfigurationError):
        chamber.insert(device)


def test_remove_absent_rejected(chamber):
    device = make_device("MSP432P401", rng=0, sram_kib=1)
    with pytest.raises(ConfigurationError):
        chamber.remove(device)


def test_empty_range_rejected():
    with pytest.raises(ConfigurationError):
        ThermalChamber(min_c=50.0, max_c=50.0)
