"""Unit tests for the bench power supply."""

import pytest

from repro.device import make_device
from repro.errors import ConfigurationError, PowerError
from repro.harness.power import PowerSupply


@pytest.fixture
def rig():
    supply = PowerSupply()
    device = make_device("MSP432P401", rng=0, sram_kib=1)
    supply.connect(device)
    return supply, device


def test_on_off_cycle(rig):
    supply, device = rig
    supply.set_voltage(1.2)
    state = supply.on()
    assert device.powered
    assert state.shape == (device.sram.n_bits,)
    supply.off()
    assert not device.powered


def test_live_voltage_change_reaches_device(rig):
    supply, device = rig
    supply.set_voltage(1.2)
    supply.on()
    supply.set_voltage(3.3)
    assert device.core_voltage == pytest.approx(3.3)


def test_output_requires_voltage(rig):
    supply, _ = rig
    with pytest.raises(PowerError):
        supply.on()


def test_double_on_rejected(rig):
    supply, _ = rig
    supply.set_voltage(1.2)
    supply.on()
    with pytest.raises(PowerError):
        supply.on()


def test_voltage_range_enforced(rig):
    supply, _ = rig
    with pytest.raises(ConfigurationError):
        supply.set_voltage(99.0)
    with pytest.raises(ConfigurationError):
        supply.set_voltage(0.0)


def test_single_device_connection():
    supply = PowerSupply()
    a = make_device("MSP432P401", rng=0, sram_kib=1)
    b = make_device("MSP432P401", rng=1, sram_kib=1)
    supply.connect(a)
    with pytest.raises(PowerError):
        supply.connect(b)
    supply.disconnect()
    supply.connect(b)


def test_disconnect_powers_down():
    supply = PowerSupply()
    device = make_device("MSP432P401", rng=0, sram_kib=1)
    supply.connect(device)
    supply.set_voltage(1.2)
    supply.on()
    supply.disconnect()
    assert not device.powered
