"""Unit tests for the encoding rack (§5.3's parallel encoding)."""

import numpy as np
import pytest

from repro.device import make_device
from repro.errors import ConfigurationError
from repro.harness.rack import EncodingRack


@pytest.fixture
def rack():
    devices = [
        make_device("MSP432P401", rng=70 + i, sram_kib=1) for i in range(3)
    ]
    return EncodingRack(devices)


@pytest.fixture
def payloads(rack):
    rng = np.random.default_rng(5)
    return [
        rng.integers(0, 2, board.device.sram.n_bits).astype(np.uint8)
        for board in rack.boards
    ]


def test_shared_chamber(rack):
    assert len({id(board.chamber) for board in rack.boards}) == 1
    rack.chamber.set_temperature(60.0)
    for board in rack.boards:
        assert board.device.sram.temp_k == pytest.approx(333.15)
    rack.chamber.set_temperature(25.0)


def test_parallel_encode_matches_recipe_error(rack, payloads):
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=10.0)
    errors = rack.measure_errors(payloads)
    assert len(errors) == 3
    for error in errors:
        assert error == pytest.approx(0.065, abs=0.02)


def test_constant_time_property(rack, payloads):
    """§5.3/abstract: one stress period encodes the whole tray — encoding
    time is independent of how many devices share the chamber."""
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=4.0)
    errors = rack.measure_errors(payloads)
    spread = max(errors) - min(errors)
    assert spread < 0.05  # all slots saw the same stress


def test_stage_before_stress_enforced(rack):
    with pytest.raises(ConfigurationError):
        rack.stress_all(stress_hours=1.0)


def test_payload_count_validated(rack, payloads):
    with pytest.raises(ConfigurationError):
        rack.stage_payloads(payloads[:-1])
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=2.0)
    with pytest.raises(ConfigurationError):
        rack.measure_errors(payloads[:-1])


def test_empty_rack_rejected():
    with pytest.raises(ConfigurationError):
        EncodingRack([])


def _run_rack(max_workers):
    devices = [
        make_device("MSP432P401", rng=70 + i, sram_kib=1) for i in range(3)
    ]
    rack = EncodingRack(devices, max_workers=max_workers)
    rng = np.random.default_rng(5)
    payloads = [
        rng.integers(0, 2, board.device.sram.n_bits).astype(np.uint8)
        for board in rack.boards
    ]
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=4.0)
    return rack.measure_errors(payloads)


def test_worker_count_does_not_change_results():
    """Slots own their devices and RNG streams, so any pool width must
    produce identical measurements."""
    assert _run_rack(1) == _run_rack(4)


def test_max_workers_validated():
    devices = [make_device("MSP432P401", rng=70, sram_kib=1)]
    with pytest.raises(ConfigurationError):
        EncodingRack(devices, max_workers=0)
