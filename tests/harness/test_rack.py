"""Unit tests for the encoding rack (§5.3's parallel encoding)."""

import numpy as np
import pytest

from repro.device import make_device
from repro.errors import ConfigurationError
from repro.harness.rack import EncodingRack


@pytest.fixture
def rack():
    devices = [
        make_device("MSP432P401", rng=70 + i, sram_kib=1) for i in range(3)
    ]
    return EncodingRack(devices)


@pytest.fixture
def payloads(rack):
    rng = np.random.default_rng(5)
    return [
        rng.integers(0, 2, board.device.sram.n_bits).astype(np.uint8)
        for board in rack.boards
    ]


def test_shared_chamber(rack):
    assert len({id(board.chamber) for board in rack.boards}) == 1
    rack.chamber.set_temperature(60.0)
    for board in rack.boards:
        assert board.device.sram.temp_k == pytest.approx(333.15)
    rack.chamber.set_temperature(25.0)


def test_parallel_encode_matches_recipe_error(rack, payloads):
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=10.0)
    errors = rack.measure_errors(payloads)
    assert len(errors) == 3
    for error in errors:
        assert error == pytest.approx(0.065, abs=0.02)


def test_constant_time_property(rack, payloads):
    """§5.3/abstract: one stress period encodes the whole tray — encoding
    time is independent of how many devices share the chamber."""
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=4.0)
    errors = rack.measure_errors(payloads)
    spread = max(errors) - min(errors)
    assert spread < 0.05  # all slots saw the same stress


def test_stage_before_stress_enforced(rack):
    with pytest.raises(ConfigurationError):
        rack.stress_all(stress_hours=1.0)


def test_payload_count_validated(rack, payloads):
    with pytest.raises(ConfigurationError):
        rack.stage_payloads(payloads[:-1])
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=2.0)
    with pytest.raises(ConfigurationError):
        rack.measure_errors(payloads[:-1])


def test_empty_rack_rejected():
    with pytest.raises(ConfigurationError):
        EncodingRack([])


def _run_rack(max_workers):
    devices = [
        make_device("MSP432P401", rng=70 + i, sram_kib=1) for i in range(3)
    ]
    rack = EncodingRack(devices, max_workers=max_workers)
    rng = np.random.default_rng(5)
    payloads = [
        rng.integers(0, 2, board.device.sram.n_bits).astype(np.uint8)
        for board in rack.boards
    ]
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=4.0)
    return rack.measure_errors(payloads)


def test_worker_count_does_not_change_results():
    """Slots own their devices and RNG streams, so any pool width must
    produce identical measurements."""
    assert _run_rack(1) == _run_rack(4)


def test_max_workers_validated():
    devices = [make_device("MSP432P401", rng=70, sram_kib=1)]
    with pytest.raises(ConfigurationError):
        EncodingRack(devices, max_workers=0)


@pytest.mark.parametrize("n_voltages", [2, 4])
def test_vdd_per_board_length_validated_before_heating(
    rack, payloads, n_voltages
):
    """An undersized or oversized ``vdd_per_board`` must be rejected as a
    ConfigurationError *before* the chamber is set to the stress
    temperature (the regression was a raw IndexError with the tray
    already at 85 C)."""
    rack.stage_payloads(payloads)
    setpoint = rack.chamber.setpoint_k
    with pytest.raises(ConfigurationError):
        rack.stress_all(stress_hours=1.0, vdd_per_board=[3.0] * n_voltages)
    assert rack.chamber.setpoint_k == setpoint  # chamber untouched


def test_stress_advance_touches_live_slots_only(rack, payloads):
    """With ``skip_unpowered=True`` the time-advance fan-out must call
    only the powered slots — dead slots used to be mapped and silently
    no-opped through an O(n^2) membership scan."""
    rack.stage_payloads(payloads)
    rack.boards[1].power_off()
    advanced = []
    for index, board in enumerate(rack.boards):
        original = board.device.advance

        def advance(seconds, *, _index=index, _original=original):
            advanced.append(_index)
            return _original(seconds)

        board.device.advance = advance
    rack.stress_all(stress_hours=1.0, skip_unpowered=True)
    assert sorted(advanced) == [0, 2]


def test_pool_width_capped_by_call_count():
    devices = [
        make_device("MSP432P401", rng=70 + i, sram_kib=1) for i in range(2)
    ]
    rack = EncodingRack(devices, max_workers=16)
    assert rack._pool_width(2) == 2
    assert rack._pool_width(1) == 1
    assert rack._pool_width(40) == 16
    unbounded = EncodingRack(devices)
    assert unbounded._pool_width(1) == 1
