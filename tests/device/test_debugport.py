"""Unit tests for the debug port."""

import numpy as np
import pytest

from repro.device import DebugPort, make_device
from repro.errors import DebugPortError
from repro.isa.programs import retention_program


@pytest.fixture
def target():
    device = make_device("MSP432P401", rng=5, sram_kib=1)
    device.load_firmware(retention_program())
    device.power_on()
    return device


def test_unpowered_target_is_dead():
    device = make_device("MSP432P401", rng=5, sram_kib=1)
    port = DebugPort(device)
    with pytest.raises(DebugPortError):
        port.read_sram()
    with pytest.raises(DebugPortError):
        port.halt()


def test_sram_byte_round_trip(target):
    port = DebugPort(target)
    port.write_sram(b"\xDE\xAD\xBE\xEF", offset=32)
    assert port.read_sram(32, 4) == b"\xDE\xAD\xBE\xEF"


def test_sram_bit_round_trip(target):
    port = DebugPort(target)
    bits = np.tile(np.array([1, 0], dtype=np.uint8), target.sram.n_bits // 2)
    port.write_sram_bits(bits)
    assert np.array_equal(port.read_sram_bits(), bits)


def test_read_flash_sees_firmware(target):
    port = DebugPort(target)
    image = port.read_flash(0, 8)
    assert image != b"\xff" * 8  # retention program is there


def test_halt_and_resume(target):
    port = DebugPort(target)
    port.halt()
    assert target.cpu.halted
    assert port.resume(100) == "spinning"


def test_registers_snapshot(target):
    port = DebugPort(target)
    regs = port.registers()
    assert len(regs) == 16
