"""Unit tests for the Device lifecycle."""

import numpy as np
import pytest

from repro.device import make_device
from repro.errors import FirmwareError, PowerError
from repro.isa.programs import payload_writer_program, retention_program
from repro.units import celsius_to_kelvin


@pytest.fixture
def device():
    return make_device("MSP432P401", rng=3, sram_kib=1)


class TestPower:
    def test_power_on_returns_state(self, device):
        state = device.power_on()
        assert state.shape == (device.sram.n_bits,)
        assert device.powered
        assert device.core_voltage == pytest.approx(1.2)

    def test_double_power_on_rejected(self, device):
        device.power_on()
        with pytest.raises(PowerError):
            device.power_on()

    def test_power_off(self, device):
        device.power_on()
        device.power_off()
        assert not device.powered
        assert device.core_voltage is None

    def test_power_off_unpowered_rejected(self, device):
        with pytest.raises(PowerError):
            device.power_off()

    def test_supply_elevation_reaches_core_on_bare_mcu(self, device):
        device.power_on()
        device.set_supply(3.3)
        assert device.core_voltage == pytest.approx(3.3)

    def test_supply_elevation_blocked_by_regulator(self):
        rpi = make_device("BCM2837", rng=4, sram_kib=1)
        rpi.power_on()  # 5 V rail, regulated to 1.2 V core
        assert rpi.core_voltage == pytest.approx(1.2)
        rpi.set_supply(2.2)
        assert rpi.core_voltage == pytest.approx(1.2)  # regulator wins
        rpi.regulator.bypass()
        rpi.set_supply(2.2)
        assert rpi.core_voltage == pytest.approx(2.2)  # §7.2 bypass


class TestFirmware:
    def test_boot_runs_firmware(self, device):
        payload = bytes(range(128))
        device.load_firmware(payload_writer_program(payload))
        device.power_on()
        assert device.cpu.spinning
        from repro.device.debugport import DebugPort

        assert DebugPort(device).read_sram(0, len(payload)) == payload

    def test_source_text_accepted(self, device):
        device.load_firmware(retention_program())
        device.power_on()
        assert device.cpu.spinning

    def test_reflash_requires_power_off(self, device):
        device.load_firmware(retention_program())
        device.power_on()
        with pytest.raises(PowerError):
            device.load_firmware(retention_program())

    def test_runaway_firmware_detected(self, device):
        runaway = "loop:\n  addi r1, r1, 1\n  beq r0, r0, next\nnext:\n  jmp loop\n"
        device.load_firmware(runaway)
        with pytest.raises(FirmwareError):
            device.power_on(max_steps=1000)

    def test_wrong_link_address_rejected(self, device):
        from repro.isa.assembler import assemble

        prog = assemble("nop\nhalt\n", base_address=0x1000)
        with pytest.raises(FirmwareError):
            device.load_firmware(prog)


class TestTime:
    def test_advance_powered_stresses(self, device):
        device.power_on()
        device.sram.fill(1)
        device.set_ambient(celsius_to_kelvin(85.0))
        device.set_supply(3.3)
        before = device.sram.offsets().mean()
        device.advance(3600.0 * 4)
        after = device.sram.offsets().mean()
        assert after < before  # all-1s stress biases power-on toward 0

    def test_advance_unpowered_shelves(self, device):
        device.power_on()
        device.power_off()
        device.advance(86400.0)  # must not raise

    def test_workload_requires_power(self, device):
        with pytest.raises(PowerError):
            device.run_workload(10.0)
