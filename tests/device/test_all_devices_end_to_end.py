"""Every Table 1 device carries a message end to end at its recipe.

The evaluation benches exercise the four fully characterised devices; this
test closes the loop on the other eight: plan an ECC from the device's
recipe error, send a message, get it back.
"""

import pytest

from repro.core.channel import ChannelModel
from repro.core.message import max_message_bytes
from repro.core.pipeline import InvisibleBits
from repro.core.planner import plan_scheme
from repro.device import make_device
from repro.device.catalog import all_device_specs
from repro.harness import ControlBoard

KEY = b"all-devices-16by"


@pytest.mark.parametrize(
    "name", [spec.name for spec in all_device_specs()]
)
def test_device_round_trip_at_recipe(name):
    from repro.device.catalog import device_spec

    import zlib

    kib = min(1.0, device_spec(name).sram_kib)
    # zlib.crc32, not hash(): str hashes are salted per process and would
    # make the test seeds non-deterministic across runs.
    device = make_device(name, rng=zlib.crc32(name.encode()), sram_kib=kib)
    board = ControlBoard(device)
    error = ChannelModel(device.spec).recipe_error()
    scheme = plan_scheme(error, 1e-5)
    # High-error channels (the cache-class BCM2837 at ~21%) need a stronger
    # frame header too: the 15-copy default starts failing above ~15%.
    from repro.core.message import FrameFormat

    frame = FrameFormat(header_copies=15 if error < 0.15 else 41)
    channel = InvisibleBits(
        board, key=KEY, ecc=scheme, frame=frame, use_firmware=False
    )

    budget = max_message_bytes(device.sram.n_bits, ecc=scheme, frame=frame)
    message = b"per-device proof " * 4
    message = message[: min(len(message), budget)]
    assert message, f"{name}: scheme leaves no capacity in a 1 KiB slice"

    channel.send(message)
    assert channel.receive().message == message, name
