"""Unit tests for supply regulation (§7.2)."""

import pytest

from repro.device.regulator import SupplyRegulator
from repro.errors import ConfigurationError, PowerError


@pytest.fixture
def regulated():
    return SupplyRegulator(regulated=True, output_v=1.2)


@pytest.fixture
def direct():
    return SupplyRegulator(regulated=False, output_v=1.8)


def test_unregulated_passes_through(direct):
    assert direct.core_voltage(3.3) == 3.3


def test_regulated_clamps_to_output(regulated):
    assert regulated.core_voltage(5.0) == pytest.approx(1.2)
    assert regulated.core_voltage(2.2) == pytest.approx(1.2)


def test_brownout_tracks_input_minus_dropout(regulated):
    assert regulated.core_voltage(1.0) == pytest.approx(0.8)
    assert regulated.core_voltage(0.1) == 0.0


def test_bypass_defeats_regulation(regulated):
    """The paper's inductor-pin trick: the core sees the raw rail."""
    regulated.bypass()
    assert regulated.core_voltage(2.2) == 2.2
    regulated.restore()
    assert regulated.core_voltage(2.2) == pytest.approx(1.2)


def test_input_rating_enforced(regulated):
    with pytest.raises(PowerError):
        regulated.core_voltage(20.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        SupplyRegulator(regulated=True, output_v=0.0)
    with pytest.raises(ConfigurationError):
        SupplyRegulator(regulated=True, output_v=1.2, dropout_v=-0.1)
    with pytest.raises(ConfigurationError):
        SupplyRegulator(regulated=True, output_v=7.0, input_abs_max_v=6.0)
    reg = SupplyRegulator(regulated=False, output_v=1.2)
    with pytest.raises(ConfigurationError):
        reg.core_voltage(-1.0)
