"""Unit tests for the Table 1 device catalog."""

import pytest

from repro.device.catalog import (
    TABLE4_DEVICES,
    all_device_specs,
    device_spec,
    make_device,
)
from repro.errors import ConfigurationError

#: The paper's Table 1, abridged to (name, sram KiB, flash KiB, manufacturer).
TABLE1 = [
    ("MSP430G2553", 0.5, 16, "Texas Instruments"),
    ("MSP432P401", 64, 256, "Texas Instruments"),
    ("EFM32WG990F256", 32, 256, "Silicon Labs"),
    ("ATSAML11E16A", 16, 64, "Microchip Technology"),
    ("M263KIAAE", 96, 512, "Nuvoton"),
    ("M2351SFSIAAP", 96, 512, "Nuvoton"),
    ("M252KG6AE", 32, 256, "Nuvoton"),
    ("M251SD2AE", 12, 64, "Nuvoton"),
    ("R7FS1JA783A01CFM", 32, 256, "Renesas Electronics"),
    ("STM32L562", 40, 256, "STMicroelectronics"),
    ("LPC55S69JBD100", 320, 640, "NXP Semiconductors"),
    ("BCM2837", 768, 0, "Broadcom"),
]


def test_all_twelve_table1_devices_present():
    assert len(all_device_specs()) == 12


@pytest.mark.parametrize("name,sram,flash,mfr", TABLE1)
def test_table1_rows(name, sram, flash, mfr):
    spec = device_spec(name)
    assert spec.sram_kib == sram
    assert spec.flash_kib == flash
    assert spec.manufacturer == mfr
    assert spec.power_on_state_access
    assert spec.accelerated_aging


@pytest.mark.parametrize(
    "name,vdd,temp,hours,bit_rate",
    [
        ("ATSAML11E16A", 4.8, 85.0, 16.0, 0.972),
        ("MSP432P401", 3.3, 85.0, 10.0, 0.935),
        ("LPC55S69JBD100", 5.5, 85.0, 24.0, 0.885),
        ("BCM2837", 2.2, 85.0, 120.0, 0.792),
    ],
)
def test_table4_recipes(name, vdd, temp, hours, bit_rate):
    recipe = device_spec(name).recipe
    assert recipe.vdd_stress == vdd
    assert recipe.temp_stress_c == temp
    assert recipe.stress_hours == hours
    assert recipe.bit_rate == bit_rate


def test_table4_devices_constant():
    assert set(TABLE4_DEVICES) <= {s.name for s in all_device_specs()}


def test_bcm2837_is_the_cache_device():
    spec = device_spec("BCM2837")
    assert "cache" in spec.sram_kind
    assert spec.has_regulator


def test_unknown_device_rejected():
    with pytest.raises(ConfigurationError):
        device_spec("Z80")


def test_make_device_size_override():
    dev = make_device("MSP432P401", rng=0, sram_kib=2)
    assert dev.sram.n_bytes == 2048


def test_make_device_rejects_oversize():
    with pytest.raises(ConfigurationError):
        make_device("ATSAML11E16A", rng=0, sram_kib=64)


def test_device_ids_are_unique():
    a = make_device("MSP432P401", rng=1, sram_kib=1)
    b = make_device("MSP432P401", rng=2, sram_kib=1)
    assert a.device_id != b.device_id


def test_serial_pins_device_id():
    a = make_device("MSP432P401", rng=1, sram_kib=1, serial=77)
    b = make_device("MSP432P401", rng=2, sram_kib=1, serial=77)
    assert a.device_id == b.device_id
