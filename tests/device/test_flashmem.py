"""Unit tests for on-chip Flash semantics."""

import pytest

from repro.errors import ConfigurationError, DeviceError, EmulatorError
from repro.device.flashmem import OnChipFlash


@pytest.fixture
def flash():
    return OnChipFlash(0, 16 * 1024, block_size=4096, endurance_cycles=5)


def test_erased_state_reads_ones(flash):
    assert flash.load_word(0) == 0xFFFF_FFFF


def test_program_clears_bits(flash):
    flash.erase_block(0)
    flash.program(b"\x0F\x00\xFF\xAA")
    assert flash.dump(0, 4) == b"\x0F\x00\xFF\xAA"


def test_programming_ones_over_zeros_rejected(flash):
    flash.erase_block(0)
    flash.program(b"\x00")
    with pytest.raises(DeviceError):
        flash.program(b"\x01")


def test_erase_restores_block(flash):
    flash.erase_block(0)
    flash.program(b"\x00" * 16)
    flash.erase_block(0)
    assert flash.dump(0, 16) == b"\xff" * 16


def test_endurance_limit(flash):
    for _ in range(5):
        flash.erase_block(1)
    with pytest.raises(DeviceError):
        flash.erase_block(1)


def test_load_firmware_spans_blocks(flash):
    image = bytes(range(256)) * 20  # 5120 bytes -> 2 blocks
    flash.load_firmware(image)
    assert flash.dump(0, len(image)) == image
    assert flash.erase_counts[0] == 1
    assert flash.erase_counts[1] == 1
    assert flash.erase_counts[2] == 0


def test_cpu_store_faults(flash):
    with pytest.raises(EmulatorError):
        flash.store_word(0, 0)


def test_validation(flash):
    with pytest.raises(ConfigurationError):
        OnChipFlash(0, 1000, block_size=300)
    with pytest.raises(ConfigurationError):
        flash.erase_block(99)
    with pytest.raises(ConfigurationError):
        flash.program(b"\x00" * 99999)
    with pytest.raises(ConfigurationError):
        flash.dump(0, 99999)
