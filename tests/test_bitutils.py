"""Unit tests for bit/byte utilities."""

import numpy as np
import pytest

from repro.bitutils import (
    as_bit_array,
    bit_error_rate,
    bits_to_bytes,
    block_hamming_weights,
    block_view,
    bytes_to_bits,
    hamming_distance,
    hamming_weight,
    invert_bits,
    majority_vote,
    most_marginal_row,
    tile_to_length,
)
from repro.errors import BlockLengthError


class TestByteBitConversion:
    def test_round_trip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        assert list(bytes_to_bits(b"\x80")) == [1, 0, 0, 0, 0, 0, 0, 0]
        assert list(bytes_to_bits(b"\x01")) == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_bits_to_bytes_rejects_partial_byte(self):
        with pytest.raises(BlockLengthError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))

    def test_bits_to_bytes_rejects_2d(self):
        with pytest.raises(BlockLengthError):
            bits_to_bytes(np.ones((2, 8), dtype=np.uint8))


class TestAsBitArray:
    def test_accepts_bytes(self):
        assert as_bit_array(b"\xff").sum() == 8

    def test_accepts_list(self):
        assert list(as_bit_array([1, 0, 1])) == [1, 0, 1]

    def test_rejects_non_binary(self):
        with pytest.raises(BlockLengthError):
            as_bit_array([0, 2, 1])


class TestHamming:
    def test_weight(self):
        assert hamming_weight(np.array([1, 0, 1, 1])) == 3

    def test_distance(self):
        a = np.array([1, 0, 1, 0], dtype=np.uint8)
        b = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert hamming_distance(a, b) == 2

    def test_distance_shape_mismatch(self):
        with pytest.raises(BlockLengthError):
            hamming_distance(np.zeros(3), np.zeros(4))

    def test_error_rate(self):
        a = np.zeros(10, dtype=np.uint8)
        b = a.copy()
        b[:3] = 1
        assert bit_error_rate(a, b) == pytest.approx(0.3)

    def test_error_rate_empty(self):
        with pytest.raises(BlockLengthError):
            bit_error_rate(np.zeros(0), np.zeros(0))


class TestBlockView:
    def test_exact_blocks(self):
        v = block_view(np.arange(6) % 2, 3)
        assert v.shape == (2, 3)

    def test_pads_final_block(self):
        v = block_view(np.ones(5, dtype=np.uint8), 4)
        assert v.shape == (2, 4)
        assert v[1].tolist() == [1, 0, 0, 0]

    def test_block_weights(self):
        bits = np.array([1, 1, 0, 0, 1, 0, 1, 1], dtype=np.uint8)
        assert block_hamming_weights(bits, 4).tolist() == [2, 3]

    def test_rejects_nonpositive_block(self):
        with pytest.raises(BlockLengthError):
            block_view(np.ones(4, dtype=np.uint8), 0)

    def test_pads_with_one(self):
        v = block_view(np.zeros(5, dtype=np.uint8), 4, pad_value=1)
        assert v[1].tolist() == [0, 1, 1, 1]

    def test_rejects_non_bit_pad(self):
        """Regression: any pad_value used to be accepted, leaking non-bit
        values into downstream Hamming-weight statistics."""
        for bad in (2, -1, 255):
            with pytest.raises(BlockLengthError):
                block_view(np.ones(5, dtype=np.uint8), 4, pad_value=bad)


class TestMajorityVote:
    def test_odd_samples(self):
        samples = np.array([[1, 0, 1], [1, 1, 0], [0, 0, 1]], dtype=np.uint8)
        assert majority_vote(samples).tolist() == [1, 0, 1]

    def test_single_sample_is_identity(self):
        s = np.array([[0, 1, 1]], dtype=np.uint8)
        assert majority_vote(s).tolist() == [0, 1, 1]

    def test_rejects_empty(self):
        with pytest.raises(BlockLengthError):
            majority_vote(np.zeros((0, 4), dtype=np.uint8))

    def test_rejects_1d(self):
        with pytest.raises(BlockLengthError):
            majority_vote(np.zeros(4, dtype=np.uint8))


class TestInvertAndTile:
    def test_invert(self):
        assert invert_bits(np.array([1, 0, 1])).tolist() == [0, 1, 0]

    def test_double_invert_identity(self):
        bits = np.array([1, 0, 0, 1], dtype=np.uint8)
        assert np.array_equal(invert_bits(invert_bits(bits)), bits)

    def test_tile_exact(self):
        assert tile_to_length(np.array([1, 0]), 5).tolist() == [1, 0, 1, 0, 1]

    def test_tile_shorter(self):
        assert tile_to_length(np.array([1, 0, 1]), 2).tolist() == [1, 0]

    def test_tile_empty_rejected(self):
        with pytest.raises(BlockLengthError):
            tile_to_length(np.zeros(0, dtype=np.uint8), 4)


class TestAsByteArray:
    """Regression: bytes_to_bits used to call bytes(data) on ndarrays,
    which reinterprets the raw buffer of non-uint8 arrays (an int64 array
    of byte values unpacked to 8x the bits, mostly zeros)."""

    def test_bytes_and_bytearray(self):
        from repro.bitutils import as_byte_array

        assert as_byte_array(b"\x00\xff").tolist() == [0, 255]
        assert as_byte_array(bytearray([1, 2, 3])).tolist() == [1, 2, 3]

    def test_int64_array_of_byte_values(self):
        wide = np.array([0, 1, 128, 255], dtype=np.int64)
        assert np.array_equal(
            bytes_to_bits(wide), bytes_to_bits(bytes([0, 1, 128, 255]))
        )

    def test_int64_regression_not_buffer_reinterpreted(self):
        # Pre-fix, bytes(np.array([65], dtype=np.int64)) was the 8-byte
        # little-endian buffer b"A\x00..\x00" -> 64 bits instead of 8.
        bits = bytes_to_bits(np.array([65], dtype=np.int64))
        assert bits.size == 8
        assert bits_to_bytes(bits) == b"A"

    def test_bool_array_accepted(self):
        bits = bytes_to_bits(np.array([True, False], dtype=np.bool_))
        assert bits.size == 16
        assert bits_to_bytes(bits) == b"\x01\x00"

    def test_float_array_rejected(self):
        with pytest.raises(BlockLengthError, match="integer dtype"):
            bytes_to_bits(np.array([1.0, 2.0]))

    def test_out_of_range_values_rejected(self):
        for bad in ([256], [-1], [0, 1000]):
            with pytest.raises(BlockLengthError, match="0..255"):
                bytes_to_bits(np.array(bad, dtype=np.int64))

    def test_empty_integer_array(self):
        assert bytes_to_bits(np.array([], dtype=np.int64)).size == 0


class TestMajorityVoteTieCharacterization:
    """Characterization: even-count ties resolve to 1 (2*ones >= n)."""

    def test_even_split_breaks_to_one(self):
        stack = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        assert majority_vote(stack).tolist() == [1, 1]

    def test_even_count_without_tie_is_plain_majority(self):
        stack = np.array(
            [[1, 1, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]], dtype=np.uint8
        )
        assert majority_vote(stack).tolist() == [1, 1, 0]

    def test_tie_rule_matches_counting_reference(self):
        rng = np.random.default_rng(11)
        stack = rng.integers(0, 2, (6, 200)).astype(np.uint8)
        reference = [
            1 if 2 * int(col.sum()) >= 6 else 0 for col in stack.T
        ]
        assert majority_vote(stack).tolist() == reference


class TestMostMarginalRow:
    def test_picks_highest_disagreement(self):
        stack = np.array(
            [[0, 0, 0, 0], [0, 0, 0, 1], [1, 1, 0, 0], [0, 0, 0, 0]],
            dtype=np.uint8,
        )
        assert most_marginal_row(stack) == 2  # two flips vs the vote

    def test_flip_count_ties_break_to_newest(self):
        stack = np.array(
            [[0, 0, 1], [0, 0, 1], [1, 0, 1], [0, 1, 1]], dtype=np.uint8
        )
        # Rows 2 and 3 each disagree on one bit: the newest sits out.
        assert most_marginal_row(stack) == 3

    def test_rejects_bad_shapes(self):
        with pytest.raises(BlockLengthError):
            most_marginal_row(np.zeros(4, dtype=np.uint8))
        with pytest.raises(BlockLengthError):
            most_marginal_row(np.zeros((0, 4), dtype=np.uint8))


class TestTiePolicies:
    def test_drop_policy_removes_the_tie(self):
        # Bit 1 ties 2-2 under the default policy; dropping the most
        # marginal row leaves an odd, tie-free vote.
        stack = np.array(
            [[1, 0, 0], [1, 1, 0], [1, 0, 0], [0, 1, 1]], dtype=np.uint8
        )
        assert majority_vote(stack).tolist() == [1, 1, 0]  # tie -> 1
        assert majority_vote(stack, on_tie="drop").tolist() == [1, 0, 0]

    def test_drop_matches_explicit_sit_out(self):
        rng = np.random.default_rng(23)
        stack = rng.integers(0, 2, (6, 100)).astype(np.uint8)
        keep = np.ones(6, dtype=bool)
        keep[most_marginal_row(stack)] = False
        np.testing.assert_array_equal(
            majority_vote(stack, on_tie="drop"), majority_vote(stack[keep])
        )

    def test_error_policy_rejects_even_counts(self):
        with pytest.raises(BlockLengthError):
            majority_vote(np.zeros((4, 3), dtype=np.uint8), on_tie="error")

    def test_error_policy_allows_odd_counts(self):
        stack = np.array([[1, 0], [1, 1], [0, 0]], dtype=np.uint8)
        assert majority_vote(stack, on_tie="error").tolist() == [1, 0]

    def test_unknown_policy_rejected(self):
        with pytest.raises(BlockLengthError):
            majority_vote(np.zeros((3, 2), dtype=np.uint8), on_tie="coin")

    def test_single_sample_drop_is_identity(self):
        s = np.array([[1, 0, 1]], dtype=np.uint8)
        assert majority_vote(s, on_tie="drop").tolist() == [1, 0, 1]
