"""Unit tests for bit/byte utilities."""

import numpy as np
import pytest

from repro.bitutils import (
    as_bit_array,
    bit_error_rate,
    bits_to_bytes,
    block_hamming_weights,
    block_view,
    bytes_to_bits,
    hamming_distance,
    hamming_weight,
    invert_bits,
    majority_vote,
    tile_to_length,
)
from repro.errors import BlockLengthError


class TestByteBitConversion:
    def test_round_trip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        assert list(bytes_to_bits(b"\x80")) == [1, 0, 0, 0, 0, 0, 0, 0]
        assert list(bytes_to_bits(b"\x01")) == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_bits_to_bytes_rejects_partial_byte(self):
        with pytest.raises(BlockLengthError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))

    def test_bits_to_bytes_rejects_2d(self):
        with pytest.raises(BlockLengthError):
            bits_to_bytes(np.ones((2, 8), dtype=np.uint8))


class TestAsBitArray:
    def test_accepts_bytes(self):
        assert as_bit_array(b"\xff").sum() == 8

    def test_accepts_list(self):
        assert list(as_bit_array([1, 0, 1])) == [1, 0, 1]

    def test_rejects_non_binary(self):
        with pytest.raises(BlockLengthError):
            as_bit_array([0, 2, 1])


class TestHamming:
    def test_weight(self):
        assert hamming_weight(np.array([1, 0, 1, 1])) == 3

    def test_distance(self):
        a = np.array([1, 0, 1, 0], dtype=np.uint8)
        b = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert hamming_distance(a, b) == 2

    def test_distance_shape_mismatch(self):
        with pytest.raises(BlockLengthError):
            hamming_distance(np.zeros(3), np.zeros(4))

    def test_error_rate(self):
        a = np.zeros(10, dtype=np.uint8)
        b = a.copy()
        b[:3] = 1
        assert bit_error_rate(a, b) == pytest.approx(0.3)

    def test_error_rate_empty(self):
        with pytest.raises(BlockLengthError):
            bit_error_rate(np.zeros(0), np.zeros(0))


class TestBlockView:
    def test_exact_blocks(self):
        v = block_view(np.arange(6) % 2, 3)
        assert v.shape == (2, 3)

    def test_pads_final_block(self):
        v = block_view(np.ones(5, dtype=np.uint8), 4)
        assert v.shape == (2, 4)
        assert v[1].tolist() == [1, 0, 0, 0]

    def test_block_weights(self):
        bits = np.array([1, 1, 0, 0, 1, 0, 1, 1], dtype=np.uint8)
        assert block_hamming_weights(bits, 4).tolist() == [2, 3]

    def test_rejects_nonpositive_block(self):
        with pytest.raises(BlockLengthError):
            block_view(np.ones(4, dtype=np.uint8), 0)

    def test_pads_with_one(self):
        v = block_view(np.zeros(5, dtype=np.uint8), 4, pad_value=1)
        assert v[1].tolist() == [0, 1, 1, 1]

    def test_rejects_non_bit_pad(self):
        """Regression: any pad_value used to be accepted, leaking non-bit
        values into downstream Hamming-weight statistics."""
        for bad in (2, -1, 255):
            with pytest.raises(BlockLengthError):
                block_view(np.ones(5, dtype=np.uint8), 4, pad_value=bad)


class TestMajorityVote:
    def test_odd_samples(self):
        samples = np.array([[1, 0, 1], [1, 1, 0], [0, 0, 1]], dtype=np.uint8)
        assert majority_vote(samples).tolist() == [1, 0, 1]

    def test_single_sample_is_identity(self):
        s = np.array([[0, 1, 1]], dtype=np.uint8)
        assert majority_vote(s).tolist() == [0, 1, 1]

    def test_rejects_empty(self):
        with pytest.raises(BlockLengthError):
            majority_vote(np.zeros((0, 4), dtype=np.uint8))

    def test_rejects_1d(self):
        with pytest.raises(BlockLengthError):
            majority_vote(np.zeros(4, dtype=np.uint8))


class TestInvertAndTile:
    def test_invert(self):
        assert invert_bits(np.array([1, 0, 1])).tolist() == [0, 1, 0]

    def test_double_invert_identity(self):
        bits = np.array([1, 0, 0, 1], dtype=np.uint8)
        assert np.array_equal(invert_bits(invert_bits(bits)), bits)

    def test_tile_exact(self):
        assert tile_to_length(np.array([1, 0]), 5).tolist() == [1, 0, 1, 0, 1]

    def test_tile_shorter(self):
        assert tile_to_length(np.array([1, 0, 1]), 2).tolist() == [1, 0]

    def test_tile_empty_rejected(self):
        with pytest.raises(BlockLengthError):
            tile_to_length(np.zeros(0, dtype=np.uint8), 4)
