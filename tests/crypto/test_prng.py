"""Unit tests for the §5.1.4 workload PRNG."""

import pytest

from repro.crypto.prng import GaloisLfsr32, Lcg31, NormalOperationPrng
from repro.errors import ConfigurationError


class TestLfsr:
    def test_known_first_step(self):
        lfsr = GaloisLfsr32(0xACE1)
        assert lfsr.step() == 0x80205673

    def test_never_reaches_zero(self):
        lfsr = GaloisLfsr32(1)
        for _ in range(10_000):
            assert lfsr.step() != 0

    def test_long_period_no_short_cycle(self):
        lfsr = GaloisLfsr32(0xDEADBEEF)
        seen_start = lfsr.state
        for _ in range(100_000):
            if lfsr.step() == seen_start:
                pytest.fail("LFSR cycled suspiciously early")

    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            GaloisLfsr32(0)


class TestLcg:
    def test_glibc_constants(self):
        """x1 = (1103515245 * 1 + 12345) mod 2^31 — the paper's recurrence."""
        lcg = Lcg31(1)
        assert lcg.next_word() == 1103527590

    def test_stays_in_31_bits(self):
        lcg = Lcg31(0x7FFFFFFF)
        for _ in range(1000):
            assert 0 <= lcg.next_word() < 2**31

    def test_seed_masked_to_31_bits(self):
        assert Lcg31(0x80000001).next_word() == Lcg31(0x00000001).next_word()


class TestComposedGenerator:
    def test_sweeps_are_deterministic(self):
        a = NormalOperationPrng(0xACE1).sweep(32)
        b = NormalOperationPrng(0xACE1).sweep(32)
        assert a == b

    def test_successive_sweeps_differ(self):
        gen = NormalOperationPrng(0xACE1)
        assert gen.sweep(32) != gen.sweep(32)

    def test_words_look_balanced(self):
        words = NormalOperationPrng(7).sweep(4096)
        ones = sum(bin(w).count("1") for w in words)
        total = 31 * len(words)  # 31-bit words
        assert ones / total == pytest.approx(0.5, abs=0.02)

    def test_zero_length_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            NormalOperationPrng(1).sweep(0)
