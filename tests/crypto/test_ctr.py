"""Unit tests for AES-CTR (NIST SP 800-38A vector + paper properties)."""

import numpy as np
import pytest

from repro.crypto import AesCtr, nonce_from_device_id
from repro.errors import ConfigurationError, NonceError


@pytest.fixture
def ctr():
    return AesCtr(b"0123456789abcdef", b"\x01" * 12)


class TestCorrectness:
    def test_involution(self, ctr):
        msg = b"attack at dawn" * 13
        assert ctr.decrypt(ctr.encrypt(msg)) == msg

    def test_keystream_deterministic(self, ctr):
        assert np.array_equal(ctr.keystream(100), ctr.keystream(100))

    def test_keystream_prefix_property(self, ctr):
        long = ctr.keystream(64)
        short = ctr.keystream(32)
        assert np.array_equal(long[:32], short)

    def test_counter_offset_continues_stream(self, ctr):
        whole = ctr.keystream(48)
        tail = ctr.keystream(32, initial_counter=1)
        assert np.array_equal(whole[16:48], tail)

    def test_different_nonces_differ(self):
        a = AesCtr(b"0123456789abcdef", b"\x01" * 12).keystream(32)
        b = AesCtr(b"0123456789abcdef", b"\x02" * 12).keystream(32)
        assert not np.array_equal(a, b)


class TestErrorNeutrality:
    """§4.1: a stream cipher is error-neutral — bit errors map 1:1."""

    def test_single_flip_single_error(self, ctr):
        msg = bytes(64)
        ct = bytearray(ctr.encrypt(msg))
        ct[10] ^= 0x40
        recovered = ctr.decrypt(bytes(ct))
        flips = sum(bin(a ^ b).count("1") for a, b in zip(recovered, msg))
        assert flips == 1

    def test_error_positions_preserved(self, ctr):
        msg = bytes(range(64))
        ct = np.frombuffer(ctr.encrypt(msg), dtype=np.uint8).copy()
        ct[[3, 17, 40]] ^= 0x01
        recovered = np.frombuffer(ctr.decrypt(ct.tobytes()), dtype=np.uint8)
        original = np.frombuffer(msg, dtype=np.uint8)
        assert list(np.nonzero(recovered != original)[0]) == [3, 17, 40]


class TestBitsInterface:
    def test_process_bits_round_trip(self, ctr, random_payload):
        bits = random_payload(256, seed=2)
        assert np.array_equal(ctr.process_bits(ctr.process_bits(bits)), bits)

    def test_encrypted_bits_look_random(self, ctr):
        bits = np.zeros(80_000, dtype=np.uint8)
        enc = ctr.process_bits(bits)
        assert enc.mean() == pytest.approx(0.5, abs=0.01)


class TestNonceReuseHazard:
    """Why footnote 4's per-device nonces are load-bearing."""

    def test_nonce_reuse_leaks_message_xor(self):
        ctr_a = AesCtr(b"0123456789abcdef", b"\x07" * 12)
        ctr_b = AesCtr(b"0123456789abcdef", b"\x07" * 12)  # same nonce!
        m1 = b"attack at dawn..".ljust(32)
        m2 = b"retreat at dusk.".ljust(32)
        c1 = ctr_a.encrypt(m1)
        c2 = ctr_b.encrypt(m2)
        leaked = bytes(a ^ b for a, b in zip(c1, c2))
        expected = bytes(a ^ b for a, b in zip(m1, m2))
        assert leaked == expected  # keystream cancelled: adversary wins

    def test_per_device_nonces_prevent_the_leak(self):
        key = b"0123456789abcdef"
        ctr_a = AesCtr(key, nonce_from_device_id(b"device-serial-1"))
        ctr_b = AesCtr(key, nonce_from_device_id(b"device-serial-2"))
        m = b"same message on two devices....."
        c1, c2 = ctr_a.encrypt(m), ctr_b.encrypt(m)
        assert c1 != c2
        xored = np.frombuffer(c1, np.uint8) ^ np.frombuffer(c2, np.uint8)
        # The XOR of the two ciphertexts is keystream XOR, not plaintext:
        # it looks random rather than zero.
        assert 0.25 < np.unpackbits(xored).mean() < 0.75
        assert xored.any()


class TestNonceDerivation:
    def test_12_byte_id_passthrough(self):
        assert nonce_from_device_id(b"x" * 12) == b"x" * 12

    def test_other_lengths_hashed(self):
        nonce = nonce_from_device_id(b"serial-42")
        assert len(nonce) == 12
        assert nonce == nonce_from_device_id(b"serial-42")
        assert nonce != nonce_from_device_id(b"serial-43")

    def test_empty_id_rejected(self):
        with pytest.raises(NonceError):
            nonce_from_device_id(b"")


class TestValidation:
    def test_bad_nonce_length(self):
        with pytest.raises(NonceError):
            AesCtr(b"0123456789abcdef", b"short")

    def test_counter_overflow_guard(self, ctr):
        with pytest.raises(NonceError):
            ctr.keystream(32, initial_counter=2**32 - 1)

    def test_negative_length(self, ctr):
        with pytest.raises(ConfigurationError):
            ctr.keystream(-1)

    def test_zero_length(self, ctr):
        assert ctr.keystream(0).size == 0


def test_sp800_38a_ctr_vector():
    """NIST SP 800-38A F.5.1 CTR-AES128, first block."""
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    # SP 800-38A uses a full 16-byte initial counter block; our CTR splits
    # 12-byte nonce || 4-byte counter, so use its prefix and start counter.
    ctr = AesCtr(key, bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafb"))
    pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    ct = ctr.process(
        np.frombuffer(pt, dtype=np.uint8)
    ) .tobytes()
    # keystream block must be E_K(f0..fb || fcfdfeff) with counter 0xfcfdfeff
    expected = bytes.fromhex("874d6191b620e3261bef6864990db6ce")
    ks = ctr.keystream(16, initial_counter=0xFCFDFEFF)
    manual = bytes(a ^ b for a, b in zip(pt, ks.tobytes()))
    assert manual == expected


class TestProcessInputValidation:
    """Regression: process() used np.asarray(..., dtype=np.uint8), which
    silently wraps values > 255 (e.g. 256 -> 0) and corrupts the stream."""

    def test_out_of_range_array_rejected(self, ctr):
        from repro.errors import BlockLengthError

        with pytest.raises(BlockLengthError, match="0..255"):
            ctr.process(np.array([0, 256], dtype=np.int64))
        with pytest.raises(BlockLengthError):
            ctr.process(np.array([-1], dtype=np.int64))

    def test_float_array_rejected(self, ctr):
        from repro.errors import BlockLengthError

        with pytest.raises(BlockLengthError, match="integer dtype"):
            ctr.process(np.array([1.5, 2.5]))

    def test_wide_dtype_byte_values_match_bytes_path(self, ctr):
        data = bytes(range(256))
        wide = np.frombuffer(data, dtype=np.uint8).astype(np.int64)
        assert np.array_equal(ctr.process(wide), ctr.process(data))

    def test_encrypt_and_decrypt_reject_too(self, ctr):
        # Pre-fix, 256 wrapped to 0 and encrypted without complaint; the
        # rejection must cover every entry point that takes arrays.
        from repro.errors import BlockLengthError

        bad = np.array([256], dtype=np.int64)
        with pytest.raises(BlockLengthError):
            ctr.encrypt(bad)
        with pytest.raises(BlockLengthError):
            ctr.decrypt(bad)
