"""AES validated against FIPS-197 Appendix C vectors."""

import numpy as np
import pytest

from repro.crypto import AES
from repro.crypto.aes_core import INV_SBOX, SBOX, gf_mul
from repro.errors import ConfigurationError, KeyLengthError

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
VECTORS = [
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestFips197:
    @pytest.mark.parametrize("key_hex,ct_hex", VECTORS)
    def test_encrypt_vectors(self, key_hex, ct_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.encrypt_block(PLAINTEXT).hex() == ct_hex

    @pytest.mark.parametrize("key_hex,ct_hex", VECTORS)
    def test_decrypt_vectors(self, key_hex, ct_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.decrypt_block(bytes.fromhex(ct_hex)) == PLAINTEXT

    def test_fips197_appendix_b_example(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert AES(key).encrypt_block(pt).hex() == "3925841d02dc09fbdc118597196a0b32"


class TestTables:
    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sboxes_are_inverse_permutations(self):
        assert sorted(SBOX.tolist()) == list(range(256))
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))

    def test_gf_mul_known_products(self):
        assert gf_mul(0x57, 0x83) == 0xC1  # FIPS-197 §4.2 example
        assert gf_mul(0x57, 0x13) == 0xFE
        assert gf_mul(0, 0x42) == 0
        assert gf_mul(1, 0x42) == 0x42


class TestBatching:
    def test_vectorized_matches_single_block(self):
        rng = np.random.default_rng(0)
        aes = AES(b"0123456789abcdef")
        blocks = rng.integers(0, 256, (32, 16), dtype=np.uint8)
        batch = aes.encrypt_blocks(blocks)
        for i in range(32):
            assert batch[i].tobytes() == aes.encrypt_block(blocks[i].tobytes())

    def test_round_trip_batch(self):
        rng = np.random.default_rng(1)
        aes = AES(b"0123456789abcdef")
        blocks = rng.integers(0, 256, (100, 16), dtype=np.uint8)
        assert np.array_equal(aes.decrypt_blocks(aes.encrypt_blocks(blocks)), blocks)

    def test_input_blocks_not_mutated(self):
        aes = AES(b"0123456789abcdef")
        blocks = np.zeros((4, 16), dtype=np.uint8)
        aes.encrypt_blocks(blocks)
        assert not blocks.any()


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(KeyLengthError):
            AES(b"short")

    def test_bad_block_shape(self):
        aes = AES(b"0123456789abcdef")
        with pytest.raises(ConfigurationError):
            aes.encrypt_blocks(np.zeros((4, 8), dtype=np.uint8))
