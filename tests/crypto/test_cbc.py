"""Unit tests for AES-CBC and the §4.1 error-amplification claim."""

import numpy as np
import pytest

from repro.crypto import AesCbc
from repro.errors import ConfigurationError

KEY = b"0123456789abcdef"
IV = b"A" * 16


@pytest.fixture
def cbc():
    return AesCbc(KEY, IV)


def test_nist_sp800_38a_cbc_vector():
    """SP 800-38A F.2.1 CBC-AES128.Encrypt, first two blocks."""
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    pt = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
    )
    expected = (
        "7649abac8119b246cee98e9b12e9197d"
        "5086cb9b507219ee95db113a917678b2"
    )
    assert AesCbc(key, iv).encrypt(pt).hex() == expected


def test_round_trip(cbc):
    msg = bytes(range(16)) * 8
    assert cbc.decrypt(cbc.encrypt(msg)) == msg


def test_chaining_differs_for_equal_blocks(cbc):
    msg = b"\x00" * 48
    ct = cbc.encrypt(msg)
    blocks = [ct[i : i + 16] for i in range(0, 48, 16)]
    assert len(set(blocks)) == 3


def test_error_amplification(cbc):
    """§4.1: one ciphertext bit error garbles a whole plaintext block (plus
    one bit of the next) — roughly 50% of two blocks' bits."""
    msg = bytes(64)
    ct = bytearray(cbc.encrypt(msg))
    ct[0] ^= 0x01
    recovered = cbc.decrypt(bytes(ct))
    flips = sum(bin(a ^ b).count("1") for a, b in zip(recovered, msg))
    assert 50 <= flips <= 80  # ~64 of 128 affected bits flip on average
    # block 3 and 4 are untouched: the damage is local but catastrophic
    assert recovered[32:] == msg[32:]


def test_partial_block_rejected(cbc):
    with pytest.raises(ConfigurationError):
        cbc.encrypt(b"short")
    with pytest.raises(ConfigurationError):
        cbc.decrypt(b"")


def test_bad_iv_rejected():
    with pytest.raises(ConfigurationError):
        AesCbc(KEY, b"short-iv")
