"""Unit tests for RNG plumbing."""

import numpy as np

from repro.rng import make_rng, spawn


def test_int_seed_is_deterministic():
    a = make_rng(42).integers(0, 1000, 10)
    b = make_rng(42).integers(0, 1000, 10)
    assert np.array_equal(a, b)


def test_generator_passthrough():
    gen = np.random.default_rng(1)
    assert make_rng(gen) is gen


def test_none_gives_generator():
    assert isinstance(make_rng(None), np.random.Generator)


def test_spawn_children_are_independent_and_deterministic():
    kids_a = spawn(make_rng(7), 3)
    kids_b = spawn(make_rng(7), 3)
    draws_a = [k.integers(0, 10**9) for k in kids_a]
    draws_b = [k.integers(0, 10**9) for k in kids_b]
    assert draws_a == draws_b
    assert len(set(int(d) for d in draws_a)) == 3
