"""The sampling profiler: stacks, clocks, output format."""

from __future__ import annotations

import re
import time

import pytest

from repro.profile import SamplingProfiler, profiling


def _spin(seconds: float) -> None:
    """Busy-wait so the sampler has a CPU-bound stack to catch."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


class TestSamplingProfiler:
    def test_collects_samples_from_a_busy_thread(self):
        profiler = SamplingProfiler(interval_s=0.001).start()
        _spin(0.15)
        profiler.stop()
        assert profiler.total_samples > 0
        # The busy-wait helper must appear in at least one stack.
        assert any("_spin" in frame for stack in profiler.samples for frame in stack)

    def test_collapsed_format(self):
        profiler = SamplingProfiler(interval_s=0.001).start()
        _spin(0.1)
        profiler.stop()
        body = profiler.collapsed()
        assert body
        for line in body.splitlines():
            # module:func;module:func... <count>
            assert re.match(r"^\S+:\S.* \d+$", line), line
        counts = [int(line.rsplit(" ", 1)[1]) for line in body.splitlines()]
        assert counts == sorted(counts, reverse=True)

    def test_write_appends_meta_line(self, tmp_path):
        profiler = SamplingProfiler(interval_s=0.001).start()
        _spin(0.05)
        profiler.stop()
        out = profiler.write(tmp_path / "profile.txt")
        lines = out.read_text().splitlines()
        assert lines[-1].startswith("# repro-profile mode=wall")
        assert f"samples={profiler.total_samples}" in lines[-1]

    def test_empty_profile_still_writes_meta(self, tmp_path):
        profiler = SamplingProfiler(interval_s=10.0)
        out = profiler.write(tmp_path / "empty.txt")
        text = out.read_text()
        # Distinguishable from a failed write: exactly the meta comment.
        assert text.startswith("# repro-profile")
        assert "samples=0" in text

    def test_stop_is_idempotent_and_accumulates_duration(self):
        profiler = SamplingProfiler(interval_s=0.001).start()
        _spin(0.02)
        profiler.stop()
        first = profiler.duration_s
        profiler.stop()
        assert profiler.duration_s == first
        assert first > 0

    def test_restart_resumes(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        _spin(0.03)
        profiler.stop()
        seen = profiler.total_samples
        profiler.start()
        _spin(0.03)
        profiler.stop()
        assert profiler.total_samples >= seen

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(0)
        with pytest.raises(ValueError):
            SamplingProfiler(0.01, mode="gpu")

    def test_cpu_mode_drops_idle_leaves(self):
        import threading

        # Park a thread at a Python-level idle leaf (Event.wait lands in
        # threading:wait; time.sleep is C-level and leaves no frame).
        release = threading.Event()
        parked = threading.Thread(target=release.wait, daemon=True)
        parked.start()
        profiler = SamplingProfiler(interval_s=0.001, mode="cpu").start()
        _spin(0.1)
        profiler.stop()
        release.set()
        parked.join()
        assert profiler.dropped_idle > 0
        assert not any(
            stack[-1] == "threading:wait" for stack in profiler.samples
        )


class TestProfilingContextManager:
    def test_writes_on_exit(self, tmp_path):
        path = tmp_path / "p.txt"
        with profiling(path, interval_s=0.001) as profiler:
            _spin(0.05)
        assert not profiler.running
        assert path.exists()
        assert "# repro-profile" in path.read_text()

    def test_in_memory_when_no_path(self):
        with profiling(interval_s=0.001) as profiler:
            _spin(0.05)
        assert profiler.total_samples > 0
        assert profiler.collapsed()
