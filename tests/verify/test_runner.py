"""Runner: determinism, failure reporting, and greedy shrinking."""

import numpy as np
import pytest

from repro.verify import generators as g
from repro.verify.runner import ContractViolation, Failure, Runner, check_that


class TestCheckThat:
    def test_passes_silently(self):
        check_that(True, "never raised")

    def test_raises_contract_violation(self):
        with pytest.raises(ContractViolation, match="broken"):
            check_that(False, "broken")

    def test_is_an_assertion_error(self):
        assert issubclass(ContractViolation, AssertionError)


class TestDeterminism:
    def test_same_seed_same_examples(self):
        drawn = []

        def record(x, y):
            drawn.append((x, y))

        gens = (g.integers(0, 1000), g.payload_bytes(0, 8))
        Runner(seed=42, max_examples=10).check(record, gens)
        first = list(drawn)
        drawn.clear()
        Runner(seed=42, max_examples=10).check(record, gens)
        assert drawn == first

    def test_different_seeds_differ(self):
        drawn = []
        gens = (g.integers(0, 10**9),)
        Runner(seed=1, max_examples=5).check(lambda x: drawn.append(x), gens)
        first = list(drawn)
        drawn.clear()
        Runner(seed=2, max_examples=5).check(lambda x: drawn.append(x), gens)
        assert drawn != first

    def test_example_rng_is_replayable(self):
        runner = Runner(seed=9)
        a = runner.example_rng(3).integers(0, 2**31)
        b = runner.example_rng(3).integers(0, 2**31)
        assert a == b


class TestReports:
    def test_passing_property(self):
        report = Runner(seed=0, max_examples=7).check(
            lambda n: None, (g.integers(0, 5),)
        )
        assert report.passed and report.status == "ok"
        assert report.examples == 7 and report.failure is None

    def test_per_oracle_example_cap(self):
        ran = []
        report = Runner(seed=0, max_examples=25).check(
            lambda n: ran.append(n), (g.integers(0, 5),), examples=4
        )
        assert report.examples == 4 and len(ran) == 4

    def test_failure_stops_the_sweep(self):
        calls = []

        def always_fails(n):
            calls.append(n)
            check_that(False, "no good")

        report = Runner(seed=0, max_examples=10).check(
            always_fails, (g.integers(0, 0),)
        )
        assert not report.passed and report.status == "FAIL"
        assert report.examples == 1  # stopped at the first failure
        assert isinstance(report.failure, Failure)
        assert "no good" in str(report.failure)

    def test_any_exception_falsifies(self):
        def crashes(n):
            raise RuntimeError("boom")

        report = Runner(seed=0, max_examples=3).check(crashes, (g.integers(0, 5),))
        assert not report.passed
        assert "RuntimeError" in report.failure.error


class TestShrinking:
    def test_shrinks_to_the_boundary(self):
        def fails_above_10(n):
            check_that(n <= 10, f"{n} > 10")

        report = Runner(seed=3, max_examples=50).check(
            fails_above_10, (g.integers(0, 10**6),)
        )
        assert not report.passed
        # Greedy descent lands on the smallest still-failing value, 11.
        assert report.failure.shrunk_args == ("11",)
        assert report.failure.shrinks > 0

    def test_shrinks_byte_payload_length(self):
        def fails_when_long(data):
            check_that(len(data) < 3, "too long")

        report = Runner(seed=0, max_examples=50).check(
            fails_when_long, (g.payload_bytes(0, 64),)
        )
        assert not report.passed
        shrunk = report.failure.shrunk_args[0]
        # Minimal counterexample is exactly 3 zero bytes.
        assert shrunk == "bytes(000000)"

    def test_shrink_attempt_budget_is_bounded(self):
        attempts = []

        def always_fails(n):
            attempts.append(n)
            check_that(False, "unconditional")

        runner = Runner(seed=1, max_examples=5, max_shrinks=10)
        report = runner.check(always_fails, (g.integers(0, 10**6),))
        assert not report.passed
        assert len(attempts) <= 1 + 10 + 1  # original + bounded attempts

    def test_multi_position_shrink(self):
        def fails_on_sum(a, b):
            check_that(a + b < 20, "sum too big")

        report = Runner(seed=5, max_examples=100).check(
            fails_on_sum, (g.integers(0, 1000), g.integers(0, 1000))
        )
        assert not report.passed
        a, b = (int(v) for v in report.failure.shrunk_args)
        assert a + b >= 20
        # Neither position can shrink further without passing.
        assert a + b <= 21


class TestDescribe:
    def test_array_and_bytes_rendering(self):
        from repro.verify.runner import _describe

        assert _describe(np.array([1, 0])) == "array[1, 0]"
        assert "shape=(100,)" in _describe(np.zeros(100))
        assert _describe(b"\x01\x02") == "bytes(0102)"
        assert _describe(b"x" * 40) == "bytes(len=40)"
        assert _describe(7) == "7"
