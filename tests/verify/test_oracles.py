"""The oracle registry: coverage, soundness at two seeds, selection."""

import pytest

from repro.verify import all_oracles, get_oracle, run_verification
from repro.verify.oracles import Oracle, _code_catalog


class TestRegistry:
    def test_at_least_ten_oracles_registered(self):
        assert len(all_oracles()) >= 10

    def test_names_unique_and_sorted(self):
        names = [o.name for o in all_oracles()]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_every_oracle_documents_itself(self):
        for orc in all_oracles():
            assert isinstance(orc, Oracle)
            assert orc.doc, f"{orc.name} has no doc line"
            assert orc.gens, f"{orc.name} has no generators"

    def test_expected_contracts_present(self):
        names = {o.name for o in all_oracles()}
        assert {
            "capture.batch_vs_loop",
            "fleet.worker_invariance",
            "scheme.legacy_kwargs",
            "faults.disabled_identity",
            "ecc.roundtrip",
            "ecc.composition",
            "crypto.ctr_involution",
            "crypto.ctr_keystream",
            "stats.morans_agreement",
            "physics.nbti_monotone",
        } <= names

    def test_get_oracle_unknown_name(self):
        with pytest.raises(KeyError, match="unknown oracle"):
            get_oracle("no.such.contract")

    def test_code_catalog_covers_every_family(self):
        names = set(_code_catalog())
        for family in ("identity", "rep", "hamming", "bch", "interleave", "paper"):
            assert any(family in n for n in names), family


@pytest.mark.parametrize("seed", [1, 7])
def test_sweep_is_green_at_two_seeds(seed):
    """ISSUE acceptance: >= 10 oracles all green at two different seeds."""
    summary = run_verification(seed=seed, max_examples=2)
    assert len(summary.reports) >= 10
    failed = [str(r.failure) for r in summary.reports if not r.passed]
    assert not failed, failed
    assert summary.ok


def test_selected_subset_runs_only_those():
    summary = run_verification(
        seed=0,
        max_examples=2,
        names=["ecc.roundtrip", "crypto.ctr_involution"],
    )
    assert [r.name for r in summary.reports] == [
        "ecc.roundtrip",
        "crypto.ctr_involution",
    ]
    assert summary.ok


def test_unknown_selection_raises():
    with pytest.raises(KeyError):
        run_verification(names=["bogus.oracle"])
