"""Generators: deterministic sampling and well-founded shrinking."""

import numpy as np
import pytest

from repro.core.scheme import CodingScheme
from repro.verify import generators as g


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestScalars:
    def test_integers_in_range_and_deterministic(self):
        gen = g.integers(3, 9)
        values = [gen.sample(_rng(i)) for i in range(50)]
        assert all(3 <= v <= 9 for v in values)
        assert values == [gen.sample(_rng(i)) for i in range(50)]

    def test_integers_shrink_strictly_smaller(self):
        gen = g.integers(0, 100)
        for value in (1, 5, 77, 100):
            candidates = list(gen.shrink(value))
            assert candidates
            assert all(0 <= c < value for c in candidates)
        assert list(gen.shrink(0)) == []

    def test_integers_empty_range_rejected(self):
        with pytest.raises(ValueError):
            g.integers(5, 4)

    def test_odd_integers(self):
        gen = g.odd_integers(1, 9)
        assert all(gen.sample(_rng(i)) % 2 == 1 for i in range(30))
        assert all(c % 2 == 1 for c in gen.shrink(7))

    def test_seeds_nonnegative(self):
        gen = g.seeds()
        assert all(gen.sample(_rng(i)) >= 0 for i in range(20))

    def test_sampled_from_shrinks_toward_earlier(self):
        gen = g.sampled_from(["a", "b", "c"])
        assert list(gen.shrink("c")) == ["a", "b"]
        assert list(gen.shrink("a")) == []
        assert list(gen.shrink("not-a-choice")) == []


class TestArrays:
    def test_bit_arrays_respect_multiple(self):
        gen = g.bit_arrays(1, 64, multiple_of=7)
        for i in range(20):
            value = gen.sample(_rng(i))
            assert value.size % 7 == 0 and value.size >= 7
            assert set(np.unique(value)) <= {0, 1}

    def test_bit_arrays_shrink_preserves_multiple(self):
        gen = g.bit_arrays(1, 64, multiple_of=7)
        value = gen.sample(_rng(3))
        for candidate in gen.shrink(value):
            assert candidate.size % 7 == 0

    def test_payload_bytes_lengths(self):
        gen = g.payload_bytes(2, 10)
        for i in range(30):
            value = gen.sample(_rng(i))
            assert isinstance(value, bytes) and 2 <= len(value) <= 10

    def test_payload_bytes_shrink_never_below_min(self):
        gen = g.payload_bytes(2, 10)
        for candidate in gen.shrink(b"\x01" * 9):
            assert len(candidate) >= 2

    def test_capture_stacks_shape(self):
        gen = g.capture_stacks(5, 32, min_captures=2)
        for i in range(20):
            value = gen.sample(_rng(i))
            assert value.ndim == 2
            assert 2 <= value.shape[0] <= 5 and 1 <= value.shape[1] <= 32

    def test_grid_shapes_bounds_and_shrink(self):
        gen = g.grid_shapes(3, 8)
        for i in range(20):
            rows, cols = gen.sample(_rng(i))
            assert 3 <= rows <= 8 and 3 <= cols <= 8
        for rows, cols in gen.shrink((8, 8)):
            assert rows >= 3 and cols >= 3


class TestSchemeConfigs:
    def test_samples_are_coding_schemes(self):
        gen = g.scheme_configs()
        seen = {id(None)}
        for i in range(30):
            scheme = gen.sample(_rng(i))
            assert isinstance(scheme, CodingScheme)
            seen.add(scheme.n_captures)
        # The generator sweeps more than one capture count.
        assert len(seen) > 2

    def test_covers_encrypted_and_plain(self):
        gen = g.scheme_configs()
        keys = {gen.sample(_rng(i)).key for i in range(40)}
        assert None in keys and any(k is not None for k in keys)
