"""Sweep summary, telemetry spans, and the mutation smoke guarantee."""

import numpy as np
import pytest

from repro import telemetry
from repro.verify import (
    ContractViolation,
    check_that,
    run_mutation_smoke,
    run_verification,
)
from repro.verify.oracles import all_mutants, mutants_for
from repro.verify.suite import MutationReport, VerifySummary


class TestSummary:
    def test_to_text_lists_every_oracle(self):
        summary = run_verification(seed=0, max_examples=1)
        text = summary.to_text()
        for report in summary.reports:
            assert report.name in text
        assert f"{summary.passed}/{len(summary.reports)} oracles ok" in text

    def test_counts(self):
        summary = run_verification(
            seed=0, max_examples=2, names=["ecc.roundtrip"]
        )
        assert summary.passed == 1 and summary.failed == 0
        assert summary.examples_run == 2
        assert summary.ok

    def test_failed_oracle_renders_counterexample(self):
        report_fail = run_verification(
            seed=0, max_examples=1, names=["ecc.roundtrip"]
        ).reports[0]
        # Forge a failing summary to exercise the rendering path.
        summary = VerifySummary(
            seed=0,
            max_examples=1,
            reports=(
                type(report_fail)(
                    name="forged.contract",
                    seed=0,
                    examples=1,
                    passed=False,
                    failure=None,
                ),
            ),
        )
        assert "FAIL" in summary.to_text()
        assert not summary.ok


class TestTelemetry:
    def test_sweep_emits_per_oracle_spans(self):
        sink = telemetry.RingBufferSink()
        telemetry.add_sink(sink)
        try:
            run_verification(seed=0, max_examples=1, names=["ecc.roundtrip"])
        finally:
            telemetry.remove_sink(sink)
        spans = sink.records(type="span")
        names = [s["name"] for s in spans]
        assert "verify.oracle" in names and "verify.sweep" in names
        oracle_span = next(s for s in spans if s["name"] == "verify.oracle")
        assert oracle_span["attrs"]["oracle"] == "ecc.roundtrip"
        assert oracle_span["attrs"]["passed"] is True
        counters = sink.records(type="counter", name="verify.examples")
        assert counters and counters[0]["value"] == 1


class TestMutationSmoke:
    def test_registry_has_mutants_for_key_oracles(self):
        registry = {name for name, _, _ in all_mutants()}
        assert "faults.disabled_identity" in registry  # the fault-plan defect
        assert "ecc.roundtrip" in registry
        assert len(all_mutants()) >= 4

    def test_every_planted_defect_is_caught(self):
        """ISSUE acceptance: the seeded defects demonstrably fail the oracles."""
        reports = run_mutation_smoke(seed=0)
        assert reports, "no mutants registered"
        missed = [r for r in reports if not r.detected]
        assert not missed, [f"{r.oracle}::{r.mutant}" for r in missed]
        for report in reports:
            assert isinstance(report, MutationReport)
            assert report.status == "caught"

    def test_stuck_bit_fault_plan_defect_is_caught_directly(self):
        """The single-bit fault-plan defect, exercised without the harness."""
        fn = mutants_for("faults.disabled_identity")["stuck-single-bit-plan"]
        with pytest.raises(ContractViolation):
            fn(np.random.default_rng(0))

    def test_mutation_smoke_is_deterministic(self):
        first = run_mutation_smoke(seed=3)
        second = run_mutation_smoke(seed=3)
        assert first == second

    def test_a_missed_defect_fails_the_summary(self):
        summary = run_verification(seed=0, max_examples=1, names=["ecc.roundtrip"])
        poisoned = VerifySummary(
            seed=summary.seed,
            max_examples=summary.max_examples,
            reports=summary.reports,
            mutation_reports=(
                MutationReport(
                    oracle="ecc.roundtrip",
                    mutant="hypothetical",
                    detected=False,
                    detail="slipped through",
                ),
            ),
        )
        assert poisoned.missed_mutants == 1
        assert not poisoned.ok
        assert "MISSED" in poisoned.to_text()


def test_check_that_is_exported():
    with pytest.raises(ContractViolation):
        check_that(False, "exported surface works")
