"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_roundtrip_defaults(self):
        args = build_parser().parse_args(["roundtrip"])
        assert args.device == "MSP432P401"
        assert args.copies == 7


class TestCommands:
    def test_list_devices(self, capsys):
        assert main(["list-devices"]) == 0
        out = capsys.readouterr().out
        assert "MSP432P401" in out
        assert "BCM2837" in out
        assert out.count("\n") >= 13  # header + 12 devices

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig06", "tab04", "sec74"):
            assert exp_id in out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "ablation-order"]) == 0
        out = capsys.readouterr().out
        assert "ECC order" in out

    def test_roundtrip_fast(self, capsys):
        code = main([
            "roundtrip", "--fast", "--sram-kib", "2", "--message", "cli test",
        ])
        assert code == 0
        assert "round trip exact" in capsys.readouterr().out

    def test_roundtrip_without_key(self, capsys):
        code = main([
            "roundtrip", "--fast", "--sram-kib", "2", "--key", "",
            "--message", "plain",
        ])
        assert code == 0

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "MSP432P401" in out

    def test_report_writes_combined_artifact(self, capsys, tmp_path, monkeypatch):
        # Shrink the experiment set so the test stays fast.
        from repro import cli

        monkeypatch.setattr(
            cli, "EXPERIMENTS",
            {"ablation-order": cli.EXPERIMENTS["ablation-order"],
             "fig02": cli.EXPERIMENTS["fig02"]},
        )
        out = tmp_path / "report.txt"
        assert main(["report", "--out", str(out)]) == 0
        text = out.read_text()
        assert "[ablation-order]" in text
        assert "[fig02]" in text
        assert "Figure 2" in text

    def test_inspect_clean_device(self, capsys, tmp_path):
        import numpy as np

        from repro.device import make_device
        from repro.io import save_captures

        device = make_device("MSP432P401", rng=400, sram_kib=2)
        samples = device.sram.capture_power_on_states(5)
        path = tmp_path / "caps.json"
        save_captures(path, samples, device_name="MSP432P401")
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_inspect_flags_plaintext_payload(self, capsys, tmp_path):
        from repro.core.payloads import synthetic_image_bytes
        from repro.core.pipeline import InvisibleBits
        from repro.device import make_device
        from repro.harness import ControlBoard
        from repro.io import save_captures

        device = make_device("MSP432P401", rng=401, sram_kib=2)
        board = ControlBoard(device)
        InvisibleBits(board, use_firmware=False).send(
            synthetic_image_bytes(1800, rng=1)
        )
        path = tmp_path / "caps.json"
        save_captures(path, board.capture_power_on_states(5))
        assert main(["inspect", str(path)]) == 1
        assert "SUSPICIOUS" in capsys.readouterr().out

    def test_inspect_bad_row_width(self, tmp_path, capsys):
        import numpy as np

        from repro.io import save_captures

        path = tmp_path / "caps.json"
        save_captures(
            path, np.zeros((1, 1024), dtype=np.uint8) | 1
        )
        assert main(["inspect", str(path), "--row-width", "100"]) == 2

    def test_puf_clone(self, capsys):
        assert main(["puf-clone", "--sram-kib", "1"]) == 0
        out = capsys.readouterr().out
        assert "clone distance" in out
        assert "True" in out

    def test_trng(self, capsys):
        assert main(["trng", "--sram-kib", "2", "--bytes", "32"]) == 0
        out = capsys.readouterr().out
        assert "monobit" in out
        assert "FAIL" not in out

    def test_every_experiment_id_maps_to_a_module(self):
        import importlib

        for exp_id, (module_name, func_name) in EXPERIMENTS.items():
            module = importlib.import_module(f"repro.experiments.{module_name}")
            assert callable(getattr(module, func_name)), exp_id

    def test_faults_show_prints_resolved_plan(self, capsys):
        assert main(["faults", "--show", "--plan", "flaky:0.02@seed=7"]) == 0
        out = capsys.readouterr().out
        assert '"flaky_port"' in out
        assert '"seed": 7' in out

    def test_faults_chaos_roundtrip(self, capsys):
        code = main([
            "faults", "--device", "MSP430G2553", "--sram-kib", "0.5",
            "--rate", "0.2", "--flaky-rate", "0.1", "--schedule",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[exact]" in out
        assert "escalation provenance" in out
        assert "total_captures" in out

    def test_faults_rejects_bad_plan(self, capsys):
        from repro.errors import ConfigurationError

        import pytest

        with pytest.raises(ConfigurationError):
            main(["faults", "--plan", "gremlins:1.0"])

    def test_global_fault_plan_sets_env_for_the_command(self, capsys,
                                                        monkeypatch):
        import os

        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        code = main([
            "--fault-plan", "flaky:0.05", "roundtrip",
            "--device", "MSP430G2553", "--sram-kib", "0.5", "--fast",
        ])
        assert code == 0
        assert "round trip exact" in capsys.readouterr().out
        assert "REPRO_FAULT_PLAN" not in os.environ  # restored afterwards

    def test_global_fault_plan_validates_early(self):
        import pytest

        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["--fault-plan", "bogus:x", "list-devices"])


class TestVerifyCommand:
    def test_verify_list(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        assert "ecc.roundtrip" in out
        assert "capture.batch_vs_loop" in out

    def test_verify_selected_oracles(self, capsys):
        code = main([
            "verify", "--examples", "2", "--seed", "3",
            "--oracle", "ecc.roundtrip", "--oracle", "crypto.ctr_involution",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2/2 oracles ok" in out
        assert "ecc.roundtrip" in out

    def test_verify_unknown_oracle(self, capsys):
        assert main(["verify", "--oracle", "bogus.name"]) == 2
        assert "unknown oracle" in capsys.readouterr().err

    def test_verify_mutation_smoke(self, capsys):
        code = main([
            "verify", "--examples", "1", "--mutation-smoke",
            "--oracle", "bitutils.pack_roundtrip",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "planted defects caught" in out
        assert "MISSED" not in out
