"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_roundtrip_defaults(self):
        args = build_parser().parse_args(["roundtrip"])
        assert args.device == "MSP432P401"
        assert args.copies == 7


class TestCommands:
    def test_list_devices(self, capsys):
        assert main(["list-devices"]) == 0
        out = capsys.readouterr().out
        assert "MSP432P401" in out
        assert "BCM2837" in out
        assert out.count("\n") >= 13  # header + 12 devices

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig06", "tab04", "sec74"):
            assert exp_id in out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "ablation-order"]) == 0
        out = capsys.readouterr().out
        assert "ECC order" in out

    def test_roundtrip_fast(self, capsys):
        code = main([
            "roundtrip", "--fast", "--sram-kib", "2", "--message", "cli test",
        ])
        assert code == 0
        assert "round trip exact" in capsys.readouterr().out

    def test_roundtrip_without_key(self, capsys):
        code = main([
            "roundtrip", "--fast", "--sram-kib", "2", "--key", "",
            "--message", "plain",
        ])
        assert code == 0

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "MSP432P401" in out

    def test_report_writes_combined_artifact(self, capsys, tmp_path, monkeypatch):
        # Shrink the experiment set so the test stays fast.
        from repro import cli

        monkeypatch.setattr(
            cli, "EXPERIMENTS",
            {"ablation-order": cli.EXPERIMENTS["ablation-order"],
             "fig02": cli.EXPERIMENTS["fig02"]},
        )
        out = tmp_path / "report.txt"
        assert main(["report", "--out", str(out)]) == 0
        text = out.read_text()
        assert "[ablation-order]" in text
        assert "[fig02]" in text
        assert "Figure 2" in text

    def test_inspect_clean_device(self, capsys, tmp_path):
        import numpy as np

        from repro.device import make_device
        from repro.io import save_captures

        device = make_device("MSP432P401", rng=400, sram_kib=2)
        samples = device.sram.capture_power_on_states(5)
        path = tmp_path / "caps.json"
        save_captures(path, samples, device_name="MSP432P401")
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_inspect_flags_plaintext_payload(self, capsys, tmp_path):
        from repro.core.payloads import synthetic_image_bytes
        from repro.core.pipeline import InvisibleBits
        from repro.device import make_device
        from repro.harness import ControlBoard
        from repro.io import save_captures

        device = make_device("MSP432P401", rng=401, sram_kib=2)
        board = ControlBoard(device)
        InvisibleBits(board, use_firmware=False).send(
            synthetic_image_bytes(1800, rng=1)
        )
        path = tmp_path / "caps.json"
        save_captures(path, board.capture_power_on_states(5))
        assert main(["inspect", str(path)]) == 1
        assert "SUSPICIOUS" in capsys.readouterr().out

    def test_inspect_bad_row_width(self, tmp_path, capsys):
        import numpy as np

        from repro.io import save_captures

        path = tmp_path / "caps.json"
        save_captures(
            path, np.zeros((1, 1024), dtype=np.uint8) | 1
        )
        assert main(["inspect", str(path), "--row-width", "100"]) == 2

    def test_puf_clone(self, capsys):
        assert main(["puf-clone", "--sram-kib", "1"]) == 0
        out = capsys.readouterr().out
        assert "clone distance" in out
        assert "True" in out

    def test_trng(self, capsys):
        assert main(["trng", "--sram-kib", "2", "--bytes", "32"]) == 0
        out = capsys.readouterr().out
        assert "monobit" in out
        assert "FAIL" not in out

    def test_every_experiment_id_maps_to_a_module(self):
        import importlib

        for exp_id, (module_name, func_name) in EXPERIMENTS.items():
            module = importlib.import_module(f"repro.experiments.{module_name}")
            assert callable(getattr(module, func_name)), exp_id

    def test_faults_show_prints_resolved_plan(self, capsys):
        assert main(["faults", "--show", "--plan", "flaky:0.02@seed=7"]) == 0
        out = capsys.readouterr().out
        assert '"flaky_port"' in out
        assert '"seed": 7' in out

    def test_faults_chaos_roundtrip(self, capsys):
        code = main([
            "faults", "--device", "MSP430G2553", "--sram-kib", "0.5",
            "--rate", "0.2", "--flaky-rate", "0.1", "--schedule",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[exact]" in out
        assert "escalation provenance" in out
        assert "total_captures" in out

    def test_faults_rejects_bad_plan(self, capsys):
        from repro.errors import ConfigurationError

        import pytest

        with pytest.raises(ConfigurationError):
            main(["faults", "--plan", "gremlins:1.0"])

    def test_global_fault_plan_sets_env_for_the_command(self, capsys,
                                                        monkeypatch):
        import os

        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        code = main([
            "--fault-plan", "flaky:0.05", "roundtrip",
            "--device", "MSP430G2553", "--sram-kib", "0.5", "--fast",
        ])
        assert code == 0
        assert "round trip exact" in capsys.readouterr().out
        assert "REPRO_FAULT_PLAN" not in os.environ  # restored afterwards

    def test_global_fault_plan_validates_early(self):
        import pytest

        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["--fault-plan", "bogus:x", "list-devices"])


class TestTelemetryCommand:
    def test_summarize_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["telemetry", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_summarize_empty_trace_diagnoses_and_exits_1(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["telemetry", "summarize", str(trace)]) == 1
        err = capsys.readouterr().err
        assert "trace is empty" in err
        assert "REPRO_TRACE" in err

    def test_summarize_real_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = main([
            "--trace", str(trace), "roundtrip", "--fast",
            "--sram-kib", "2", "--message", "hi",
        ])
        assert code == 0
        assert main(["telemetry", "summarize", str(trace)]) == 0
        assert "channel.send" in capsys.readouterr().out


@pytest.fixture
def traced_run(tmp_path):
    """A real JSONL trace plus the metrics exposition from one roundtrip."""
    trace = tmp_path / "trace.jsonl"
    prom = tmp_path / "metrics.prom"
    code = main([
        "--trace", str(trace), "--metrics-out", str(prom),
        "roundtrip", "--fast", "--sram-kib", "2", "--message", "hi",
    ])
    assert code == 0
    return trace, prom


class TestMonitorCommand:
    def test_report_on_healthy_trace(self, traced_run, capsys):
        trace, _ = traced_run
        assert main(["monitor", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "# Fleet monitor report" in out
        assert "raw-ber-ceiling" in out

    def test_report_exits_1_when_rule_fires(self, traced_run, capsys):
        trace, _ = traced_run
        # An absurd SLO: any successful roundtrip violates it.
        code = main([
            "monitor", "report", str(trace), "--ber-ceiling", "0.0001",
        ])
        assert code == 1
        assert "FIRING" in capsys.readouterr().out

    def test_report_html_to_file(self, traced_run, tmp_path, capsys):
        trace, _ = traced_run
        out = tmp_path / "report.html"
        assert main([
            "monitor", "report", str(trace), "--html", "--out", str(out),
        ]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_watch_once_renders_ascii_dashboard(self, traced_run, capsys):
        trace, _ = traced_run
        assert main(["monitor", "watch", str(trace), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro fleet monitor" in out
        assert all(ord(ch) < 128 for ch in out)

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["monitor", "report", str(tmp_path / "no.jsonl")]) == 2
        assert main(["monitor", "watch", str(tmp_path / "no.jsonl"),
                     "--once"]) == 2


class TestMetricsOutOption:
    def test_exposition_written_after_command(self, traced_run):
        _, prom = traced_run
        text = prom.read_text()
        assert "# TYPE repro_messages_total counter" in text
        assert 'phase="send"' in text
        assert "repro_capture_ber_bucket" in text

    def test_registry_state_restored(self, traced_run):
        from repro import metrics

        assert not metrics.registry.enabled


class TestBenchCommand:
    @staticmethod
    def _snapshot(path, value):
        import json

        path.write_text(json.dumps({
            "schema": 1,
            "metrics": {
                "batch_capture_ms": {"value": value, "better": "lower"},
            },
        }))
        return path

    def test_compare_ok(self, tmp_path, capsys):
        old = self._snapshot(tmp_path / "old.json", 100.0)
        new = self._snapshot(tmp_path / "new.json", 105.0)
        assert main(["bench", "compare", str(old), str(new)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_regression_exits_1(self, tmp_path, capsys):
        old = self._snapshot(tmp_path / "old.json", 100.0)
        new = self._snapshot(tmp_path / "new.json", 130.0)
        assert main(["bench", "compare", str(old), str(new)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_gate_is_tunable(self, tmp_path):
        old = self._snapshot(tmp_path / "old.json", 100.0)
        new = self._snapshot(tmp_path / "new.json", 130.0)
        assert main(["bench", "compare", str(old), str(new),
                     "--gate", "50"]) == 0

    def test_missing_snapshot_exits_2(self, tmp_path, capsys):
        old = self._snapshot(tmp_path / "old.json", 1.0)
        assert main(["bench", "compare", str(old),
                     str(tmp_path / "absent.json")]) == 2

    def test_malformed_snapshot_exits_2(self, tmp_path, capsys):
        old = self._snapshot(tmp_path / "old.json", 1.0)
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a snapshot"}')
        assert main(["bench", "compare", str(old), str(bad)]) == 2
        assert capsys.readouterr().err


class TestVerifyCommand:
    def test_verify_list(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        assert "ecc.roundtrip" in out
        assert "capture.batch_vs_loop" in out

    def test_verify_selected_oracles(self, capsys):
        code = main([
            "verify", "--examples", "2", "--seed", "3",
            "--oracle", "ecc.roundtrip", "--oracle", "crypto.ctr_involution",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2/2 oracles ok" in out
        assert "ecc.roundtrip" in out

    def test_verify_unknown_oracle(self, capsys):
        assert main(["verify", "--oracle", "bogus.name"]) == 2
        assert "unknown oracle" in capsys.readouterr().err

    def test_verify_mutation_smoke(self, capsys):
        code = main([
            "verify", "--examples", "1", "--mutation-smoke",
            "--oracle", "bitutils.pack_roundtrip",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "planted defects caught" in out
        assert "MISSED" not in out


class TestGlobalFlagPositions:
    """The shared parent parser: global flags before OR after the command."""

    def test_trace_after_subcommand(self, tmp_path, capsys):
        trace = tmp_path / "after.jsonl"
        code = main([
            "roundtrip", "--trace", str(trace), "--fast",
            "--device", "MSP430G2553", "--sram-kib", "0.25", "--message", "hi",
        ])
        assert code == 0
        assert trace.exists() and trace.stat().st_size > 0

    def test_trace_before_subcommand_still_works(self, tmp_path):
        trace = tmp_path / "before.jsonl"
        code = main([
            "--trace", str(trace), "roundtrip", "--fast",
            "--device", "MSP430G2553", "--sram-kib", "0.25", "--message", "hi",
        ])
        assert code == 0
        assert trace.exists() and trace.stat().st_size > 0

    def test_root_value_not_clobbered_by_subparser(self, tmp_path):
        """SUPPRESS defaults: the subparser must not reset a root flag."""
        args = build_parser().parse_args([
            "--metrics-out", str(tmp_path / "m.prom"), "list-devices",
        ])
        assert args.metrics_out == str(tmp_path / "m.prom")

    def test_metrics_out_after_subcommand(self, tmp_path, capsys):
        out = tmp_path / "m.prom"
        code = main(["list-devices", "--metrics-out", str(out)])
        assert code == 0
        assert "repro" in out.read_text() or out.read_text() == ""

    def test_every_subcommand_accepts_the_global_flags(self):
        parser = build_parser()
        # Probing via parse_args would run commands; inspect the actions.
        sub = next(
            action for action in parser._actions
            if isinstance(action, __import__("argparse")._SubParsersAction)
        )
        for name, subparser in sub.choices.items():
            flags = {
                flag
                for action in subparser._actions
                for flag in action.option_strings
            }
            assert {"--trace", "--fault-plan", "--metrics-out"} <= flags, name


class TestServeAndLoadCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 4
        assert args.port == 8642
        assert args.duration is None

    def test_load_parser_defaults(self):
        args = build_parser().parse_args(["load"])
        assert args.messages == 200
        assert args.url.endswith(":8642")

    def test_serve_duration_runs_and_drains(self, capsys):
        code = main([
            "serve", "--shards", "2", "--port", "0", "--duration", "0.3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving 2 shards on http://127.0.0.1:" in out
        assert '"completed"' in out  # final stats JSON

    def test_serve_rejects_unknown_fault_shard(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="fault_shards"):
            main([
                "serve", "--shards", "2", "--port", "0",
                "--duration", "0.1", "--fault-shards", "shard-9",
                "--shard-fault-plan", "flaky:0.5",
            ])

    def test_load_against_dead_endpoint_exits_nonzero(self, capsys):
        code = main([
            "load", "--url", "http://127.0.0.1:9",  # discard port: refused
            "--messages", "2", "--concurrency", "1", "--timeout", "2",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "soak failed" in captured.err


class TestTraceCommand:
    def test_search_lists_roundtrip_traces(self, traced_run, capsys):
        trace, _ = traced_run
        assert main(["trace", "search", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace(s)" in out
        assert "channel.send" in out

    def test_search_no_match_exits_1(self, traced_run, capsys):
        trace, _ = traced_run
        code = main([
            "trace", "search", str(trace), "--min-dur-ms", "1e12",
        ])
        assert code == 1
        assert "no traces matched" in capsys.readouterr().out

    def test_search_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", "search", str(tmp_path / "no.jsonl")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_show_renders_tree_from_prefix(self, traced_run, capsys):
        from repro.telemetry import load_records, traceview

        trace, _ = traced_run
        summaries = traceview.search_traces(
            load_records(trace), name="channel.send"
        )
        assert summaries
        trace_id = summaries[0].trace_id
        assert main(["trace", "show", str(trace), trace_id[:10]]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"trace {trace_id}:")
        assert "channel.send" in out

    def test_show_without_id_exits_2(self, traced_run, capsys):
        trace, _ = traced_run
        assert main(["trace", "show", str(trace)]) == 2
        assert "TRACE_ID" in capsys.readouterr().err

    def test_show_unknown_id_exits_2(self, traced_run, capsys):
        trace, _ = traced_run
        assert main(["trace", "show", str(trace), "ffffffff"]) == 2
        assert "no trace matching" in capsys.readouterr().err

    def test_critical_path_aggregate(self, traced_run, capsys):
        trace, _ = traced_run
        assert main(["trace", "critical-path", str(trace)]) == 0
        assert "aggregate critical path" in capsys.readouterr().out

    def test_critical_path_single_trace(self, traced_run, capsys):
        from repro.telemetry import load_records, traceview

        trace, _ = traced_run
        trace_id = traceview.search_traces(load_records(trace))[0].trace_id
        code = main(["trace", "critical-path", str(trace), trace_id])
        assert code == 0
        assert f"critical path of trace {trace_id}" in capsys.readouterr().out


class TestProfileOutOption:
    def test_profiles_any_command(self, tmp_path, capsys):
        out = tmp_path / "profile.txt"
        code = main([
            "--profile-out", str(out), "roundtrip", "--fast",
            "--sram-kib", "2", "--message", "hi",
        ])
        assert code == 0
        text = out.read_text()
        assert "# repro-profile mode=wall" in text

    def test_profile_mode_cpu(self, tmp_path):
        out = tmp_path / "profile.txt"
        code = main([
            "--profile-out", str(out), "--profile-mode", "cpu",
            "list-devices",
        ])
        assert code == 0
        assert "mode=cpu" in out.read_text()
