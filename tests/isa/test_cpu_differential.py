"""Differential testing of the CPU: emulator vs a Python reference.

Hypothesis generates random straight-line arithmetic programs; a tiny
Python interpreter computes the architecturally expected register file and
the MiniCore emulator must agree exactly.  This catches encode/decode and
masking bugs that hand-written cases miss.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.isa.memory import MemoryBus, RamRegion, RomRegion

_MASK = 0xFFFF_FFFF

#: (mnemonic, reference lambda) for R-type ops.
R_OPS = {
    "add": lambda a, b: (a + b) & _MASK,
    "sub": lambda a, b: (a - b) & _MASK,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "mul": lambda a, b: (a * b) & _MASK,
    "sll": lambda a, b: (a << (b & 31)) & _MASK,
    "srl": lambda a, b: (a & _MASK) >> (b & 31),
}

I_OPS = {
    "addi": lambda a, imm: (a + imm) & _MASK,
    "andi": lambda a, imm: a & (imm & 0xFFFF),
    "ori": lambda a, imm: a | (imm & 0xFFFF),
    "xori": lambda a, imm: a ^ (imm & 0xFFFF),
    "slli": lambda a, imm: (a << (imm & 31)) & _MASK,
    "srli": lambda a, imm: (a & _MASK) >> (imm & 31),
}


@st.composite
def straight_line_program(draw):
    n_instructions = draw(st.integers(1, 30))
    lines = []
    reference_ops = []
    for _ in range(n_instructions):
        if draw(st.booleans()):
            op = draw(st.sampled_from(sorted(R_OPS)))
            rd = draw(st.integers(1, 14))
            rs1 = draw(st.integers(0, 14))
            rs2 = draw(st.integers(0, 14))
            lines.append(f"{op} r{rd}, r{rs1}, r{rs2}")
            reference_ops.append(("r", op, rd, rs1, rs2))
        else:
            op = draw(st.sampled_from(sorted(I_OPS)))
            rd = draw(st.integers(1, 14))
            rs1 = draw(st.integers(0, 14))
            if op == "addi":
                imm = draw(st.integers(-0x8000, 0x7FFF))
            elif op in ("slli", "srli"):
                imm = draw(st.integers(0, 31))
            else:
                imm = draw(st.integers(0, 0xFFFF))
            lines.append(f"{op} r{rd}, r{rs1}, {imm}")
            reference_ops.append(("i", op, rd, rs1, imm))
    lines.append("halt")
    return "\n".join(lines) + "\n", reference_ops


def reference_execute(reference_ops):
    regs = [0] * 16
    for kind, op, rd, rs1, operand in reference_ops:
        if kind == "r":
            regs[rd] = R_OPS[op](regs[rs1], regs[operand])
        else:
            regs[rd] = I_OPS[op](regs[rs1], operand)
        regs[0] = regs[0]  # r0 is a normal register in MiniCore
    return regs


@given(case=straight_line_program())
@settings(max_examples=120, deadline=None)
def test_emulator_matches_reference(case):
    source, reference_ops = case
    program = assemble(source)
    bus = MemoryBus()
    rom = RomRegion(0, 64 * 1024)
    rom.program(program.image)
    bus.add_region(rom)
    bus.add_region(RamRegion(0x2000_0000, 4096))
    cpu = CPU(bus)
    assert cpu.run(10_000) == "halted"
    assert cpu.regs == reference_execute(reference_ops)


@given(
    values=st.lists(st.integers(0, _MASK), min_size=2, max_size=8),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_store_load_round_trip_random_words(values, seed):
    """SW/LW round-trips arbitrary 32-bit words through RAM."""
    lines = ["lui r1, 0x2000"]
    for index, value in enumerate(values):
        hi = (value >> 16) & 0xFFFF
        lo = value & 0xFFFF
        lines.append(f"lui r2, {hi:#x}")
        if lo:
            lines.append(f"ori r2, r2, {lo:#x}")
        lines.append(f"sw r2, {4 * index}(r1)")
    for index in range(len(values)):
        lines.append(f"lw r{3 + index % 10}, {4 * index}(r1)")
    lines.append("halt")
    program = assemble("\n".join(lines) + "\n")
    bus = MemoryBus()
    rom = RomRegion(0, 64 * 1024)
    rom.program(program.image)
    bus.add_region(rom)
    bus.add_region(RamRegion(0x2000_0000, 4096))
    cpu = CPU(bus)
    assert cpu.run(10_000) == "halted"
    for index, value in enumerate(values):
        assert bus.load_word(0x2000_0000 + 4 * index) == value
