"""Unit tests for the protocol firmware generators."""

import numpy as np
import pytest

from repro.crypto.prng import NormalOperationPrng
from repro.device.catalog import device_spec
from repro.errors import ConfigurationError
from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.isa.memory import SRAM_BASE, MemoryBus, RamRegion, RomRegion, SramRegion
from repro.isa.programs import (
    camouflage_program,
    fill_program,
    payload_writer_program,
    prng_workload_program,
    retention_program,
)
from repro.sram import SRAMArray


def build_machine(source, *, sram_kib=1, rng=0):
    tech = device_spec("MSP432P401").technology
    arr = SRAMArray.from_kib(sram_kib, tech, rng=rng)
    arr.apply_power()
    prog = assemble(source)
    bus = MemoryBus()
    rom = RomRegion(0, 1 << 20)
    rom.program(prog.image)
    bus.add_region(rom)
    region = SramRegion(SRAM_BASE, arr)
    bus.add_region(region)
    cpu = CPU(bus, reset_pc=prog.entry_point)
    return cpu, region, prog


class TestPayloadWriter:
    def test_copies_payload_and_spins(self):
        payload = bytes(range(256)) * 2
        cpu, region, _ = build_machine(payload_writer_program(payload))
        assert cpu.run(100_000) == "spinning"
        assert region.read_bytes(0, len(payload)) == payload

    def test_pads_to_word_boundary(self):
        payload = b"\xAA\xBB\xCC"  # 3 bytes
        cpu, region, _ = build_machine(payload_writer_program(payload))
        cpu.run(10_000)
        assert region.read_bytes(0, 4) == b"\xAA\xBB\xCC\x00"

    def test_empty_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            payload_writer_program(b"")

    def test_sram_untouched_beyond_payload(self):
        payload = b"\xFF" * 64
        cpu, region, _ = build_machine(payload_writer_program(payload))
        before = region.array.read()[64 * 8 :].copy()
        cpu.run(10_000)
        assert np.array_equal(region.array.read()[64 * 8 :], before)


class TestRetention:
    def test_never_touches_sram(self):
        cpu, region, _ = build_machine(retention_program())
        before = region.array.read().copy()
        assert cpu.run(100) == "spinning"
        assert np.array_equal(region.array.read(), before)

    def test_spins_immediately(self):
        cpu, _, _ = build_machine(retention_program())
        assert cpu.run(10) == "spinning"


class TestCamouflage:
    def test_fills_scratch_buffer_then_parks(self):
        cpu, region, _ = build_machine(camouflage_program(words=32))
        assert cpu.run(10_000) == "spinning"
        words = [region.load_word(SRAM_BASE + 4 * i) for i in range(32)]
        # Knuth-hash pattern: all distinct, looks like work.
        assert len(set(words)) == 32

    def test_rejects_zero_words(self):
        with pytest.raises(ConfigurationError):
            camouflage_program(words=0)


class TestFill:
    @pytest.mark.parametrize("value", [0, 1])
    def test_fills_whole_sram(self, value):
        src = fill_program(value, sram_bytes=1024)
        cpu, region, _ = build_machine(src)
        assert cpu.run(10_000) == "spinning"
        bits = region.array.read()
        assert bits.all() if value else not bits.any()

    def test_rejects_bad_value(self):
        with pytest.raises(ConfigurationError):
            fill_program(2, sram_bytes=64)

    def test_rejects_unaligned_size(self):
        with pytest.raises(ConfigurationError):
            fill_program(1, sram_bytes=63)


class TestPrngWorkload:
    def test_matches_reference_generator(self):
        src = prng_workload_program(sram_bytes=256, lfsr_seed=0xACE1)
        prog = assemble(src)
        bus = MemoryBus()
        rom = RomRegion(0, 1 << 16)
        rom.program(prog.image)
        bus.add_region(rom)
        bus.add_region(RamRegion(SRAM_BASE, 4096))
        cpu = CPU(bus, reset_pc=prog.entry_point)
        outer = prog.symbols["outer"]
        seen = 0
        while seen < 2:
            if cpu.pc == outer:
                seen += 1
            cpu.step()
        firmware = [bus.load_word(SRAM_BASE + 4 * i) for i in range(64)]
        assert firmware == NormalOperationPrng(0xACE1).sweep(64)

    def test_successive_sweeps_differ(self):
        src = prng_workload_program(sram_bytes=64, lfsr_seed=1)
        prog = assemble(src)
        bus = MemoryBus()
        rom = RomRegion(0, 1 << 16)
        rom.program(prog.image)
        bus.add_region(rom)
        bus.add_region(RamRegion(SRAM_BASE, 4096))
        cpu = CPU(bus, reset_pc=prog.entry_point)
        outer = prog.symbols["outer"]
        sweeps, seen = [], 0
        while seen < 3:
            if cpu.pc == outer:
                seen += 1
                if seen >= 2:
                    sweeps.append([bus.load_word(SRAM_BASE + 4 * i) for i in range(16)])
            cpu.step()
        assert sweeps[0] != sweeps[1]

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            prng_workload_program(sram_bytes=64, lfsr_seed=0)
