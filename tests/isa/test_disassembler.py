"""Unit tests for the disassembler."""

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_word
from repro.isa.opcodes import Opcode, encode


def test_unknown_opcode_renders_as_word():
    word = (0x3F << 26) | 0x123
    assert disassemble_word(word).startswith(".word")


def test_branch_target_rendered_absolute():
    # beq r1, r2, +2 words from address 0x100
    word = encode(Opcode.BEQ, rd=1, rs1=2, imm=2)
    text = disassemble_word(word, address=0x100)
    assert text == "beq r1, r2, 0x10c"


def test_j_type():
    assert disassemble_word(encode(Opcode.JMP, imm=0x40)) == "jmp 0x40"


def test_full_image_listing():
    prog = assemble("nop\nhalt\n")
    lines = disassemble(prog.image)
    assert lines[0].endswith("nop")
    assert lines[1].endswith("halt")
    assert lines[0].startswith("0x00000000:")


def test_listing_pads_partial_words():
    lines = disassemble(b"\x00\x00\x00\x00\x01")
    assert len(lines) == 2


def test_negative_offset_memory_operand():
    word = encode(Opcode.SW, rd=3, rs1=4, imm=-8)
    assert disassemble_word(word) == "sw r3, -8(r4)"
