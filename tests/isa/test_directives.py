"""Unit tests for the .ascii and .align assembler directives."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble


def test_ascii_stores_text_padded():
    prog = assemble('.ascii "hello"\n')
    assert prog.image[:5] == b"hello"
    assert prog.image[5:8] == b"\x00\x00\x00"
    assert len(prog.image) == 8


def test_ascii_exact_word_multiple():
    prog = assemble('.ascii "word"\n')
    assert prog.image == b"word"


def test_ascii_label_addressable():
    src = 'jmp code\nmsg:\n.ascii "hi"\ncode:\nhalt\n'
    prog = assemble(src)
    assert prog.symbols["msg"] == 4
    assert prog.symbols["code"] == 8


def test_ascii_requires_quotes():
    with pytest.raises(AssemblerError):
        assemble(".ascii hello\n")


def test_ascii_rejects_non_ascii():
    with pytest.raises((AssemblerError, UnicodeEncodeError)):
        assemble('.ascii "héllo"\n')


def test_align_pads_location():
    src = "nop\n.align 16\ndata:\n.word 1\n"
    prog = assemble(src)
    assert prog.symbols["data"] == 16


def test_align_noop_when_already_aligned():
    src = ".align 4\nfirst:\nnop\n"
    prog = assemble(src)
    assert prog.symbols["first"] == 0


def test_align_rejects_non_power_of_two():
    with pytest.raises(AssemblerError):
        assemble(".align 12\nnop\n")
    with pytest.raises(AssemblerError):
        assemble(".align 2\nnop\n")


def test_align_then_code_executes():
    from repro.isa.cpu import CPU
    from repro.isa.memory import MemoryBus, RomRegion

    src = "jmp go\n.align 32\ngo:\naddi r1, r0, 7\nhalt\n"
    prog = assemble(src)
    bus = MemoryBus()
    rom = RomRegion(0, 4096)
    rom.program(prog.image)
    bus.add_region(rom)
    cpu = CPU(bus)
    assert cpu.run(100) == "halted"
    assert cpu.regs[1] == 7
