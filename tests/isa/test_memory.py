"""Unit tests for the memory bus and regions."""

import numpy as np
import pytest

from repro.device.catalog import device_spec
from repro.errors import ConfigurationError, EmulatorError
from repro.isa.memory import (
    SRAM_BASE,
    MemoryBus,
    RamRegion,
    RomRegion,
    SramRegion,
)
from repro.sram import SRAMArray


class TestBusDispatch:
    def test_routes_to_correct_region(self):
        bus = MemoryBus()
        bus.add_region(RamRegion(0x0, 0x100, "low"))
        bus.add_region(RamRegion(0x1000, 0x100, "high"))
        bus.store_word(0x1004, 7)
        assert bus.load_word(0x1004) == 7
        assert bus.load_word(0x4) == 0

    def test_overlap_rejected(self):
        bus = MemoryBus()
        bus.add_region(RamRegion(0x0, 0x100))
        with pytest.raises(ConfigurationError):
            bus.add_region(RamRegion(0x80, 0x100))

    def test_hole_faults(self):
        bus = MemoryBus()
        bus.add_region(RamRegion(0x0, 0x100))
        with pytest.raises(EmulatorError):
            bus.load_word(0x200)

    def test_unaligned_faults(self):
        bus = MemoryBus()
        bus.add_region(RamRegion(0x0, 0x100))
        with pytest.raises(EmulatorError):
            bus.load_word(0x2)


class TestRom:
    def test_program_and_read(self):
        rom = RomRegion(0, 0x100)
        rom.program(b"\x78\x56\x34\x12")
        assert rom.load_word(0) == 0x12345678  # little-endian

    def test_cpu_store_rejected(self):
        rom = RomRegion(0, 0x100)
        with pytest.raises(EmulatorError):
            rom.store_word(0, 1)

    def test_oversized_image_rejected(self):
        rom = RomRegion(0, 8)
        with pytest.raises(ConfigurationError):
            rom.program(b"\x00" * 16)


class TestSramRegion:
    @pytest.fixture
    def region(self):
        tech = device_spec("MSP432P401").technology
        arr = SRAMArray.from_kib(1, tech, rng=0)
        arr.apply_power()
        return SramRegion(SRAM_BASE, arr)

    def test_word_round_trip(self, region):
        region.store_word(SRAM_BASE + 8, 0xCAFEBABE)
        assert region.load_word(SRAM_BASE + 8) == 0xCAFEBABE

    def test_bulk_bytes_round_trip(self, region):
        data = bytes(range(64))
        region.write_bytes(data, offset=16)
        assert region.read_bytes(16, 64) == data

    def test_word_and_byte_views_consistent(self, region):
        region.write_bytes(b"\x01\x02\x03\x04", offset=0)
        assert region.load_word(SRAM_BASE) == 0x01020304

    def test_writes_reach_the_analog_array(self, region):
        region.store_word(SRAM_BASE, 0xFFFFFFFF)
        assert region.array.read(32).all()
