"""Unit tests for instruction encoding primitives."""

import pytest

from repro.isa.opcodes import (
    FORMATS,
    Format,
    Opcode,
    decode_fields,
    encode,
    sign_extend_16,
)


def test_every_opcode_has_a_format():
    assert set(FORMATS) == set(Opcode)


def test_encode_decode_r_type():
    word = encode(Opcode.ADD, rd=3, rs1=4, rs2=5)
    op, rd, rs1, rs2, _, _ = decode_fields(word)
    assert Opcode(op) is Opcode.ADD
    assert (rd, rs1, rs2) == (3, 4, 5)


def test_encode_decode_i_type():
    word = encode(Opcode.ADDI, rd=1, rs1=2, imm=-5)
    op, rd, rs1, _, imm16, _ = decode_fields(word)
    assert Opcode(op) is Opcode.ADDI
    assert (rd, rs1) == (1, 2)
    assert sign_extend_16(imm16) == -5


def test_encode_decode_j_type():
    word = encode(Opcode.JMP, imm=0x1234)
    op, _, _, _, _, target = decode_fields(word)
    assert Opcode(op) is Opcode.JMP
    assert target == 0x1234


def test_j_type_max_range():
    target = (0x03FF_FFFF << 2)  # largest encodable word address
    word = encode(Opcode.JMP, imm=target)
    assert decode_fields(word)[5] == target


def test_sign_extend():
    assert sign_extend_16(0x0005) == 5
    assert sign_extend_16(0xFFFF) == -1
    assert sign_extend_16(0x8000) == -32768
    assert sign_extend_16(0x7FFF) == 32767


def test_n_type_encodes_opcode_only():
    assert encode(Opcode.NOP) == 0
    assert encode(Opcode.HALT) == (0x01 << 26)


def test_formats_spotcheck():
    assert FORMATS[Opcode.ADD] is Format.R
    assert FORMATS[Opcode.LW] is Format.I
    assert FORMATS[Opcode.JMP] is Format.J
    assert FORMATS[Opcode.HALT] is Format.N
