"""Unit tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.opcodes import WORD_BYTES


def word_at(program, address):
    off = address - program.base_address
    return int.from_bytes(program.image[off : off + WORD_BYTES], "little")


class TestBasics:
    def test_single_instruction(self):
        prog = assemble("nop\n")
        assert prog.n_words == 1

    def test_labels_resolve(self):
        prog = assemble("start:\n    jmp start\n")
        assert prog.symbols["start"] == 0

    def test_entry_point_defaults_to_base(self):
        prog = assemble("nop\n", base_address=0x100)
        assert prog.entry_point == 0x100

    def test_start_label_sets_entry(self):
        prog = assemble(".word 0\n_start:\n    nop\n")
        assert prog.entry_point == WORD_BYTES

    def test_comments_and_blanks(self):
        prog = assemble("; leading comment\n\nnop  # trailing\n")
        assert prog.n_words == 1

    def test_case_insensitive_mnemonics(self):
        a = assemble("ADD r1, r2, r3\n")
        b = assemble("add r1, r2, r3\n")
        assert a.image == b.image


class TestOperands:
    def test_memory_operand(self):
        prog = assemble("lw r1, 8(r2)\nsw r1, -4(r3)\n")
        assert prog.n_words == 2

    def test_memory_operand_default_offset(self):
        a = assemble("lw r1, (r2)\n")
        b = assemble("lw r1, 0(r2)\n")
        assert a.image == b.image

    def test_hi_lo_relocation(self):
        src = "lui r1, hi(data)\nori r1, r1, lo(data)\n.org 0x12344\ndata:\n.word 1\n"
        prog = assemble(src)
        lui = word_at(prog, 0)
        assert (lui & 0xFFFF) == 0x0001  # hi(0x12344)
        ori = word_at(prog, 4)
        assert (ori & 0xFFFF) == 0x2344  # lo(0x12344)

    def test_hex_and_binary_literals(self):
        prog = assemble(".word 0xDEADBEEF, 0b1010\n")
        assert word_at(prog, 0) == 0xDEADBEEF
        assert word_at(prog, 4) == 0b1010

    def test_bytes_directive_little_endian_padded(self):
        prog = assemble(".bytes 0x11, 0x22, 0x33\n")
        assert word_at(prog, 0) == 0x00332211


class TestBranches:
    def test_forward_branch(self):
        src = "beq r1, r2, done\nnop\ndone:\n    halt\n"
        prog = assemble(src)
        imm = word_at(prog, 0) & 0xFFFF
        assert imm == 1  # skip exactly the one nop

    def test_backward_branch_negative_offset(self):
        src = "loop:\n    nop\n    bne r1, r2, loop\n"
        prog = assemble(src)
        imm = word_at(prog, 4) & 0xFFFF
        assert imm == 0xFFFE  # -2 words


class TestErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "frobnicate r1\n",
            "add r1, r2\n",
            "add r1, r2, r99\n",
            "lw r1, r2\n",
            "jmp 0x3\n",  # unaligned target
            "lui r1, 0x1FFFF\n",
            "addi r1, r0, 40000\n",
            "dup:\nnop\ndup:\nnop\n",
            ".org 0x10\n.org 0x4\n",
            "beq r1, r2, nowhere\n",
            "",
        ],
    )
    def test_rejected_sources(self, src):
        with pytest.raises(AssemblerError):
            assemble(src)

    def test_error_carries_line_number(self):
        try:
            assemble("nop\nbogus r1\n")
        except AssemblerError as exc:
            assert "line 2" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected AssemblerError")

    def test_unaligned_base_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("nop\n", base_address=2)


class TestRoundTrip:
    def test_disassembler_round_trip(self):
        from repro.isa.disassembler import disassemble_word

        src_lines = [
            "add r1, r2, r3",
            "addi r4, r5, -7",
            "lw r6, 12(r7)",
            "sw r6, -8(r7)",
            "lui r8, 0xbeef",
            "jr r9",
            "halt",
        ]
        prog = assemble("\n".join(src_lines) + "\n")
        for i, line in enumerate(src_lines):
            word = word_at(prog, 4 * i)
            assert disassemble_word(word, 4 * i) == line
