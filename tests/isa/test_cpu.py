"""Unit tests for the MiniCore CPU emulator."""

import pytest

from repro.errors import EmulatorError
from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.isa.memory import MemoryBus, RamRegion, RomRegion


def run_program(src, *, max_steps=10_000, ram_base=0x2000_0000):
    prog = assemble(src)
    bus = MemoryBus()
    rom = RomRegion(0, 64 * 1024)
    rom.program(prog.image)
    bus.add_region(rom)
    bus.add_region(RamRegion(ram_base, 4096))
    cpu = CPU(bus, reset_pc=prog.entry_point)
    outcome = cpu.run(max_steps)
    return cpu, bus, outcome


class TestArithmetic:
    def test_addi_and_add(self):
        cpu, _, outcome = run_program(
            "addi r1, r0, 20\naddi r2, r0, 22\nadd r3, r1, r2\nhalt\n"
        )
        assert outcome == "halted"
        assert cpu.regs[3] == 42

    def test_sub_wraps_unsigned(self):
        cpu, _, _ = run_program("addi r1, r0, 1\nsub r2, r0, r1\nhalt\n")
        assert cpu.regs[2] == 0xFFFF_FFFF

    def test_logic_ops(self):
        cpu, _, _ = run_program(
            "addi r1, r0, 0xF0\naddi r2, r0, 0x0F\n"
            "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r1\nhalt\n"
        )
        assert cpu.regs[3] == 0
        assert cpu.regs[4] == 0xFF
        assert cpu.regs[5] == 0

    def test_mul_truncates_to_32_bits(self):
        cpu, _, _ = run_program(
            "lui r1, 0x8000\naddi r2, r0, 4\nmul r3, r1, r2\nhalt\n"
        )
        assert cpu.regs[3] == 0  # 0x80000000 * 4 mod 2^32

    def test_shifts(self):
        cpu, _, _ = run_program(
            "addi r1, r0, 1\nslli r2, r1, 31\nsrli r3, r2, 31\nhalt\n"
        )
        assert cpu.regs[2] == 0x8000_0000
        assert cpu.regs[3] == 1

    def test_lui_ori_builds_constant(self):
        cpu, _, _ = run_program("lui r1, 0xDEAD\nori r1, r1, 0xBEEF\nhalt\n")
        assert cpu.regs[1] == 0xDEADBEEF


class TestMemory:
    def test_store_load_round_trip(self):
        cpu, _, _ = run_program(
            "lui r1, 0x2000\nlui r2, 0xCAFE\nori r2, r2, 0xF00D\n"
            "sw r2, 8(r1)\nlw r3, 8(r1)\nhalt\n"
        )
        assert cpu.regs[3] == 0xCAFEF00D

    def test_negative_offset(self):
        cpu, _, _ = run_program(
            "lui r1, 0x2000\naddi r1, r1, 16\naddi r2, r0, 7\n"
            "sw r2, -4(r1)\nlw r3, -4(r1)\nhalt\n"
        )
        assert cpu.regs[3] == 7

    def test_bus_fault_on_hole(self):
        with pytest.raises(EmulatorError):
            run_program("lui r1, 0x4000\nlw r2, 0(r1)\nhalt\n")

    def test_store_to_rom_faults(self):
        with pytest.raises(EmulatorError):
            run_program("addi r1, r0, 0\nsw r1, 0(r1)\nhalt\n")


class TestControlFlow:
    def test_beq_taken(self):
        cpu, _, _ = run_program(
            "beq r0, r0, skip\naddi r1, r0, 99\nskip:\nhalt\n"
        )
        assert cpu.regs[1] == 0

    def test_bne_loop_counts(self):
        cpu, _, _ = run_program(
            "addi r1, r0, 0\naddi r2, r0, 5\n"
            "loop:\naddi r1, r1, 1\nbne r1, r2, loop\nhalt\n"
        )
        assert cpu.regs[1] == 5

    def test_bltu_unsigned_compare(self):
        # 0xFFFFFFFF is large unsigned: no branch.
        cpu, _, _ = run_program(
            "addi r1, r0, -1\naddi r2, r0, 1\n"
            "bltu r1, r2, small\naddi r3, r0, 1\nsmall:\nhalt\n"
        )
        assert cpu.regs[3] == 1

    def test_jal_links_and_jr_returns(self):
        cpu, _, outcome = run_program(
            "jal sub\naddi r1, r0, 5\nhalt\nsub:\naddi r2, r0, 9\njr r15\n"
        )
        assert outcome == "halted"
        assert cpu.regs[1] == 5
        assert cpu.regs[2] == 9

    def test_busy_wait_detected_as_spinning(self):
        cpu, _, outcome = run_program("spin:\njmp spin\n")
        assert outcome == "spinning"

    def test_branch_to_self_detected_as_spinning(self):
        cpu, _, outcome = run_program("spin:\nbeq r0, r0, spin\n")
        assert outcome == "spinning"

    def test_step_limit(self):
        cpu, _, outcome = run_program(
            "addi r1, r0, 0\nloop:\naddi r1, r1, 1\nbne r1, r0, loop\nhalt\n",
            max_steps=100,
        )
        assert outcome == "limit"


class TestMachineState:
    def test_reset_clears_registers(self):
        cpu, _, _ = run_program("addi r1, r0, 3\nhalt\n")
        cpu.reset()
        assert cpu.regs == [0] * 16
        assert not cpu.halted

    def test_step_after_halt_rejected(self):
        cpu, _, _ = run_program("halt\n")
        with pytest.raises(EmulatorError):
            cpu.step()

    def test_illegal_opcode(self):
        bus = MemoryBus()
        rom = RomRegion(0, 4096)
        rom.program((0x3F << 26).to_bytes(4, "little"))
        bus.add_region(rom)
        with pytest.raises(EmulatorError):
            CPU(bus).step()

    def test_instruction_counter(self):
        cpu, _, _ = run_program("nop\nnop\nhalt\n")
        assert cpu.instructions_retired == 3
