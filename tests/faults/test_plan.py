"""FaultPlan construction, serialization and the env-var wire format."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CaptureBrownout,
    FaultPlan,
    FlakyDebugPort,
    InterruptedStress,
    SetpointDrift,
    StuckRegion,
    model_from_dict,
    plan_from_env,
    transient_capture_plan,
)


def test_empty_plan_is_falsy():
    assert not FaultPlan()
    assert FaultPlan(models=(FlakyDebugPort(),))


def test_plan_rejects_non_models():
    with pytest.raises(ConfigurationError):
        FaultPlan(models=("flaky",))


def test_json_round_trip_preserves_every_model():
    plan = FaultPlan(
        seed=42,
        models=(
            CaptureBrownout(rate=0.1, severity=0.5),
            StuckRegion(offset=8, length=16, value=0),
            FlakyDebugPort(rate=0.03),
            SetpointDrift(sigma_c=2.5),
            InterruptedStress(rate=0.2, min_fraction=0.25),
        ),
    )
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan


def test_from_dict_requires_models_key():
    with pytest.raises(ConfigurationError):
        FaultPlan.from_dict({"seed": 3})


def test_from_json_rejects_garbage():
    with pytest.raises(ConfigurationError):
        FaultPlan.from_json("not json at all {")


def test_model_from_dict_unknown_kind():
    with pytest.raises(ConfigurationError, match="unknown fault model"):
        model_from_dict({"kind": "gremlins", "rate": 1.0})


def test_model_from_dict_bad_params():
    with pytest.raises(ConfigurationError, match="bad parameters"):
        model_from_dict({"kind": "flaky_port", "rate": 0.1, "bogus": 1})


def test_compact_spec_single_model():
    plan = FaultPlan.from_spec("flaky:0.02")
    assert plan.seed == 0
    assert plan.models == (FlakyDebugPort(rate=0.02),)


def test_compact_spec_multi_model_with_seed():
    plan = FaultPlan.from_spec("brownout:0.05,flaky:0.01@seed=7")
    assert plan.seed == 7
    assert isinstance(plan.models[0], CaptureBrownout)
    assert plan.models[0].rate == 0.05
    assert plan.models[1] == FlakyDebugPort(rate=0.01)


def test_compact_spec_errors():
    for bad in ("", "gremlins:0.1", "flaky:sometimes", "flaky:0.1@seed=x"):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec(bad)


def test_spec_naming_a_file_loads_json(tmp_path):
    path = tmp_path / "plan.json"
    plan = transient_capture_plan(0.07, seed=9, flaky_rate=0.01)
    path.write_text(plan.to_json())
    assert FaultPlan.from_spec(str(path)) == plan


def test_transient_capture_plan_shape():
    plan = transient_capture_plan(0.05)
    assert len(plan.models) == 1
    assert isinstance(plan.models[0], CaptureBrownout)
    with_flaky = transient_capture_plan(0.05, flaky_rate=0.02, seed=3)
    assert with_flaky.seed == 3
    assert isinstance(with_flaky.models[1], FlakyDebugPort)


def test_env_plan_wires_into_new_control_boards(monkeypatch):
    from repro.device.catalog import make_device
    from repro.faults import FaultInjector
    from repro.harness import ControlBoard

    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    bare = ControlBoard(make_device("MSP432P401", rng=1, sram_kib=0.25))
    assert bare.fault_injector is None

    monkeypatch.setenv("REPRO_FAULT_PLAN", "flaky:0.04@seed=2")
    wired = ControlBoard(make_device("MSP432P401", rng=1, sram_kib=0.25))
    assert wired.fault_injector is not None
    assert wired.fault_injector.plan == plan_from_env()

    # An explicit injector always wins over the environment.
    mine = FaultInjector(transient_capture_plan(0.5, seed=1))
    explicit = ControlBoard(
        make_device("MSP432P401", rng=1, sram_kib=0.25), fault_injector=mine
    )
    assert explicit.fault_injector is mine


def test_plan_from_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    assert plan_from_env() is None
    monkeypatch.setenv("REPRO_FAULT_PLAN", "flaky:0.04@seed=2")
    plan = plan_from_env()
    assert plan == FaultPlan(seed=2, models=(FlakyDebugPort(rate=0.04),))
    # Cached per raw value: the same string returns the same object.
    assert plan_from_env() is plan
    path = tmp_path / "p.json"
    path.write_text(json.dumps({"seed": 1, "models": [{"kind": "flaky_port", "rate": 0.5}]}))
    monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
    assert plan_from_env().models[0].rate == 0.5
