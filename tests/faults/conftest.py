"""Fault-suite isolation.

These tests construct their own plans and injectors; a global
``REPRO_FAULT_PLAN`` (the CI chaos smoke runs the whole tier-1 suite
under one) must not wire a second injector into the boards they build,
so it is stripped for the duration of each test here.  Tests that
exercise the env-var path set it explicitly via monkeypatch.
"""

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_fault_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
