"""FaultInjector: the determinism contract and stream independence."""

import numpy as np

from repro import telemetry
from repro.faults import (
    CaptureBrownout,
    FaultInjector,
    FaultPlan,
    FlakyDebugPort,
    SetpointDrift,
    transient_capture_plan,
)


def _drive(injector, n_events=40, n_bits=256):
    """A fixed event sequence; returns (schedule, flaky_hits)."""
    bits = np.zeros(n_bits, dtype=np.uint8)
    flaky = []
    for event in range(n_events):
        if event % 4 == 3:
            try:
                injector.check_debug_port()
            except Exception:
                flaky.append(event)
        else:
            injector.filter_capture(bits)
    return list(injector.schedule), flaky


def test_same_plan_same_salt_identical_schedule():
    plan = transient_capture_plan(0.3, flaky_rate=0.3, seed=17)
    first, flaky_a = _drive(FaultInjector(plan))
    second, flaky_b = _drive(FaultInjector(plan))
    assert first == second
    assert flaky_a == flaky_b
    assert first  # at 30% rates over 40 events, silence would be a bug


def test_different_seed_or_salt_changes_schedule():
    base, _ = _drive(FaultInjector(transient_capture_plan(0.3, seed=17)))
    reseeded, _ = _drive(FaultInjector(transient_capture_plan(0.3, seed=18)))
    resalted, _ = _drive(
        FaultInjector(transient_capture_plan(0.3, seed=17), salt=1)
    )
    assert base != reseeded
    assert base != resalted


def test_adding_a_model_does_not_perturb_existing_streams():
    """Models draw from index-keyed streams: composing plans is stable."""
    bits = np.zeros(128, dtype=np.uint8)
    solo = FaultInjector(FaultPlan(seed=5, models=(CaptureBrownout(rate=0.5),)))
    combo = FaultInjector(
        FaultPlan(seed=5, models=(CaptureBrownout(rate=0.5), SetpointDrift()))
    )
    for _ in range(20):
        np.testing.assert_array_equal(
            solo.filter_capture(bits), combo.filter_capture(bits)
        )
    assert [s[1:] for s in solo.schedule] == [
        s[1:] for s in combo.schedule if s[1] == "capture_brownout"
    ]


def test_spawn_creates_sibling_with_same_plan():
    parent = FaultInjector(transient_capture_plan(0.3, seed=9), salt=0)
    child = parent.spawn(4)
    assert child.plan is parent.plan
    assert child.salt == 4
    direct, _ = _drive(FaultInjector(parent.plan, salt=4))
    spawned, _ = _drive(child)
    assert direct == spawned


def test_counters_and_telemetry_mirror():
    plan = FaultPlan(seed=1, models=(FlakyDebugPort(rate=1.0),))
    injector = FaultInjector(plan)
    with telemetry.trace("t", force=True) as span:
        for _ in range(3):
            try:
                injector.check_debug_port()
            except Exception:
                pass
        assert span.counters["faults.injected"] == 3
        assert span.counters["faults.flaky_port"] == 3
    assert injector.counters == {"flaky_port": 3}
    assert injector.injected == 3


def test_empty_plan_injector_is_transparent():
    injector = FaultInjector(FaultPlan())
    bits = np.ones(16, dtype=np.uint8)
    np.testing.assert_array_equal(injector.filter_capture(bits), bits)
    injector.check_debug_port()
    assert injector.drift_setpoint(85.0) == 85.0
    assert injector.interrupt_stress(12.0) == 12.0
    assert injector.injected == 0
