"""RetryPolicy: retryability classes, deterministic backoff, exhaustion."""

import pytest

from repro import errors, telemetry
from repro.faults import RetryPolicy, is_retryable


class TestRetryability:
    def test_transient_device_errors_are_retryable(self):
        for exc in (
            errors.DeviceError("x"),
            errors.DebugPortError("x"),
            errors.PowerError("x"),
            errors.FirmwareError("x"),
        ):
            assert is_retryable(exc)

    def test_permanent_device_states_are_not(self):
        assert not is_retryable(errors.OverstressError("cooked"))
        assert not is_retryable(errors.QuarantinedDeviceError("pulled", slot=1))
        assert not is_retryable(errors.RetryExhaustedError("gave up", attempts=4))

    def test_non_device_repro_errors_are_not(self):
        for exc in (
            errors.ConfigurationError("x"),
            errors.CodecError("x"),
            errors.CryptoError("x"),
            errors.CapacityError("x"),
            errors.ExtractionError("x"),
        ):
            assert not is_retryable(exc)

    def test_foreign_exceptions_are_not(self):
        assert not is_retryable(ValueError("x"))
        assert not is_retryable(KeyboardInterrupt())


class TestBackoffSchedule:
    def test_delays_are_deterministic_per_seed(self):
        policy = RetryPolicy(max_attempts=5, seed=11)
        assert policy.delays() == policy.delays()
        assert policy.delays() == RetryPolicy(max_attempts=5, seed=11).delays()
        assert policy.delays() != RetryPolicy(max_attempts=5, seed=12).delays()

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=0.01, multiplier=2.0,
            max_delay_s=0.05, jitter=0.0,
        )
        delays = policy.delays()
        assert delays[:3] == [0.01, 0.02, 0.04]
        assert all(d == 0.05 for d in delays[3:])

    def test_jitter_stays_bounded(self):
        policy = RetryPolicy(max_attempts=8, jitter=0.25, max_delay_s=10.0)
        for base, jittered in zip(
            RetryPolicy(max_attempts=8, jitter=0.0, max_delay_s=10.0).delays(),
            policy.delays(),
        ):
            assert base <= jittered < base * 1.25

    def test_validation(self):
        with pytest.raises(errors.ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(errors.ConfigurationError):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(errors.ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(errors.ConfigurationError):
            RetryPolicy(jitter=2.0)


class TestCall:
    def test_success_needs_no_retry(self):
        calls = []
        assert RetryPolicy().call(lambda: calls.append(1) or "ok") == "ok"
        assert len(calls) == 1

    def test_transient_failure_is_retried(self):
        tries = []

        def flaky():
            tries.append(1)
            if len(tries) < 3:
                raise errors.DebugPortError("blip")
            return "recovered"

        assert RetryPolicy(max_attempts=4).call(flaky) == "recovered"
        assert len(tries) == 3

    def test_exhaustion_chains_the_last_failure(self):
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(errors.RetryExhaustedError) as info:
            policy.call(self._always_flaky)
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, errors.DebugPortError)

    @staticmethod
    def _always_flaky():
        raise errors.DebugPortError("blip")

    def test_non_retryable_propagates_unwrapped(self):
        def broken():
            raise errors.ConfigurationError("bad setup")

        with pytest.raises(errors.ConfigurationError):
            RetryPolicy(max_attempts=5).call(broken)

    def test_none_policy_propagates_first_failure_unwrapped(self):
        with pytest.raises(errors.DebugPortError):
            RetryPolicy.none().call(self._always_flaky)

    def test_counts_and_hooks(self):
        seen = []
        slept = []
        with telemetry.trace("t", force=True) as span:
            with pytest.raises(errors.RetryExhaustedError):
                RetryPolicy(max_attempts=3).call(
                    self._always_flaky,
                    on_retry=lambda a, e, d: seen.append((a, d)),
                    sleep=slept.append,
                )
            assert span.counters["retry.attempts"] == 2
            assert span.counters["retry.backoff_s"] == pytest.approx(
                sum(d for _, d in seen)
            )
        assert slept == [d for _, d in seen]
        assert [a for a, _ in seen] == [1, 2]
