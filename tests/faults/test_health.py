"""HealthLedger: the quarantine lifecycle."""

import pytest

from repro import telemetry
from repro.errors import ConfigurationError, QuarantinedDeviceError
from repro.faults import HealthLedger


def test_quarantine_after_consecutive_failures():
    ledger = HealthLedger(quarantine_after=3)
    assert ledger.record_failure(0) is False
    assert ledger.record_failure(0) is False
    assert ledger.record_failure(0) is True  # third strike quarantines
    assert ledger.is_quarantined(0)
    assert ledger.quarantined == [0]
    assert ledger.failures(0) == 3


def test_success_resets_the_streak():
    ledger = HealthLedger(quarantine_after=2)
    ledger.record_failure(1)
    ledger.record_success(1)
    assert ledger.record_failure(1) is False  # streak restarted
    assert not ledger.is_quarantined(1)


def test_check_raises_for_quarantined_slot_only():
    ledger = HealthLedger(quarantine_after=1)
    ledger.check(5)  # healthy: no raise
    ledger.record_failure(5)
    with pytest.raises(QuarantinedDeviceError) as info:
        ledger.check(5)
    assert info.value.slot == 5


def test_release_returns_slot_to_service():
    ledger = HealthLedger(quarantine_after=1)
    ledger.record_failure(2)
    assert ledger.is_quarantined(2)
    ledger.release(2)
    assert not ledger.is_quarantined(2)
    assert ledger.failures(2) == 0


def test_quarantine_is_sticky_and_counted_once():
    ledger = HealthLedger(quarantine_after=1)
    with telemetry.trace("t", force=True) as span:
        assert ledger.record_failure(3) is True
        assert ledger.record_failure(3) is False  # already quarantined
        assert span.counters["slots.quarantined"] == 1


def test_slots_are_independent():
    ledger = HealthLedger(quarantine_after=1)
    ledger.record_failure(0)
    assert ledger.is_quarantined(0)
    assert not ledger.is_quarantined(1)


def test_validation():
    with pytest.raises(ConfigurationError):
        HealthLedger(quarantine_after=0)


def test_check_reports_consistent_streak_under_hammering():
    """The quarantine test and the streak read are one atomic locked
    section: a thread hammering record_failure/release can never make a
    quarantined ``check`` quote a stale or reset streak.  The regression
    read ``_streaks`` after the lock was released, so the message could
    cite a streak below the quarantine threshold."""
    import re
    import threading

    ledger = HealthLedger(quarantine_after=3)
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            ledger.release(0)
            for _ in range(3):
                ledger.record_failure(0)

    thread = threading.Thread(target=hammer)
    thread.start()
    try:
        seen = 0
        for _ in range(200_000):
            if seen >= 200:
                break
            try:
                ledger.check(0)
            except QuarantinedDeviceError as exc:
                seen += 1
                assert exc.slot == 0
                streak = int(re.search(r"after (\d+)", str(exc)).group(1))
                # Quarantined implies the streak had reached the
                # threshold; release+re-failure can only grow it further
                # before we read it, never shrink it below the bar with
                # the lock held across test and read.
                assert streak >= 3
    finally:
        stop.set()
        thread.join()
    assert seen >= 1  # the race window was actually exercised


def test_check_passes_non_int_slot_through_message():
    ledger = HealthLedger(quarantine_after=1)
    ledger.record_failure("tray-7/slot-b")
    with pytest.raises(QuarantinedDeviceError) as info:
        ledger.check("tray-7/slot-b")
    assert "tray-7/slot-b" in str(info.value)
    assert info.value.slot is None  # non-int slots carry no index


def test_reset_readmits_and_forgets_history():
    ledger = HealthLedger(quarantine_after=2)
    ledger.record_failure("lane-a")
    ledger.record_failure("lane-a")
    assert ledger.is_quarantined("lane-a")

    # A real re-admission: reset reports it and erases the slot.
    assert ledger.reset("lane-a") is True
    assert not ledger.is_quarantined("lane-a")
    assert ledger.failures("lane-a") == 0
    ledger.check("lane-a")  # no raise

    # Fresh streak after reset: one failure is below the bar again.
    assert ledger.record_failure("lane-a") is False
    assert not ledger.is_quarantined("lane-a")
    assert ledger.record_failure("lane-a") is True  # second re-quarantines


def test_reset_on_healthy_slot_is_a_reported_noop():
    ledger = HealthLedger(quarantine_after=1)
    assert ledger.reset("never-seen") is False
    ledger.record_success("fine")
    assert ledger.reset("fine") is False
    assert ledger.failures("fine") == 0


def test_reset_differs_from_release_in_bookkeeping():
    ledger = HealthLedger(quarantine_after=1)
    ledger.record_failure("a")
    ledger.record_failure("b")
    ledger.release("a")
    ledger.reset("b")
    # Both healthy again; release keeps a zeroed entry, reset forgets.
    assert not ledger.is_quarantined("a")
    assert not ledger.is_quarantined("b")
    assert "a" in ledger._streaks and "b" not in ledger._streaks
