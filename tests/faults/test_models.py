"""Unit behavior of each fault model, driven with private seeded streams."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DebugPortError
from repro.faults import (
    CaptureBrownout,
    FaultModel,
    FlakyDebugPort,
    InterruptedStress,
    SetpointDrift,
    StuckRegion,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


def _sink(kind, **detail):
    pass


def test_base_model_hooks_are_no_ops():
    model = FaultModel()
    bits = np.ones(8, dtype=np.uint8)
    assert model.on_capture(bits, _rng(), _sink) is bits
    assert model.on_setpoint(100.0, _rng(), _sink) == 100.0
    assert model.on_stress(24.0, _rng(), _sink) == 24.0
    model.on_debug_read(_rng(), _sink)  # no raise


def test_brownout_corrupts_severity_fraction():
    model = CaptureBrownout(rate=1.0, severity=0.5)
    bits = np.zeros(1000, dtype=np.uint8)
    out = model.on_capture(bits, _rng(1), _sink)
    assert out is not bits and bits.sum() == 0  # input untouched
    # 500 cells re-drawn uniformly -> roughly half flip to 1.
    assert 150 <= out.sum() <= 350


def test_brownout_rate_zero_never_fires():
    model = CaptureBrownout(rate=0.0)
    bits = np.zeros(64, dtype=np.uint8)
    for _ in range(20):
        assert model.on_capture(bits, _rng(2), _sink) is bits


def test_brownout_validation():
    with pytest.raises(ConfigurationError):
        CaptureBrownout(rate=1.5)
    with pytest.raises(ConfigurationError):
        CaptureBrownout(severity=0.0)


def test_stuck_region_is_deterministic_and_clipped():
    model = StuckRegion(offset=4, length=8, value=1)
    bits = np.zeros(16, dtype=np.uint8)
    out = model.on_capture(bits, _rng(), _sink)
    assert list(np.nonzero(out)[0]) == list(range(4, 12))
    # Region beyond the array is clipped; fully outside is a no-op.
    short = np.zeros(6, dtype=np.uint8)
    assert StuckRegion(offset=4, length=8).on_capture(short, _rng(), _sink).sum() == 2
    outside = StuckRegion(offset=100, length=8)
    assert outside.on_capture(short, _rng(), _sink) is short


def test_stuck_region_validation():
    with pytest.raises(ConfigurationError):
        StuckRegion(offset=-1)
    with pytest.raises(ConfigurationError):
        StuckRegion(value=2)


def test_flaky_port_raises_debug_port_error():
    model = FlakyDebugPort(rate=1.0)
    with pytest.raises(DebugPortError, match="injected fault"):
        model.on_debug_read(_rng(), _sink)
    FlakyDebugPort(rate=0.0).on_debug_read(_rng(), _sink)  # no raise


def test_setpoint_drift_perturbs_temperature():
    model = SetpointDrift(sigma_c=2.0)
    drifted = model.on_setpoint(100.0, _rng(3), _sink)
    assert drifted != 100.0
    assert abs(drifted - 100.0) < 20.0  # within ~10 sigma
    assert SetpointDrift(sigma_c=0.0).on_setpoint(100.0, _rng(), _sink) == 100.0
    with pytest.raises(ConfigurationError):
        SetpointDrift(sigma_c=-1.0)


def test_interrupted_stress_cuts_hours_short():
    model = InterruptedStress(rate=1.0, min_fraction=0.5)
    cut = model.on_stress(100.0, _rng(4), _sink)
    assert 50.0 <= cut < 100.0
    assert InterruptedStress(rate=0.0).on_stress(100.0, _rng(), _sink) == 100.0
    with pytest.raises(ConfigurationError):
        InterruptedStress(min_fraction=1.0)


def test_to_dict_tags_every_model():
    for model in (CaptureBrownout(), StuckRegion(), FlakyDebugPort(),
                  SetpointDrift(), InterruptedStress()):
        spec = model.to_dict()
        assert spec["kind"] == type(model).kind
        assert spec["kind"] != "base"
