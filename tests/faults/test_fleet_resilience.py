"""Fleet resilience: per-slot errors, quarantine, partial results."""

import numpy as np
import pytest

from repro import telemetry
from repro.core.batch import encode_fleet
from repro.device.catalog import make_device
from repro.errors import (
    CapacityError,
    DebugPortError,
    QuarantinedDeviceError,
    SlotError,
)
from repro.faults import FaultPlan, FlakyDebugPort, RetryPolicy
from repro.harness.rack import EncodingRack, SlotResult


def _rack(n=3, **kwargs):
    devices = [
        make_device("MSP432P401", rng=100 + i, sram_kib=0.25) for i in range(n)
    ]
    return EncodingRack(devices, **kwargs)


class TestStrictMaps:
    def test_map_slots_wraps_errors_with_slot_index(self):
        rack = _rack(3, max_workers=1)

        def explode(board):
            if board is rack.boards[1]:
                raise DebugPortError("loose ribbon cable")
            return "ok"

        with pytest.raises(SlotError) as info:
            rack._map_slots(explode)
        assert info.value.slot == 1
        assert "slot 1" in str(info.value)
        assert isinstance(info.value.__cause__, DebugPortError)

    def test_strict_stage_payloads_raises_slot_error(self):
        rack = _rack(2, max_workers=1)
        good = np.zeros(rack.boards[0].device.sram.n_bits, dtype=np.uint8)
        bad = np.zeros(7, dtype=np.uint8)  # wrong size -> CapacityError
        with pytest.raises(SlotError) as info:
            rack.stage_payloads([good, bad], use_firmware=False)
        assert info.value.slot == 1
        assert isinstance(info.value.__cause__, CapacityError)


class TestRunSlots:
    def test_all_healthy_slots_report_ok(self):
        rack = _rack(3)
        results = rack.run_slots(lambda board: board.device.spec.name)
        assert [r.status for r in results] == ["ok"] * 3
        assert [r.slot for r in results] == [0, 1, 2]
        assert all(r.ok and r.attempts == 1 and r.error is None for r in results)

    def test_transient_failure_is_retried(self):
        rack = _rack(2, max_workers=1)
        seen = set()

        def flaky_once(board):
            if board not in seen:
                seen.add(board)
                raise DebugPortError("blip")
            return "fine"

        results = rack.run_slots(flaky_once)
        assert [r.status for r in results] == ["retried", "retried"]
        assert all(r.ok and r.value == "fine" and r.attempts == 2 for r in results)

    def test_persistent_failure_is_partial_not_fatal(self):
        rack = _rack(3, max_workers=1)

        def bad_middle(board):
            if board is rack.boards[1]:
                raise DebugPortError("dead slot")
            return "fine"

        with telemetry.trace("t", force=True) as span:
            results = rack.run_slots(bad_middle)
            assert span.counters["slots.failed"] == 1
            assert span.counters["retry.attempts"] > 0
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        failed = results[1]
        assert not failed.ok
        assert failed.attempts == rack.retry.max_attempts
        assert failed.error is not None

    def test_non_retryable_failure_burns_one_attempt(self):
        rack = _rack(1, max_workers=1)

        def broken(board):
            raise CapacityError("wrong size")

        result = rack.run_slots(broken)[0]
        assert result.status == "failed"
        assert result.attempts == 1
        assert isinstance(result.error, CapacityError)


class TestQuarantine:
    def test_consecutive_failures_quarantine_the_slot(self):
        rack = _rack(2, max_workers=1, quarantine_after=2,
                     retry=RetryPolicy.none())

        def bad_zero(board):
            if board is rack.boards[0]:
                raise DebugPortError("dying")
            return "fine"

        with telemetry.trace("t", force=True) as span:
            rack.run_slots(bad_zero)
            rack.run_slots(bad_zero)  # second strike -> quarantine
            assert span.counters["slots.quarantined"] == 1
        assert rack.health.is_quarantined(0)

        # Quarantined slots are skipped outright; healthy ones still run.
        results = rack.run_slots(lambda board: "fine")
        assert results[0].status == "quarantined"
        assert results[0].attempts == 0
        assert isinstance(results[0].error, QuarantinedDeviceError)
        assert results[1].status == "ok"

    def test_release_returns_slot_to_service(self):
        rack = _rack(1, max_workers=1, quarantine_after=1,
                     retry=RetryPolicy.none())
        rack.run_slots(lambda board: (_ for _ in ()).throw(DebugPortError("x")))
        assert rack.health.is_quarantined(0)
        rack.health.release(0)
        assert rack.run_slots(lambda board: "back")[0].status == "ok"


class TestResilientTrayOps:
    def test_resilient_measure_returns_partial_results(self):
        rack = _rack(2, max_workers=1, quarantine_after=1)
        payloads = [
            np.random.default_rng(i).integers(
                0, 2, board.device.sram.n_bits
            ).astype(np.uint8)
            for i, board in enumerate(rack.boards)
        ]
        rack.stage_payloads(payloads, use_firmware=False)
        rack.stress_all(stress_hours=12)
        rack.health.record_failure(1)  # slot 1 went dark -> quarantined
        results = rack.measure_errors(payloads, resilient=True)
        assert results[0].ok and results[0].value < 0.5
        assert results[1].status == "quarantined"

    def test_stress_all_skip_unpowered(self):
        rack = _rack(2, max_workers=1)
        payloads = [
            np.zeros(board.device.sram.n_bits, dtype=np.uint8)
            for board in rack.boards
        ]
        rack.stage_payloads(payloads, use_firmware=False)
        rack.boards[1].power_off()  # slot 1 dropped off the tray
        with pytest.raises(Exception):
            rack.stress_all(stress_hours=12)
        rack.stress_all(stress_hours=12, skip_unpowered=True)
        assert not rack.boards[0].device.powered


class TestFleetPartialResults:
    def test_encode_fleet_drops_failed_candidates(self):
        plan = FaultPlan(seed=6, models=(FlakyDebugPort(rate=0.25),))
        selection = encode_fleet(
            n_devices=3, sram_kib=0.25, rng=5,
            fault_plan=plan, retry=RetryPolicy.none(), max_workers=1,
        )
        assert selection.survivors == 2
        assert [f.slot for f in selection.failures] == [2]
        assert all(isinstance(f, SlotError) for f in selection.failures)
        assert selection.winner.measured_error <= selection.errors[-1]

    def test_encode_fleet_raises_when_no_survivors(self):
        plan = FaultPlan(seed=0, models=(FlakyDebugPort(rate=0.25),))
        with pytest.raises(SlotError):
            encode_fleet(
                n_devices=3, sram_kib=0.25, rng=5,
                fault_plan=plan, retry=RetryPolicy.none(), max_workers=1,
            )

    def test_encode_fleet_healthy_path_reports_no_failures(self):
        selection = encode_fleet(n_devices=2, sram_kib=0.25, rng=5,
                                 max_workers=1)
        assert selection.failures == ()
        assert selection.survivors == 2


def test_slot_result_ok_property():
    assert SlotResult(slot=0, status="ok").ok
    assert SlotResult(slot=0, status="retried").ok
    assert not SlotResult(slot=0, status="failed").ok
    assert not SlotResult(slot=0, status="quarantined").ok
