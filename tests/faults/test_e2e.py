"""End-to-end chaos acceptance: the pipeline self-heals under faults.

The acceptance gates from docs/faults.md:

- under the canonical 5% transient-capture plan the paper-preset channel
  recovers the payload with zero message errors, and the provenance
  records the recovery work (extra captures / retries);
- the fault schedule — and therefore the provenance — is a pure function
  of the plan seed;
- with faults disabled the receive path is bit-identical to a plain
  receive (the injector machinery costs nothing when quiet).
"""

import numpy as np
import pytest

from repro.core.pipeline import InvisibleBits
from repro.core.scheme import paper_end_to_end_scheme
from repro.device.catalog import make_device
from repro.errors import RetryExhaustedError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FlakyDebugPort,
    RetryPolicy,
    StuckRegion,
    transient_capture_plan,
)
from repro.harness.controlboard import ControlBoard

KEY = bytes(range(16))
MESSAGE = b"zero message errors"


def _encoded_channel(device_rng=77):
    board = ControlBoard(make_device("MSP430G2553", rng=device_rng))
    channel = InvisibleBits(
        board, scheme=paper_end_to_end_scheme(KEY), use_firmware=False
    )
    channel.send(MESSAGE)
    return board, channel


def _receive_under(plan):
    board, channel = _encoded_channel()
    board.fault_injector = FaultInjector(plan)
    return channel.receive()


def test_paper_preset_recovers_under_5pct_transient_faults():
    # Plan seed 0 lands a brownout inside the first capture window, so
    # the suspect/escalation path is exercised, not just survived.
    result = _receive_under(transient_capture_plan(0.05, flaky_rate=0.02, seed=0))
    assert result.message == MESSAGE  # zero message errors
    escalation = result.provenance()["escalation"]
    assert escalation["faults_injected"] >= 1
    assert escalation["suspect_captures"]  # the hit capture was identified
    assert escalation["total_captures"] > 5  # ...and replaced
    assert escalation["escalation_rounds"] >= 1
    assert not escalation["degraded"]
    assert result.n_captures == 5  # vote still ran over a clean odd set


def test_flaky_port_is_retried_and_recorded():
    # Plan seed 8 fires the flaky port once during the receive.
    result = _receive_under(transient_capture_plan(0.05, flaky_rate=0.02, seed=8))
    assert result.message == MESSAGE
    escalation = result.provenance()["escalation"]
    assert escalation["retry_attempts"] >= 1
    assert escalation["total_captures"] == 5  # retries never cost captures


def test_fault_schedule_and_provenance_are_seed_deterministic():
    plan = transient_capture_plan(0.2, flaky_rate=0.1, seed=3)
    runs = []
    for _ in range(2):
        board, channel = _encoded_channel()
        board.fault_injector = FaultInjector(plan)
        result = channel.receive()
        runs.append((list(board.fault_injector.schedule), result.provenance()))
    assert runs[0][0] == runs[1][0]  # identical fault schedule
    assert runs[0][1] == runs[1][1]  # identical provenance
    assert runs[0][0]  # and it was not trivially empty


def test_faults_disabled_is_bit_identical_to_no_injector():
    plain_board, plain_channel = _encoded_channel()
    plain = plain_channel.receive()

    quiet_board, quiet_channel = _encoded_channel()
    quiet_board.fault_injector = FaultInjector(
        FaultPlan(seed=1, models=(FlakyDebugPort(rate=0.0),))
    )
    quiet = quiet_channel.receive()

    assert quiet.message == plain.message
    np.testing.assert_array_equal(quiet.captures, plain.captures)
    np.testing.assert_array_equal(quiet.power_on_state, plain.power_on_state)
    assert quiet.provenance() == plain.provenance()
    assert quiet.provenance()["escalation"]["total_captures"] == 5


def test_stuck_region_is_out_voted():
    # A stuck region hits every capture identically, so no capture is a
    # suspect — but a region clear of the frame header is small enough
    # for the ECC to absorb.
    result = _receive_under(
        FaultPlan(seed=0, models=(StuckRegion(offset=1500, length=24, value=1),))
    )
    assert result.message == MESSAGE
    assert result.ecc_corrections > 0


def test_capture_ceiling_raises_retry_exhausted():
    board, channel = _encoded_channel()
    # Total garbage on every capture: escalation can never find a clean set.
    board.fault_injector = FaultInjector(
        FaultPlan(seed=2, models=(StuckRegion(offset=0, length=10**9, value=1),))
    )
    with pytest.raises(RetryExhaustedError) as info:
        channel.receive()
    assert info.value.attempts == channel.scheme.max_total_captures


def test_flaky_only_plan_changes_no_analog_results():
    """The CI chaos-smoke invariant: a flaky-port plan plus retries is
    invisible in the data — reads are non-destructive and strike before
    bits move."""
    plain_board, plain_channel = _encoded_channel(device_rng=101)
    plain = plain_channel.receive()

    flaky_board, flaky_channel = _encoded_channel(device_rng=101)
    flaky_board.fault_injector = FaultInjector(
        FaultPlan(seed=0, models=(FlakyDebugPort(rate=0.3),))
    )
    flaky_board.retry = RetryPolicy(max_attempts=6)
    flaky = flaky_channel.receive()

    assert flaky_board.fault_injector.injected >= 1  # faults really fired
    np.testing.assert_array_equal(flaky.captures, plain.captures)
    assert flaky.message == plain.message == MESSAGE
