"""Figure 1, live: smuggle a bitmap image through SRAM's analog domain.

Shows the three encodings the paper contrasts:
  1. the raw bitmap encoded directly (recoverable, but *visible* to
     steganalysis of the power-on state);
  2. the bitmap behind ECC (recovered pixel-perfect);
  3. the bitmap encrypted before encoding (invisible to steganalysis).

Run:  python examples/image_smuggling.py
"""

import numpy as np

from repro import ControlBoard, InvisibleBits, make_device, paper_end_to_end_scheme
from repro.bitutils import bits_to_bytes, bytes_to_bits, invert_bits
from repro.core.payloads import logo_bitmap, render_bitmap
from repro.core.steganalysis import analyze_power_on_state

KEY = b"image-demo-key16"


def show(title: str, bits, width: int) -> None:
    print(f"\n--- {title} ---")
    print(render_bitmap(bits, width))


def main() -> None:
    logo = logo_bitmap(scale=2)
    height, width = logo.shape
    image_bits = logo.ravel()
    show("the secret image", image_bits, width)

    # 1. Raw encode: write the bitmap, stress, read the power-on state.
    device = make_device("MSP432P401", rng=11, sram_kib=2)
    board = ControlBoard(device)
    payload = np.tile(image_bits, -(-device.sram.n_bits // image_bits.size))
    payload = payload[: device.sram.n_bits]
    board.encode_message(payload, use_firmware=False)
    state = board.majority_power_on_state(5)
    show("power-on state after raw encode (inverted)",
         invert_bits(state)[: image_bits.size], width)
    report = analyze_power_on_state(state, device.sram.grid_shape())
    print(f"adversary's verdict on the raw encode: "
          f"{'SUSPICIOUS' if report.looks_encoded() else 'clean'} "
          f"(Moran's I = {report.morans_i.statistic:.3f})")

    # 2. With the paper's ECC stack: pixel-perfect recovery.
    device2 = make_device("MSP432P401", rng=12, sram_kib=2)
    channel = InvisibleBits(
        ControlBoard(device2), scheme=paper_end_to_end_scheme(copies=7), use_firmware=False
    )
    padded = np.concatenate(
        [image_bits, np.zeros((-image_bits.size) % 8, dtype=np.uint8)]
    )
    channel.send(bits_to_bytes(padded))
    recovered = bytes_to_bits(channel.receive().message)[: image_bits.size]
    show("image recovered through ECC", recovered, width)
    errors = int(np.count_nonzero(recovered != image_bits))
    print(f"pixel errors after ECC: {errors}")

    # 3. Encrypted: same recovery, but the power-on state reveals nothing.
    device3 = make_device("MSP432P401", rng=13, sram_kib=2)
    board3 = ControlBoard(device3)
    channel3 = InvisibleBits(
        board3, scheme=paper_end_to_end_scheme(KEY, copies=7), use_firmware=False
    )
    channel3.send(bits_to_bytes(padded))
    state3 = board3.majority_power_on_state(5)
    report3 = analyze_power_on_state(state3, device3.sram.grid_shape())
    print(f"\nadversary's verdict on the encrypted encode: "
          f"{'SUSPICIOUS' if report3.looks_encoded() else 'clean'} "
          f"(Moran's I = {report3.morans_i.statistic:.3f}, "
          f"bias = {report3.mean_bias:.3f})")
    recovered3 = bytes_to_bits(channel3.receive().message)[: image_bits.size]
    assert np.array_equal(recovered3, image_bits)
    print("encrypted round trip: pixel-perfect")


if __name__ == "__main__":
    main()
