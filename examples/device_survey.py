"""Survey the device catalog and plan a deployment (paper §5.3, §7.3).

For every Table 1 device: predicted single-copy error at its recipe, the
highest-rate ECC meeting a 0.1% residual target, and the resulting usable
capacity.  Then demonstrates the paper's parallel-selection trick: encode
ten devices, ship the best one.

Run:  python examples/device_survey.py
"""

from repro import all_device_specs
from repro.core.channel import ChannelModel, bsc_capacity
from repro.core.message import max_message_bytes
from repro.core.planner import parallel_device_selection, plan_scheme

TARGET_RESIDUAL = 0.001


def main() -> None:
    print(f"{'device':<18}{'SRAM':>8}{'err@recipe':>12}{'scheme':>34}"
          f"{'payload':>10}{'shannon':>10}")
    for spec in all_device_specs():
        model = ChannelModel(spec)
        error = model.recipe_error()
        code = plan_scheme(error, TARGET_RESIDUAL)
        capacity = max_message_bytes(spec.sram_bits, ecc=code)
        shannon = bsc_capacity(error) * spec.sram_bits / 8
        print(
            f"{spec.name:<18}{spec.sram_kib:>6.1f}Ki{error:>11.2%} "
            f"{code.name:>33}{capacity:>9,}B{shannon:>9,.0f}B"
        )

    print("\nparallel device selection (MSP432 class, 6.5% mean error):")
    best, errors = parallel_device_selection(0.065, n_devices=10, rng=7)
    print(f"  ten encoded devices: " +
          ", ".join(f"{e:.1%}" for e in sorted(errors)))
    best_code = plan_scheme(best, TARGET_RESIDUAL)
    spec = next(s for s in all_device_specs() if s.name == "MSP432P401")
    capacity = max_message_bytes(spec.sram_bits, ecc=best_code)
    print(f"  ship the best ({best:.1%}): scheme {best_code.name}, "
          f"payload {capacity:,} bytes "
          f"({capacity / (spec.sram_bits // 8):.0%} of SRAM)")


if __name__ == "__main__":
    main()
