"""A full border-crossing scenario: the paper's threat model, end to end.

Alice encodes an encrypted report into a traveller's MSP432 gadget; the
device spends four weeks in transit (shelf recovery); at the border an
inspector copies the Flash, scribbles over SRAM, runs the gadget, takes
power-on snapshots a day apart, and runs the full steganalysis suite; the
device is released and Bob extracts the report.

Run:  python examples/border_crossing.py
"""

import numpy as np

from repro import ControlBoard, InvisibleBits, make_device, paper_end_to_end_scheme
from repro.core.adversary import MultipleSnapshotAdversary
from repro.core.steganalysis import analyze_power_on_state
from repro.units import days, hours

KEY = b"case-73-key-16by"
REPORT = (
    b"CASE 73 FIELD REPORT: ledgers photographed; witness statements "
    b"recorded at the northern site; contact only via the red notebook."
)


def main() -> None:
    # ---------------------------------------------------------------- Alice
    device = make_device("MSP432P401", rng=73, sram_kib=8)
    board = ControlBoard(device)
    alice = InvisibleBits(board, scheme=paper_end_to_end_scheme(KEY, copies=7))
    alice.send(REPORT)  # full recipe: firmware, 10 h at 3.3 V / 85 C
    print(f"[alice]    report encoded ({len(REPORT)} bytes), camouflage app "
          "flashed")

    # ------------------------------------------------------------- transit
    device.advance(days(28))
    print("[transit]  four weeks on the road (natural recovery running)")

    # ------------------------------------------------------------ inspector
    print("[border]   inspector takes the device...")
    inspector = MultipleSnapshotAdversary(board)
    snap1 = inspector.observe("arrival")
    report1 = analyze_power_on_state(snap1, device.sram.grid_shape())
    print(f"[border]   power-on analysis: Moran's I = "
          f"{report1.morans_i.statistic:+.4f}, bias = "
          f"{report1.mean_bias:.3f}, entropy = "
          f"{report1.normalized_entropy:.4f} -> "
          f"{'SUSPICIOUS' if report1.looks_encoded() else 'nothing found'}")

    # digital inspection: dump Flash, overwrite SRAM, run the gadget
    board.power_on_nominal()
    flash_dump = board.debug.read_flash(0, 4096)
    board.debug.write_sram_bits(
        np.random.default_rng(0).integers(
            0, 2, device.sram.n_bits
        ).astype(np.uint8)
    )
    board.device.run_workload(hours(2))
    board.power_off()
    print(f"[border]   flash dumped ({len(flash_dump)} bytes), SRAM "
          "overwritten, device exercised for 2 h")

    inspector.wait(days(1))
    snap2 = inspector.observe("next day")
    flips = inspector.flip_fractions()[-1]
    print(f"[border]   second snapshot a day later: {flips:.2%} of cells "
          "flipped (measurement noise) -> released")

    # ----------------------------------------------------------------- Bob
    bob = InvisibleBits(board, scheme=paper_end_to_end_scheme(KEY, copies=7))
    result = bob.receive()
    print(f"[bob]      recovered: {result.message.decode()!r}")
    assert result.message == REPORT
    print("[bob]      report intact despite transit, inspection and use")


if __name__ == "__main__":
    main()
