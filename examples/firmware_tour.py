"""A tour of the firmware substrate: from payload binary to parked CPU.

The paper's tool "takes a payload expressed as a binary file, and returns an
assembly program that writes that payload to the SRAM" (§4.2).  This example
walks that path visibly: generate the assembly, assemble it, disassemble the
head of the image, flash it over the debug port, power the device, and watch
the CPU copy the payload and park in its busy-wait.

Run:  python examples/firmware_tour.py
"""

from repro import DebugPort, make_device
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.programs import payload_writer_program, retention_program

PAYLOAD = bytes(range(64)) * 2  # 128 bytes of "secret" payload


def main() -> None:
    source = payload_writer_program(PAYLOAD)
    print("generated payload-writer assembly (head):")
    for line in source.splitlines()[:14]:
        print(f"    {line}")
    print(f"    ... ({len(source.splitlines())} lines total)\n")

    program = assemble(source)
    print(f"assembled: {program.n_words} words, entry {program.entry_point:#x}")
    print("disassembly of the copy loop:")
    for line in disassemble(program.image[: 12 * 4])[:12]:
        print(f"    {line}")

    device = make_device("MSP432P401", rng=99, sram_kib=1)
    device.load_firmware(program)
    device.power_on()
    port = DebugPort(device)
    print(f"\nCPU after boot: spinning={device.cpu.spinning}, "
          f"{device.cpu.instructions_retired} instructions retired")
    copied = port.read_sram(0, len(PAYLOAD))
    print(f"SRAM holds the payload: {copied == PAYLOAD}")

    # The receiver-side retention program never touches SRAM.
    device.power_off()
    device.load_firmware(retention_program())
    state_before = device.power_on().copy()
    state_after = port.read_sram_bits()
    print(f"retention program preserved the power-on state: "
          f"{bool((state_before == state_after).all())}")


if __name__ == "__main__":
    main()
