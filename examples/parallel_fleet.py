"""Parallel fleet encoding and device selection (paper §5.3).

One thermal chamber, five boards: stage five probe payloads, run a single
shared stress period, rank the devices by measured channel error, and ship
the best one with the highest-rate ECC meeting a 0.01% residual target —
the workflow behind the paper's 160x headline.

Run:  python examples/parallel_fleet.py
"""

import numpy as np

from repro import make_device
from repro.core.batch import encode_fleet
from repro.core.message import max_message_bytes
from repro.harness.rack import EncodingRack


def main() -> None:
    # --- the explicit rack view: one chamber, one stress period, N boards.
    devices = [
        make_device("MSP432P401", rng=900 + i, sram_kib=2) for i in range(5)
    ]
    rack = EncodingRack(devices)
    rng = np.random.default_rng(1)
    payloads = [
        rng.integers(0, 2, d.sram.n_bits).astype(np.uint8) for d in devices
    ]
    rack.stage_payloads(payloads)
    print(f"rack loaded: {len(rack)} boards in one chamber")
    rack.stress_all(stress_hours=10.0)
    errors = rack.measure_errors(payloads)
    print("per-slot channel error after one shared 10 h stress period:")
    for slot, error in enumerate(errors):
        print(f"  slot {slot}: {error:.2%}")

    # --- the selection workflow end to end (with device-to-device spread).
    fleet = encode_fleet(n_devices=8, sram_kib=1, target_error=1e-4, rng=4)
    print("\nfleet selection across 8 candidate devices:")
    print("  measured errors:",
          ", ".join(f"{e:.1%}" for e in fleet.errors))
    winner = fleet.winner
    spec = winner.board.device.spec
    capacity = max_message_bytes(64 * 1024 * 8, ecc=fleet.scheme)
    print(f"  winner: device #{winner.index} at {winner.measured_error:.1%}")
    print(f"  scheme for <0.01% residual: {fleet.scheme.name} "
          f"(rate {fleet.scheme.rate:.3f})")
    print(f"  payload on a full 64 KiB {spec.name}: {capacity:,} bytes")


if __name__ == "__main__":
    main()
