"""Quickstart: hide a message in a microcontroller's SRAM and get it back.

Runs the full Invisible Bits protocol against a simulated MSP432P401:
message -> Hamming(7,4) + 7-copy repetition -> AES-CTR (nonce = device ID)
-> payload-writer firmware -> 10 h at 3.3 V / 85 C -> ship -> capture five
power-on states -> majority vote -> invert -> decrypt -> decode.

Run:  python examples/quickstart.py
"""

from repro import ControlBoard, InvisibleBits, make_device, paper_end_to_end_scheme

PRE_SHARED_KEY = b"0123456789abcdef"
MESSAGE = b"meet at the dead drop at dawn; bring the second notebook"


def main() -> None:
    # --- Alice: pick a device off the shelf and bind the channel to it.
    device = make_device("MSP432P401", rng=2024, sram_kib=8)
    board = ControlBoard(device)
    alice = InvisibleBits(
        board, scheme=paper_end_to_end_scheme(PRE_SHARED_KEY, copies=7)
    )

    print(f"device:      {device.spec.name} "
          f"({device.sram.n_bytes // 1024} KiB SRAM slice)")
    print(f"message:     {MESSAGE.decode()!r} ({len(MESSAGE)} bytes)")

    sent = alice.send(MESSAGE)
    print(f"encoded:     {sent.coded_bits} coded bits "
          f"({sent.capacity_used:.1%} of SRAM), "
          f"{sent.stress_hours:.0f} h stress at the Table 4 recipe")

    # --- The device travels.  It looks and works like a normal MSP432:
    # the camouflage app is in Flash and SRAM holds whatever software wrote.

    # --- Bob: same pre-shared parameters, same device, other end of the trip.
    bob = InvisibleBits(
        board, scheme=paper_end_to_end_scheme(PRE_SHARED_KEY, copies=7)
    )
    result = bob.receive()
    print(f"captures:    {result.n_captures} power-on states, majority voted")
    print(f"recovered:   {result.message.decode()!r}")
    assert result.message == MESSAGE
    print("round trip:  exact")


if __name__ == "__main__":
    main()
