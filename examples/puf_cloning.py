"""Cloning an SRAM PUF with directed aging (the paper's footnote 2).

The paper conjectures that "the results of our extreme/controlled aging
suggest that it is possible to clone SRAM PUFs."  This example quantifies
it: enroll a victim device's power-on fingerprint, derive a key through a
fuzzy extractor, then forge a blank device into the victim's identity by
aging it while it holds the fingerprint's complement — and watch the clone
authenticate AND reproduce the victim's key.

Run:  python examples/puf_cloning.py
"""

from repro import make_device
from repro.puf import FuzzyExtractor, SramPuf, clone_power_on_state, degrade_puf


def main() -> None:
    # --- a service enrolls the victim device's PUF
    victim = make_device("MSP432P401", rng=501, sram_kib=2)
    victim_puf = SramPuf(victim)
    enrollment = victim_puf.enroll()
    extractor = FuzzyExtractor(copies=15, secret_bits=128)
    key, helper = extractor.generate(victim_puf.response(), rng=9)
    print(f"victim enrolled: {enrollment.n_bits} bits, key {key.hex()[:16]}...")

    ok, distance = victim_puf.authenticate(enrollment)
    print(f"victim authenticates: {ok} (distance {distance:.1%})")

    # --- the attacker gets one read of the fingerprint (e.g. a debug port
    # left open) and a blank device of the same model.
    fingerprint = victim_puf.response()
    blank = make_device("MSP432P401", rng=502, sram_kib=2)
    print("\nattacker ages a blank device against the stolen fingerprint...")
    result = clone_power_on_state(fingerprint, blank)
    print(f"  before: {result.baseline_distance:.1%} distance (unrelated device)")
    print(f"  after {result.stress_hours:.0f} h directed aging: "
          f"{result.clone_distance:.1%} distance")

    clone_puf = SramPuf(blank)
    ok, distance = clone_puf.authenticate(enrollment)
    print(f"clone authenticates as the victim: {ok} (distance {distance:.1%})")

    cloned_key = extractor.reproduce(clone_puf.response(), helper)
    print(f"clone reproduces the victim's key: {cloned_key == key}")

    # --- the same knob as a denial of service (footnote 2's citation [37])
    print("\nthe same aging, pointed at the victim itself, is a DoS:")
    before, after = degrade_puf(victim, enrollment, stress_hours=4.0)
    print(f"  victim's distance to its own enrollment: "
          f"{before:.1%} -> {after:.1%} (threshold 20%)")
    ok, _ = victim_puf.authenticate(enrollment)
    print(f"  victim still authenticates: {ok}")


if __name__ == "__main__":
    main()
