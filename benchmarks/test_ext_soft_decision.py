"""Extension bench: soft-decision receive vs the hard-decision baseline.

Two halves, both on identical capture stacks at equal stress time:

- BER + channel capacity, soft vs hard, across capture counts — the
  margin the majority vote throws away, measured;
- the recovery ladder behind the ``soft_vs_hard_gain`` metric gated in
  BENCH_substrate.json: the largest exactly-recovered message under
  each decision mode.
"""

from repro.experiments.ext_soft_decision import run, run_recovery_ladder


def test_ext_soft_decision(benchmark, save_report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ext_soft_decision", result)

    for n, p_flip, hard_ber, soft_ber, cap_hard, cap_soft in result.rows:
        # Soft decoding of the same captures is never worse, and the
        # capacity ordering is information-theoretic: collapsing the
        # ones-count to a majority bit can only lose information.
        assert soft_ber <= hard_ber, n
        assert cap_soft >= cap_hard, n
        assert 0.0 < p_flip < 0.5
    # At this stress level the margin is worth a strict improvement.
    assert sum(result.column("soft_ber_pct")) < sum(
        result.column("hard_ber_pct")
    )


def test_ext_soft_recovery_gain(benchmark, save_report, record_metric):
    result = benchmark.pedantic(run_recovery_ladder, rounds=1, iterations=1)
    save_report("ext_soft_recovery_ladder", result)

    hard_max = max(
        (size for size, hard_ok, _ in result.rows if hard_ok), default=0
    )
    soft_max = max(
        (size for size, _, soft_ok in result.rows if soft_ok), default=0
    )
    # Soft must recover at least as long a message as hard from the very
    # same capture stacks; at this channel error it is strictly longer.
    assert soft_max >= hard_max > 0
    gain = soft_max / hard_max
    record_metric("soft_vs_hard_gain", gain, better="higher", unit="x")
    assert gain >= 1.0
