"""Extension bench: footnote 2 — PUF cloning by directed aging.

Not a paper figure; the paper conjectures the attack and this bench
quantifies it with the calibrated MSP432 physics.
"""

from repro.device import make_device
from repro.experiments.common import ExperimentResult
from repro.puf import SramPuf, clone_power_on_state


def run_clone_sweep(*, sram_kib: float = 1, seed: int = 600):
    victim = make_device("MSP432P401", rng=seed, sram_kib=sram_kib)
    fingerprint = SramPuf(victim).response()

    result = ExperimentResult(
        experiment="Extension: PUF cloning (footnote 2)",
        description="clone-to-victim distance vs directed-aging time",
        columns=["stress_hours", "clone_distance", "fools_20pct_threshold"],
    )
    for index, stress in enumerate((2.0, 4.0, 10.0)):
        blank = make_device(
            "MSP432P401", rng=seed + 1 + index, sram_kib=sram_kib
        )
        outcome = clone_power_on_state(fingerprint, blank, stress_hours=stress)
        result.add_row(
            stress, outcome.clone_distance, outcome.fools_threshold(0.20)
        )
    result.notes = (
        "paper footnote 2: 'it is possible to clone SRAM PUFs' — confirmed "
        "at the Table 4 recipe"
    )
    return result


def test_ext_puf_clone(benchmark, save_report):
    result = benchmark.pedantic(run_clone_sweep, rounds=1, iterations=1)
    save_report("ext_puf_clone", result)

    rows = {row[0]: row for row in result.rows}
    # Distance falls with aging time.
    assert rows[10.0][1] < rows[4.0][1] < rows[2.0][1]
    # At the full recipe the clone is inside any sane threshold.
    assert rows[10.0][1] < 0.10
    assert rows[10.0][2] is True
    # A modest 4 h attack already approaches the 20% line.
    assert rows[4.0][1] < 0.25
