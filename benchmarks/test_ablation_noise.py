"""Ablation bench: power-up noise vs majority voting."""

from repro.experiments import ablation_noise


def test_ablation_noise(benchmark, save_report):
    result = benchmark.pedantic(ablation_noise.run, rounds=1, iterations=1)
    save_report("ablation_noise", result)

    rows = {row[0]: row for row in result.rows}
    # Noisier processes hurt single captures (endpoints of the sweep).
    singles = [rows[s][1] for s in sorted(rows)]
    assert singles[-1] > singles[0]
    # Voting's benefit grows with noise and becomes material at 0.30...
    gains = [rows[s][3] for s in sorted(rows)]
    assert gains[-1] > gains[0]
    assert gains[-1] > 0.005
    # ...and voted error stays anchored near the mismatch floor throughout.
    for sigma, row in rows.items():
        assert row[2] < 0.11, sigma
