"""Bench: Figure 9 — error vs copies at three stress budgets."""

from collections import defaultdict

from repro.experiments import fig09_copies_stress


def test_fig09_copies_vs_stress(benchmark, save_report):
    result = benchmark.pedantic(fig09_copies_stress.run, rounds=1, iterations=1)
    save_report("fig09_copies_vs_stress", result)

    curves = defaultdict(dict)
    for hours, copies, error in result.rows:
        curves[hours][copies] = error

    from repro.experiments.asciichart import ascii_chart

    copies_axis = sorted(curves[2.0])
    save_report(
        "fig09_chart",
        ascii_chart(
            copies_axis,
            {
                f"{h:.0f} h": [curves[h][c] for c in copies_axis]
                for h in sorted(curves)
            },
            title="Figure 9: error (%) vs payload copies at 2/4/6 h",
            x_label="copies", y_label="error %",
        ),
    )

    # Longer stress gives a lower curve at every copy count (within noise).
    for copies in (1, 5, 9):
        assert curves[6.0][copies] < curves[4.0][copies] < curves[2.0][copies]
    # Copies reduce error along each curve.
    for hours, curve in curves.items():
        assert curve[19] < curve[7] < curve[1], hours
    # Diminishing returns: the first copies help more than the last.
    gain_early = curves[4.0][1] - curves[4.0][5]
    gain_late = curves[4.0][15] - curves[4.0][19]
    assert gain_early > 5 * max(gain_late, 1e-9)
