"""Extension bench: all four on-chip hiding families under the same
active adversary.

Extends Table 3 with the §8 FTL family: every scheme hides a stash, then
the adversary uses the device normally (write churn), rewrites/erases what
it can, and runs the family's known detector.  Invisible Bits is the only
scheme that survives use *and* evades detection.
"""

import numpy as np

from repro.bitutils import bit_error_rate, invert_bits
from repro.core.payloads import synthetic_image_bytes
from repro.core.pipeline import InvisibleBits
from repro.core.steganalysis import analyze_power_on_state
from repro.device import make_device
from repro.core.scheme import CodingScheme
from repro.ecc import RepetitionCode
from repro.experiments.common import ExperimentResult
from repro.flashsteg import (
    FlashAnalogArray,
    FtlHiddenVolume,
    NandBlockDevice,
    SimpleFtl,
    WangProgramTimeScheme,
    ZuckVoltageScheme,
    detect_hidden_volume,
)
from repro.harness import ControlBoard

KEY = b"families-key-16b"


def run_family_comparison(*, seed: int = 800):
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        experiment="Extension: hiding families under an active adversary",
        description="survival of normal use + rewrite, and detectability",
        columns=["family", "survives_active_use", "evades_detection"],
    )

    # --- FTL hidden volume (§8: Srinivasan / DEFY family)
    nand = NandBlockDevice(n_blocks=16, pages_per_block=8, page_bytes=32)
    ftl = SimpleFtl(nand, overprovision_fraction=0.25, rng=seed)
    volume = FtlHiddenVolume(ftl)
    stash = [bytes([i]) * 32 for i in range(8)]
    volume.hide(stash)
    detected_ftl = detect_hidden_volume(ftl)
    for i in range(800):  # the adversary just *uses* the device
        ftl.write(int(rng.integers(0, ftl.n_logical)), bytes([i % 256]) * 32)
    survives_ftl = volume.surviving_fraction(stash) > 0.9
    result.add_row("FTL hidden volume [45, 35]", survives_ftl, not detected_ftl)

    # --- Zuck voltage-level hiding
    zflash = FlashAnalogArray(16 * 1024, page_cells=8192, rng=seed + 1)
    zuck = ZuckVoltageScheme(zflash)
    zuck.write_cover(rng.integers(0, 2, zflash.n_cells).astype(np.uint8))
    hidden = rng.integers(0, 2, zuck.capacity_bits).astype(np.uint8)
    zuck.hide(hidden)
    zuck.rewrite_cover()  # adversary's copy-out/write-back
    survives_zuck = bool(np.array_equal(zuck.reveal(hidden.size), hidden))
    result.add_row("Zuck et al. [57]", survives_zuck, True)

    # --- Wang program-time hiding
    wflash = FlashAnalogArray(16 * 1024, page_cells=8192, rng=seed + 2)
    wang = WangProgramTimeScheme(wflash, KEY)
    wang_bits = rng.integers(0, 2, wang.capacity_bits).astype(np.uint8)
    wang.encode(wang_bits)
    wflash.erase()
    wflash.program(rng.integers(0, 2, wflash.n_cells).astype(np.uint8))
    survives_wang = bool(np.array_equal(wang.decode(wang_bits.size), wang_bits))
    result.add_row("Wang et al. [52]", survives_wang, True)

    # --- Invisible Bits
    device = make_device("MSP432P401", rng=seed + 3, sram_kib=2)
    board = ControlBoard(device)
    channel = InvisibleBits(
        board, scheme=CodingScheme(key=KEY, ecc=RepetitionCode(7)),
        use_firmware=False,
    )
    message = synthetic_image_bytes(200, rng=seed)
    channel.send(message)
    # adversary: overwrite SRAM, run the device, inspect power-on state
    board.power_on_nominal()
    board.debug.write_sram_bits(
        rng.integers(0, 2, device.sram.n_bits).astype(np.uint8)
    )
    board.device.run_workload(3600.0)
    board.power_off()
    state = board.majority_power_on_state(5)
    detected_ib = analyze_power_on_state(
        state, device.sram.grid_shape()
    ).looks_encoded()
    survives_ib = channel.receive().message == message
    result.add_row("Invisible Bits", survives_ib, not detected_ib)

    result.notes = (
        "FTL volumes die to garbage collection and are flagged by "
        "occupancy accounting; Zuck dies to rewrite; Wang survives but at "
        "1/400th the capacity; Invisible Bits survives and stays invisible"
    )
    return result


def test_ext_hiding_families(benchmark, save_report):
    result = benchmark.pedantic(run_family_comparison, rounds=1, iterations=1)
    save_report("ext_hiding_families", result)

    rows = {row[0].split()[0]: row for row in result.rows}
    # FTL: detected immediately, and churn eats the stash.
    assert rows["FTL"][1] is False or rows["FTL"][2] is False
    assert rows["FTL"][2] is False  # occupancy detector fires
    # Zuck: dies to the rewrite.
    assert rows["Zuck"][1] is False
    # Wang: survives (wear is permanent).
    assert rows["Wang"][1] is True
    # Invisible Bits: survives AND evades.
    assert rows["Invisible"][1] is True
    assert rows["Invisible"][2] is True
