"""Bench: Figure 11 — block Hamming-weight distributions."""

from repro.experiments import fig11_weights


def test_fig11_hamming_weights(benchmark, save_report):
    data = benchmark.pedantic(fig11_weights.run, rounds=1, iterations=1)
    save_report("fig11_hamming_weights", data.result)

    from repro.experiments.asciichart import ascii_chart

    axis = data.densities["no hidden message"][0][30:100].tolist()
    save_report(
        "fig11_chart",
        ascii_chart(
            axis,
            {
                name: density[30:100].tolist()
                for name, (weights, density) in data.densities.items()
            },
            title="Figure 11: block Hamming-weight density (weights 30-99)",
            x_label="hamming weight", y_label="density",
        ),
    )

    rows = {row[0]: row for row in data.result.rows}
    clean_mean, clean_std = rows["no hidden message"][1:]
    plain_mean, plain_std = rows["hidden message (plain-text)"][1:]
    enc_mean, enc_std = rows["hidden message (encrypted)"][1:]

    # Clean devices: binomial bell around 64 with sigma ~ 5.7.
    assert abs(clean_mean - 64.0) < 1.5
    assert 4.5 < clean_std < 7.0
    # Plaintext payload: visibly wider/skewed distribution.
    assert plain_std > 2.0 * clean_std
    # Encrypted payload: matches the clean bell.
    assert abs(enc_mean - clean_mean) < 1.0
    assert abs(enc_std - clean_std) < 1.0
    # The plotted densities are exported for all three classes.
    assert len(data.densities) == 3
