"""Sustained-throughput soak of the fleet service frontend.

The serving-layer acceptance bench: an in-process
:class:`~repro.service.LoadGenerator` drives >= 10k send→receive→verify
round trips through a 4-shard :class:`~repro.service.FleetService` and
every message must be accounted for (``lost == 0``) and byte-exact
(``mismatched == 0``).  The measured number —
``service_throughput_msgs_per_s`` — is the full-stack rate: queueing,
rendezvous routing, batch formation, the fleet capture kernel, decode,
and result plumbing, with no socket in the loop (the HTTP path is CI's
smoke job, not this measurement).

Devices are one-shot by design: re-encoding a device on top of residual
NBTI aging is exactly the degraded-channel regime the paper's §7
recovery experiments study, so the soak models the steady state of a
provisioning fleet — every message lands on fresh silicon.

The soak stresses at 24 h instead of the 12 h recipe default: across
10k process-varied devices the 12 h raw-BER tail crosses both the
decode margin and the 0.2 raw-BER lane SLO (p99 ≈ 0.16 at 12 h versus
≈ 0.07 at 20 h), and burning stress time for channel margin is exactly
the paper's Fig. 6 tradeoff.  Stress time is simulated closed-form, so
the extra hours cost nothing measurable.
"""

from __future__ import annotations

import asyncio

from repro.service import FleetService, LoadGenerator, ServiceConfig

N_MESSAGES = 10_000
N_SHARDS = 4


def test_perf_service_soak_throughput(record_metric):
    """>= 10k messages over 4 shards: zero lost, zero mismatched."""

    async def soak():
        service = FleetService(
            ServiceConfig(shards=N_SHARDS, queue_depth=128, max_batch=16)
        )
        await service.start()
        generator = LoadGenerator(
            seed=2022, message_bytes=8, stress_hours=24.0
        )
        report = await generator.run(
            service, N_MESSAGES, concurrency=64
        )
        stats = service.stats()
        await service.stop()
        return report, stats

    report, stats = asyncio.run(soak())

    # The zero-lost-jobs invariant, and nothing silently corrupted.
    assert report.lost == 0
    assert report.completed == N_MESSAGES, report.errors
    assert report.failed == 0 and report.shed == 0, report.errors
    assert report.mismatched == 0, report.errors

    # The soak genuinely exercised every lane and never tripped one.
    busy = [q for q in stats["queues"].values() if q["enqueued"] > 0]
    assert len(busy) == N_SHARDS
    assert stats["admission"]["tripped"] == {}
    assert stats["devices"] == N_MESSAGES

    throughput = report.throughput_msgs_per_s
    print(
        f"\nservice soak: {report.completed} msgs in "
        f"{report.elapsed_s:.1f} s -> {throughput:.1f} msg/s "
        f"across {N_SHARDS} shards"
    )
    record_metric(
        "service_throughput_msgs_per_s",
        throughput,
        better="higher",
        unit="msg/s",
    )
    # Generous absolute floor: the full stack runs hundreds of messages
    # per second on one core; double digits means something broke.
    assert throughput >= 50.0
