"""Sustained-throughput soak of the fleet service frontend.

The serving-layer acceptance bench: an in-process
:class:`~repro.service.LoadGenerator` drives >= 10k send→receive→verify
round trips through a 4-shard :class:`~repro.service.FleetService` and
every message must be accounted for (``lost == 0``) and byte-exact
(``mismatched == 0``).  The measured number —
``service_throughput_msgs_per_s`` — is the full-stack rate: queueing,
rendezvous routing, batch formation, the fleet capture kernel, decode,
and result plumbing, with no socket in the loop (the HTTP path is CI's
smoke job, not this measurement).

Devices are one-shot by design: re-encoding a device on top of residual
NBTI aging is exactly the degraded-channel regime the paper's §7
recovery experiments study, so the soak models the steady state of a
provisioning fleet — every message lands on fresh silicon.

The soak stresses at 24 h instead of the 12 h recipe default: across
10k process-varied devices the 12 h raw-BER tail crosses both the
decode margin and the 0.2 raw-BER lane SLO (p99 ≈ 0.16 at 12 h versus
≈ 0.07 at 20 h), and burning stress time for channel margin is exactly
the paper's Fig. 6 tradeoff.  Stress time is simulated closed-form, so
the extra hours cost nothing measurable.
"""

from __future__ import annotations

import asyncio
import gc
import tempfile
import time

from repro.service import FleetService, LoadGenerator, ServiceConfig

N_MESSAGES = 10_000
N_SHARDS = 4


def test_perf_service_soak_throughput(record_metric, frozen_heap):
    """>= 10k messages over 4 shards: zero lost, zero mismatched."""

    async def soak():
        service = FleetService(
            ServiceConfig(shards=N_SHARDS, queue_depth=128, max_batch=16)
        )
        await service.start()
        generator = LoadGenerator(
            seed=2022, message_bytes=8, stress_hours=24.0
        )
        report = await generator.run(
            service, N_MESSAGES, concurrency=64
        )
        stats = service.stats()
        await service.stop()
        return report, stats

    report, stats = asyncio.run(soak())

    # The zero-lost-jobs invariant, and nothing silently corrupted.
    assert report.lost == 0
    assert report.completed == N_MESSAGES, report.errors
    assert report.failed == 0 and report.shed == 0, report.errors
    assert report.mismatched == 0, report.errors

    # The soak genuinely exercised every lane and never tripped one.
    busy = [q for q in stats["queues"].values() if q["enqueued"] > 0]
    assert len(busy) == N_SHARDS
    assert stats["admission"]["tripped"] == {}
    assert stats["devices"] == N_MESSAGES

    throughput = report.throughput_msgs_per_s
    print(
        f"\nservice soak: {report.completed} msgs in "
        f"{report.elapsed_s:.1f} s -> {throughput:.1f} msg/s "
        f"across {N_SHARDS} shards"
    )
    record_metric(
        "service_throughput_msgs_per_s",
        throughput,
        better="higher",
        unit="msg/s",
    )
    # Generous absolute floor: the full stack runs hundreds of messages
    # per second on one core; double digits means something broke.
    assert throughput >= 50.0


# The durability tax must stay a tax, not a rewrite of the cost model:
# enough messages that per-soak setup amortizes away, few enough that
# the paired legs stay cheap next to the 10k soak above.
N_JOURNAL_MESSAGES = 400


def test_perf_journal_overhead(record_metric, frozen_heap):
    """Write-ahead journaling costs <= 1.25x the in-memory service.

    Two identical keyed soaks — same seed, same devices, same payloads —
    one on a plain in-memory :class:`~repro.service.FleetService`, one
    with ``journal_dir`` set so every op is CRC-framed, appended, and
    batch-fsynced (``Journal(fsync_every=8)``, the serving default)
    before it touches silicon.  The measured window covers admission
    through result plumbing; the final checkpoint a graceful ``stop()``
    cuts is deliberately outside it (that is shutdown cost, not per-op
    cost).  ``journal_overhead_x`` is the elapsed-time ratio.
    """

    def timed_soak(config: ServiceConfig) -> float:
        async def soak():
            service = FleetService(config)
            await service.start()
            # 24 h stress for the same reason as the big soak above:
            # buy raw-BER margin so the process-variation tail never
            # turns a timing bench into a decode flake.
            generator = LoadGenerator(
                seed=77, message_bytes=8, stress_hours=24.0, idempotency=True
            )
            start = time.perf_counter()
            report = await generator.run(
                service, N_JOURNAL_MESSAGES, concurrency=16
            )
            elapsed = time.perf_counter() - start
            await service.stop()
            assert report.lost == 0
            assert report.completed == N_JOURNAL_MESSAGES, report.errors
            assert report.mismatched == 0, report.errors
            return elapsed

        return asyncio.run(soak())

    def best_of(make_config, reps: int = 2) -> float:
        # A single leg carries ~20% scheduler/GC noise on a loaded or
        # single-core machine — more than the 1.25x gate leaves room
        # for.  The min over repeats estimates the noise-free cost,
        # which is what a ratio gate should compare.  Each rep gets a
        # fresh config (and journal dir) so the keyed soak can never be
        # served from a previous rep's idempotency cache.
        gc.collect()
        return min(timed_soak(make_config()) for _ in range(reps))

    timed_soak(ServiceConfig(shards=2, seed=77))  # cold-start warm-up
    in_memory_s = best_of(lambda: ServiceConfig(shards=2, seed=77))
    with tempfile.TemporaryDirectory() as journal_root:
        dirs = iter([f"{journal_root}/a", f"{journal_root}/b"])
        journaled_s = best_of(
            lambda: ServiceConfig(
                shards=2, seed=77, journal_dir=next(dirs)
            )
        )

    overhead = journaled_s / in_memory_s
    print(
        f"\njournal overhead: {in_memory_s:.2f} s in-memory vs "
        f"{journaled_s:.2f} s journaled over {N_JOURNAL_MESSAGES} msgs "
        f"-> {overhead:.3f}x"
    )
    record_metric("journal_overhead_x", overhead, better="lower", unit="x")
    # The acceptance gate: durability stays under a quarter of the
    # serving cost.  Measured ~1.1x locally at the default fsync batch.
    assert overhead <= 1.25
