"""Extension bench: BCH in the low-error regime (§5.2's closing remark).

The paper: "Once the error rate is low enough, more efficient error
correction codes are available."  This bench compares, at equal-or-better
rate, BCH(15,7) against repetition after a 5-copy vote has brought the
Invisible Bits channel down to sub-percent error.
"""

import numpy as np

from repro.ecc import BCHCode, RepetitionCode
from repro.ecc.analysis import exact_residual_ber, repetition_residual_error
from repro.experiments.common import ExperimentResult


def run_bch_comparison(*, channel_errors=(0.02, 0.01, 0.005, 0.002)):
    bch = BCHCode(4, 2)  # rate 7/15 ~ 0.47
    result = ExperimentResult(
        experiment="Extension: BCH vs repetition at low error",
        description="residual error: BCH(15,7) vs 3-copy repetition",
        columns=["channel_error", "bch_15_7", "repetition_x3"],
    )
    for p in channel_errors:
        result.add_row(
            p,
            exact_residual_ber(bch, p),
            repetition_residual_error(p, 3),
        )
    result.notes = (
        "BCH rate 0.47 vs repetition rate 0.33: better residual at higher "
        "rate once the channel is clean (paper SS5.2's closing guidance)"
    )
    return result


def test_ext_bch(benchmark, save_report):
    result = benchmark.pedantic(run_bch_comparison, rounds=1, iterations=1)
    save_report("ext_bch", result)

    for channel, bch_res, rep_res in result.rows:
        if channel <= 0.01:
            # In the clean regime BCH dominates despite its higher rate.
            assert bch_res < rep_res, channel
    # The advantage grows as the channel improves.
    first_ratio = result.rows[0][1] / result.rows[0][2]
    last_ratio = result.rows[-1][1] / result.rows[-1][2]
    assert last_ratio < first_ratio


def test_ext_bch_end_to_end(benchmark, save_report):
    """BCH layered over the simulated channel via repetition pre-cleaning."""
    from repro.bitutils import bit_error_rate, invert_bits, majority_vote
    from repro.device import make_device
    from repro.ecc import ConcatenatedCode
    from repro.harness import ControlBoard

    def run():
        device = make_device("MSP432P401", rng=601, sram_kib=4)
        board = ControlBoard(device)
        code = ConcatenatedCode(BCHCode(4, 2), RepetitionCode(3))
        data_bits = device.sram.n_bits // code.n * code.k
        message = np.random.default_rng(0).integers(0, 2, data_bits)
        message = message.astype(np.uint8)
        coded = code.encode(message)
        payload = np.concatenate(
            [coded, np.zeros(device.sram.n_bits - coded.size, dtype=np.uint8)]
        )
        board.encode_message(payload, use_firmware=False, camouflage=False)
        recovered = invert_bits(board.majority_power_on_state(5))
        decoded = code.decode(recovered[: coded.size])
        return bit_error_rate(message, decoded), code.rate

    residual, rate = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_bch_end_to_end",
        f"== Extension: BCH(15,7) x repetition(3) on the live channel ==\n"
        f"residual error: {residual:.6f} at rate {rate:.3f}",
    )
    # 6.5% channel -> ~1.2% after 3 votes -> well under 0.1% after BCH.
    assert residual < 0.002
    assert rate > 0.15
