"""Extension bench: temperature and the remanence window.

The paper's harness kills remanence by draining the rail (§5); a cold-boot
style adversary instead *extends* the window by chilling the device.  This
bench sweeps ambient temperature and measures how long SRAM contents
survive without power — quantifying both why the drain discipline matters
and what refrigeration buys an attacker (only digital contents: the hidden
message is analog either way).
"""

import numpy as np

from repro.bitutils import bit_error_rate
from repro.device.catalog import device_spec
from repro.experiments.common import ExperimentResult
from repro.sram import SRAMArray
from repro.units import celsius_to_kelvin


def run_coldboot_sweep(
    *, temps_c=(-20.0, 0.0, 25.0, 85.0), gaps_s=(0.05, 0.25, 1.0), seed=700
):
    tech = device_spec("MSP432P401").technology
    result = ExperimentResult(
        experiment="Extension: remanence vs temperature",
        description="fraction of SRAM contents surviving a power gap",
        columns=["temp_c", "gap_s", "survival_fraction"],
    )
    rng = np.random.default_rng(seed)
    for temp_c in temps_c:
        for gap in gaps_s:
            arr = SRAMArray.from_kib(1, tech, rng=seed)
            data = rng.integers(0, 2, arr.n_bits).astype(np.uint8)
            arr.set_ambient(celsius_to_kelvin(temp_c))
            arr.apply_power()
            arr.write(data)
            arr.remove_power(drain=False)
            arr.shelve(gap)
            state = arr.apply_power()
            arr.remove_power()
            # Decayed cells fall to their power-on preference (~50% match);
            # survival is the excess agreement over a coin flip.
            agreement = 1.0 - bit_error_rate(data, state)
            survival = max(0.0, (agreement - 0.5) / 0.5)
            result.add_row(temp_c, gap, survival)
    result.notes = (
        "chilling extends the retention window (cold-boot); the paper's "
        "drain-to-ground discipline zeroes it at any temperature"
    )
    return result


def test_ext_coldboot(benchmark, save_report):
    result = benchmark.pedantic(run_coldboot_sweep, rounds=1, iterations=1)
    save_report("ext_coldboot", result)

    table = {(row[0], row[1]): row[2] for row in result.rows}
    # Colder keeps data longer at every gap length.
    for gap in (0.05, 0.25, 1.0):
        assert table[(-20.0, gap)] >= table[(25.0, gap)]
        assert table[(25.0, gap)] >= table[(85.0, gap)]
    # Room temperature: a 50 ms glitch keeps most contents; a second loses
    # almost everything.
    assert table[(25.0, 0.05)] > 0.7
    assert table[(25.0, 1.0)] < 0.1
    # At 85 C even the short gap decays hard.
    assert table[(85.0, 0.25)] < table[(25.0, 0.25)]
