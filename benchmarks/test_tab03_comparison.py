"""Bench: Table 3 and §5.3 — comparison against the Flash baselines."""

from repro.experiments import tab03_comparison
from repro.flashsteg.comparison import capacity_advantage


def test_tab03_comparison(benchmark, save_report):
    result = benchmark.pedantic(tab03_comparison.run, rounds=1, iterations=1)
    save_report("tab03_comparison", result)

    rows = {row[0].split()[0]: row for row in result.rows}

    # Capacity: Invisible Bits is two orders of magnitude above either
    # Flash scheme at matched residual error.
    ib_cap = rows["Invisible"][1]
    assert ib_cap > 100 * rows["Wang"][1]
    assert ib_cap > 100 * rows["Zuck"][1]

    # Resilience: the Zuck stash dies to a digital-no-op rewrite; Wang's
    # wear survives; Invisible Bits survives (and still decodes).
    assert rows["Zuck"][2] is False
    assert rows["Wang"][2] is True
    assert rows["Invisible"][2] is True
    assert rows["Invisible"][3] is True

    # §5.3 arithmetic: ~100x (recipe device) and ~160x (selected device).
    assert capacity_advantage() > 90
    assert capacity_advantage(sram_capacity_fraction=1 / 3) > 150
