"""Bench: Figure 6 — error vs stress time across five devices."""

from repro.experiments import fig06_stress_time


def test_fig06_stress_time_error(benchmark, save_report):
    result = benchmark.pedantic(fig06_stress_time.run, rounds=1, iterations=1)
    save_report("fig06_stress_time_error", result)

    from repro.experiments.asciichart import ascii_chart

    save_report(
        "fig06_chart",
        ascii_chart(
            result.column("hours"),
            {
                "mean": result.column("mean_error"),
                "min": result.column("min_error"),
                "max": result.column("max_error"),
            },
            title="Figure 6: error (%) vs stress time (h), five devices",
            x_label="stress hours", y_label="error %",
        ),
    )

    means = result.column("mean_error")
    mins = result.column("min_error")
    maxs = result.column("max_error")
    hours = result.column("hours")

    # Error falls monotonically with stress time.
    assert means == sorted(means, reverse=True)
    # Paper endpoints: ~33% at 2 h, ~5-7% at 10 h.
    assert 25.0 < means[hours.index(2)] < 40.0
    assert 3.0 < means[hours.index(10)] < 9.0
    # Device-to-device band exists and brackets the mean.
    for lo, mid, hi in zip(mins, means, maxs):
        assert lo <= mid <= hi
    # §5.3: the best device approaches ~2.7% at 10 h.
    assert mins[hours.index(10)] < 4.5
