"""Bench: Table 5 and the §6 Welch's t-test — plausible deniability."""

from repro.experiments import tab05_indistinguishability


def test_tab05_indistinguishability(benchmark, save_report):
    data = benchmark.pedantic(
        tab05_indistinguishability.run, rounds=1, iterations=1
    )
    save_report("tab05_indistinguishability", data.result)

    plain = [r for r in data.result.rows if r[0].endswith("(no encryption)")]
    clean = [r for r in data.result.rows if r[0] == "No hidden message"]
    encrypted = [r for r in data.result.rows if r[0].endswith("(encrypted)")]

    # Plaintext payloads: strong spatial autocorrelation and biased states
    # (paper: I ~ 0.4-0.5, bias ~ 0.535).
    for _, stat, bias in plain:
        assert stat > 0.1
        assert abs(bias - 0.5) > 0.01
    # Clean and encrypted devices: both near-random and unbiased
    # (paper: I < 0.01, bias ~ 0.50).
    for _, stat, bias in clean + encrypted:
        assert abs(stat) < 0.03
        assert abs(bias - 0.5) < 0.015

    # §6: the adversary's t-test cannot reject the null (paper p = 0.071).
    assert not data.null_rejected
    assert data.welch_p_one_tailed > 0.05
