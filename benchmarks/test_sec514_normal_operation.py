"""Bench: §5.1.4 — error growth under normal device operation."""

from repro.experiments import sec514_normal_operation


def test_sec514_normal_operation(benchmark, save_report):
    result = benchmark.pedantic(
        sec514_normal_operation.run, rounds=1, iterations=1
    )
    save_report("sec514_normal_operation", result)

    rows = {row[0]: row for row in result.rows}
    operated = rows["normal operation"][3]
    shelved = rows["shelved"][3]
    # Paper: ~1.2x under operation vs ~1.4x shelved — operation reinforces
    # the encoding half the time.
    assert 1.05 < operated < 1.40
    assert 1.25 < shelved < 1.55
    assert operated < shelved
