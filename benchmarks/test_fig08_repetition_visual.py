"""Bench: Figure 8 — repetition-code visual cleanup."""

from repro.experiments import fig08_repetition_visual


def test_fig08_repetition_visual(benchmark, save_report):
    panels = benchmark.pedantic(
        fig08_repetition_visual.run, rounds=1, iterations=1
    )
    save_report("fig08_repetition_visual", panels.result)

    errors = dict(panels.result.rows)
    # More copies, cleaner image (monotone within noise).
    assert errors[7] < errors[3] < errors[1]
    assert errors[5] < errors[1]
    # The 1-copy image is visibly noisy at the short 4 h stress...
    assert errors[1] > 0.05
    # ...and 7 copies clean most of it up.
    assert errors[7] < errors[1] / 3
    # The decoded bitmaps are exported for rendering.
    assert set(panels.images) == {1, 3, 5, 7}
