"""Observability overhead: trace propagation and the sampling profiler.

The tracing PR's acceptance gates.  Observability that taxes the serving
path gets turned off in production, so both knobs are benched as paired
soaks — same seed, same devices, same payloads — and gated as ratios:

- ``trace_propagation_overhead_x``: a fully traced soak (JSONL sink
  attached, every request carrying a trace id, every span recorded)
  versus the untraced default where spans are null objects;
- ``profiler_overhead_x``: the same soak with the sampling profiler
  ticking at its 5 ms default versus unprofiled.

Both must stay <= 1.25x.  The soak is sized like the journal-overhead
bench: enough messages that per-soak setup amortizes away, few enough
that the paired legs stay cheap next to the 10k throughput soak.
"""

from __future__ import annotations

import asyncio
import gc
import tempfile
import time

from repro import telemetry
from repro.profile import profiling
from repro.service import FleetService, LoadGenerator, ServiceConfig
from repro.telemetry import JsonlSink

N_MESSAGES = 400


def _one_soak(seed: int = 77) -> float:
    """One keyed in-memory soak; returns elapsed seconds."""

    async def soak():
        service = FleetService(ServiceConfig(shards=2, seed=seed))
        await service.start()
        # 24 h stress: buy raw-BER margin so the process-variation tail
        # never turns a timing bench into a decode flake.
        generator = LoadGenerator(
            seed=seed, message_bytes=8, stress_hours=24.0, idempotency=True
        )
        start = time.perf_counter()
        report = await generator.run(service, N_MESSAGES, concurrency=16)
        elapsed = time.perf_counter() - start
        await service.stop()
        assert report.lost == 0
        assert report.completed == N_MESSAGES, report.errors
        assert report.mismatched == 0, report.errors
        return elapsed

    return asyncio.run(soak())


_WARMED = False


def _timed_soak(seed: int = 77) -> float:
    """Best-of-three soaks, after a one-time session warm-up.

    A single 400-message leg has ~20% wall-time noise on a busy (or
    single-core) machine — more than the 1.25x gates leave room for —
    and the first soak of the session pays cold-import and
    allocator-warm-up costs that would bias whichever leg runs first.
    Warm once, collect garbage so a long bench session's accumulated
    heap doesn't tax one leg more than the other, then take the min of
    three runs per leg: the minimum estimates the noise-free cost,
    which is what a ratio gate should compare.
    """
    global _WARMED
    if not _WARMED:
        _WARMED = True
        _one_soak(seed)
    gc.collect()
    return min(_one_soak(seed) for _ in range(3))


def test_perf_trace_propagation_overhead(record_metric, frozen_heap):
    """Full span recording costs <= 1.25x the untraced service."""
    untraced_s = _timed_soak()

    with tempfile.TemporaryDirectory() as tmp:
        sink = JsonlSink(f"{tmp}/trace.jsonl")
        telemetry.add_sink(sink)
        try:
            traced_s = _timed_soak()
        finally:
            telemetry.remove_sink(sink)
            sink.close()
        # The soak actually traced: one connected tree per message.
        # (Stacked group captures and lane probes root extra traces of
        # their own — shared work that belongs to no single request —
        # so count the per-message roots, not every trace in the file.)
        records = telemetry.load_records(f"{tmp}/trace.jsonl")
        traces = telemetry.traceview.group_traces(records)
        message_roots = [
            summary
            for tid, spans in traces.items()
            for summary in [telemetry.traceview.summarize_trace(tid, spans)]
            if summary.root_name == "load.message"
        ]
        # Three timed runs wrote into one file (best-of-three legs).
        assert len(message_roots) == 3 * N_MESSAGES
        assert all(s.complete for s in message_roots)

    overhead = traced_s / untraced_s
    print(
        f"\ntrace propagation: {untraced_s:.2f} s untraced vs "
        f"{traced_s:.2f} s traced over {N_MESSAGES} msgs "
        f"-> {overhead:.3f}x"
    )
    record_metric(
        "trace_propagation_overhead_x", overhead, better="lower", unit="x"
    )
    # The acceptance gate: contextvar plumbing plus JSONL span writes
    # stay under a quarter of the serving cost.
    assert overhead <= 1.25


def test_perf_profiler_overhead(record_metric, frozen_heap):
    """The 5 ms sampling profiler costs <= 1.25x the unprofiled service."""
    unprofiled_s = _timed_soak()

    with tempfile.TemporaryDirectory() as tmp:
        with profiling(f"{tmp}/profile.txt") as profiler:
            profiled_s = _timed_soak()
        # The profiler genuinely sampled the soak.
        assert profiler.total_samples > 0

    overhead = profiled_s / unprofiled_s
    print(
        f"\nprofiler: {unprofiled_s:.2f} s unprofiled vs "
        f"{profiled_s:.2f} s profiled over {N_MESSAGES} msgs "
        f"-> {overhead:.3f}x"
    )
    record_metric("profiler_overhead_x", overhead, better="lower", unit="x")
    # The acceptance gate: O(threads x depth) work per 5 ms tick is
    # noise next to capture/decode.
    assert overhead <= 1.25
