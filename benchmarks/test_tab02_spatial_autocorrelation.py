"""Bench: Table 2 — spatial autocorrelation of power-on states."""

from repro.experiments import tab02_spatial


def test_tab02_spatial_autocorrelation(benchmark, save_report):
    result = benchmark.pedantic(tab02_spatial.run, rounds=1, iterations=1)
    save_report("tab02_spatial_autocorrelation", result)

    for condition, sram, stat, p_value in result.rows:
        # All measurements are near zero: spatially random patterns
        # (paper Table 2 reports 0.004-0.011).
        assert abs(stat) < 0.03, (condition, sram, stat)
    stressed = [row for row in result.rows if row[0].startswith("Stressed")]
    assert len(stressed) == 2
    # Errors after single-value stress stay spatially random.
    for condition, _, stat, _ in stressed:
        assert abs(stat) < 0.02, condition
