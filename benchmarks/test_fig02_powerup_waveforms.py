"""Bench: Figure 2 — 6T power-up waveforms pre/post aging."""

from repro.experiments import fig02_waveforms


def test_fig02_powerup_waveforms(benchmark, save_report):
    data = benchmark.pedantic(fig02_waveforms.run, rounds=1, iterations=1)
    save_report("fig02_powerup_waveforms", data.result)

    # Fresh cell powers on to 1 (M4 wins the race); aged cell flips to 0.
    assert data.fresh.power_on_state == 1
    assert data.aged.power_on_state == 0
    assert data.fresh.resolved and data.aged.resolved
    # Nodes settle within the paper's ~2 ns scale.
    assert data.fresh.settle_time_s < 5e-9
    # The full waveforms (the plotted series) are available.
    assert len(data.fresh.waveform_rows()) > 1000
