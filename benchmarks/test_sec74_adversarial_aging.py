"""Bench: §7.4 — adversarial aging and the receiver's restore."""

from repro.experiments import sec74_adversarial


def test_sec74_adversarial_aging(benchmark, save_report):
    result = benchmark.pedantic(sec74_adversarial.run, rounds=1, iterations=1)
    save_report("sec74_adversarial_aging", result)

    rows = {row[0]: row for row in result.rows}
    attack_factor = rows["after adversarial aging"][2]
    restore_factor = rows["after receiver restore"][2]

    # Paper: one hour of power-on-state aging costs ~1.12x error...
    assert 1.03 < attack_factor < 1.35
    # ...and re-encoding brings it back to ~1x (paper: 0.98x).
    assert 0.85 < restore_factor < 1.08
    assert restore_factor < attack_factor
