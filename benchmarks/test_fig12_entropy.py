"""Bench: Figure 12 — symbol entropy of power-on states."""

from repro.experiments import fig12_entropy


def test_fig12_entropy(benchmark, save_report):
    data = benchmark.pedantic(fig12_entropy.run, rounds=1, iterations=1)
    save_report("fig12_entropy", data.result)

    rows = {row[0]: row for row in data.result.rows}
    clean = rows["no hidden message"][1]
    plain = rows["hidden message (plain-text)"][1]
    encrypted = rows["hidden message (encrypted)"][1]

    # Paper's numbers: 0.0312 clean/encrypted, 0.0195 plain-text.
    assert abs(clean - 0.0312) < 0.001
    assert plain < 0.025
    assert abs(encrypted - clean) < 0.0005
    # Per-symbol contribution series exported (the actual Figure 12 curve).
    assert all(arr.shape == (256,) for arr in data.per_symbol.values())
