"""Benchmark-harness fixtures and the bench-history plugin.

Every bench regenerates one of the paper's tables or figures through
:mod:`repro.experiments`, checks its paper-shape invariants, and writes the
rendered table to ``benchmarks/out/<id>.txt`` so EXPERIMENTS.md's measured
numbers are auditable from a single run of::

    pytest benchmarks/ --benchmark-only

On a fully green session the plugin also persists a machine-readable
record of the run (see :mod:`repro.bench`):

- every passed test's call-phase wall time becomes a ``wall_<test>``
  metric (``better="lower"``);
- tests may publish derived numbers (speedups, overhead ratios) through
  the ``record_metric`` fixture with an explicit good direction;
- the snapshot is appended to ``BENCH_history.jsonl`` (a growing local
  log, gitignored) and written to ``BENCH_substrate.json`` at the repo
  root — the committed baseline ``repro bench compare`` gates against.
"""

from __future__ import annotations

import pathlib

import pytest

ROOT = pathlib.Path(__file__).parent.parent
OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Metrics published by tests via ``record_metric`` this session.
_RECORDED: dict = {}
#: Wall times harvested from passed call-phase reports this session.
_DURATIONS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _out_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(autouse=True)
def _global_metrics_isolated():
    """Zero the global metrics registry around every bench.

    Service benches enable the global registry for their soaks (the
    fleet kernel bumps ``repro_capture_cells_total`` and friends while
    it is on), which leaks accumulated values into later benches that
    assert a cold registry — the disabled-fast-path bench in particular.
    Value reset keeps the suite order-independent; enabled-state is
    restored so a bench can never leave the registry on for the next.
    """
    from repro import metrics

    was_enabled = metrics.registry.enabled
    metrics.registry.reset_values()
    yield
    if was_enabled:
        metrics.registry.enable()
    else:
        metrics.disable()
    metrics.registry.reset_values()


@pytest.fixture
def frozen_heap():
    """Exclude the session's accumulated heap from GC for one bench.

    Late in a full bench session the live heap is huge (cached arrays,
    experiment results, earlier soaks), so every collection an
    allocation-heavy soak triggers sweeps that whole heap — wall times
    then depend on suite position, not on the code under test (measured
    as a ~25% slowdown on the 10k service soak).  ``gc.freeze()`` moves
    the pre-existing objects to the permanent generation: the bench
    still pays for its *own* garbage, but not for the session's.
    """
    import gc

    gc.collect()
    gc.freeze()
    yield
    gc.unfreeze()


@pytest.fixture
def save_report():
    """Persist an ExperimentResult (or raw text) under benchmarks/out/."""

    def _save(name: str, result) -> None:
        text = result if isinstance(result, str) else result.to_text()
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save


@pytest.fixture
def record_metric():
    """Publish a named number into this run's bench-history snapshot.

    ``better`` declares the metric's good direction ("lower" for times,
    "higher" for speedups/throughput) so the regression gate knows which
    way is bad.
    """

    def _record(
        name: str, value: float, *, better: str = "lower", unit: str = ""
    ) -> None:
        _RECORDED[name] = {
            "value": float(value),
            "better": better,
            "unit": unit,
        }

    return _record


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        test_name = report.nodeid.split("::")[-1]
        _DURATIONS[f"wall_{test_name}"] = {
            "value": float(report.duration),
            "better": "lower",
            "unit": "s",
        }


def pytest_sessionfinish(session, exitstatus):
    # Only a fully green session is a trustworthy baseline; partial or
    # red runs must never overwrite the substrate snapshot.
    if exitstatus != 0 or not (_RECORDED or _DURATIONS):
        return
    from repro import bench

    snapshot = bench.make_snapshot({**_DURATIONS, **_RECORDED})
    bench.append_history(snapshot, ROOT / "BENCH_history.jsonl")
    bench.write_snapshot(snapshot, ROOT / "BENCH_substrate.json")
    tw = getattr(session.config, "_tw", None)
    message = (
        f"bench history: {len(_DURATIONS) + len(_RECORDED)} metric(s) -> "
        f"BENCH_substrate.json (sha {snapshot.get('git_sha') or '?'})"
    )
    if tw is not None:  # pragma: no cover - cosmetic
        tw.line(message)
    else:
        print(message)
