"""Benchmark-harness fixtures.

Every bench regenerates one of the paper's tables or figures through
:mod:`repro.experiments`, checks its paper-shape invariants, and writes the
rendered table to ``benchmarks/out/<id>.txt`` so EXPERIMENTS.md's measured
numbers are auditable from a single run of::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session", autouse=True)
def _out_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_report():
    """Persist an ExperimentResult (or raw text) under benchmarks/out/."""

    def _save(name: str, result) -> None:
        text = result if isinstance(result, str) else result.to_text()
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save
