"""Ablation bench: stream vs block cipher under channel errors (§4.1)."""

from repro.experiments import ablations


def test_ablation_cipher_mode(benchmark, save_report):
    result = benchmark.pedantic(
        ablations.run_cipher_mode, rounds=1, iterations=1
    )
    save_report("ablation_cipher_mode", result)

    rows = {row[0].split()[0]: row for row in result.rows}
    channel = rows["AES-CTR"][1]
    ctr_error = rows["AES-CTR"][2]
    cbc_error = rows["AES-CBC"][2]

    # CTR is error-neutral: message error ~ channel error (0.8%).
    assert abs(ctr_error - channel) < 0.003
    # CBC amplifies it by more than an order of magnitude toward 50%
    # (paper: "0.8% ... into an error rate of 50%").
    assert cbc_error > 25 * channel
    assert cbc_error > 0.2
