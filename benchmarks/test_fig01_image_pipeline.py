"""Bench: Figure 1 — the image-encoding showcase."""

from repro.experiments import fig01_image


def test_fig01_image_pipeline(benchmark, save_report):
    panels = benchmark.pedantic(fig01_image.run, rounds=1, iterations=1)
    save_report("fig01_image_pipeline", panels.result)

    # Also save the five panels as ASCII art — the visual Figure 1.
    from repro.bitutils import invert_bits
    from repro.core.payloads import render_bitmap

    art = []
    for title, bits in (
        ("(a) fresh power-on state", panels.fresh_state),
        ("(b) the secret image", panels.secret_image),
        ("(c) power-on state after raw encode (inverted)",
         invert_bits(panels.encoded_state_raw)),
        ("(d) image recovered through ECC", panels.recovered_image),
        ("(e) power-on state after encrypted encode",
         panels.encoded_state_encrypted),
    ):
        art.append(f"--- {title} ---")
        art.append(render_bitmap(bits, panels.width))
    save_report("fig01_panels_ascii", "\n".join(art))

    rows = {row[0]: row for row in panels.result.rows}
    # (c): the raw image is visibly recovered (error near the channel's 6.5%)
    assert rows["(c) raw image encoded"][1] < 0.12
    # ...but detectable by the adversary
    assert rows["(c) raw image encoded"][2] is True
    # (d): ECC recovers the image perfectly
    assert rows["(d) recovered via ECC"][1] == 0.0
    # (e): the encrypted encode is invisible
    assert rows["(e) encrypted encoded"][2] is False
    # and the fresh device is also clean (no false positive)
    assert rows["(a) fresh power-on"][2] is False
