"""Bench: Figure 7 — natural recovery over 14 weeks."""

from repro.experiments import fig07_recovery


def test_fig07_natural_recovery(benchmark, save_report):
    result = benchmark.pedantic(fig07_recovery.run, rounds=1, iterations=1)
    save_report("fig07_natural_recovery", result)

    from repro.experiments.asciichart import ascii_chart

    save_report(
        "fig07_chart",
        ascii_chart(
            result.column("week"),
            {
                "normalized error": result.column("normalized_error"),
                "recovery rate %": result.column("recovery_rate_pct"),
            },
            title="Figure 7: recovery over 14 shelved weeks",
            x_label="weeks", y_label="x baseline / % per week",
        ),
    )

    weeks = result.column("week")
    normalized = result.column("normalized_error")
    errors = result.column("error")
    rates = result.column("recovery_rate_pct")

    # Error grows monotonically (within one vote of noise).
    assert normalized[-1] > normalized[4] > normalized[0]
    # Paper: ~1.6x after one month, still within 10%...
    month = normalized[weeks.index(4)]
    assert 1.4 < month < 1.9
    assert errors[weeks.index(4)] < 0.12
    # ...about 2x at 14 weeks.
    assert 1.7 < normalized[-1] < 2.3
    # Recovery rate decays: early weeks recover faster than late weeks.
    assert rates[1] > max(rates[-3:])
