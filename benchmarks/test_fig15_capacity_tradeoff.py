"""Bench: Figure 15 — capacity/error trade-off per device class."""

from collections import defaultdict

from repro.experiments import fig15_tradeoff


def test_fig15_capacity_tradeoff(benchmark, save_report):
    result = benchmark.pedantic(fig15_tradeoff.run, rounds=1, iterations=1)
    save_report("fig15_capacity_tradeoff", result)

    curves = defaultdict(dict)
    for device, copies, capacity, error in result.rows:
        curves[device][copies] = (capacity, error)

    from repro.experiments.asciichart import ascii_chart

    copies_axis = sorted(next(iter(curves.values())))
    save_report(
        "fig15_chart",
        ascii_chart(
            [curves["MSP432P401"][c][0] for c in copies_axis],
            {
                device: [curves[device][c][1] for c in copies_axis]
                for device in sorted(curves)
            },
            title="Figure 15: error (%) vs capacity (%) per device",
            x_label="capacity %", y_label="error %",
        ),
    )

    assert set(curves) == {
        "ATSAML11E16A", "MSP432P401", "LPC55S69JBD100", "BCM2837",
    }
    # At every copy count the paper's device ordering holds: the
    # lowest-channel-error device has the lowest residual error.
    for copies in (1, 5, 9, 17):
        errors = {d: curves[d][copies][1] for d in curves}
        assert (
            errors["ATSAML11E16A"]
            < errors["MSP432P401"]
            < errors["LPC55S69JBD100"]
            < errors["BCM2837"]
        )
    # Within a device, error falls as capacity is spent on copies.
    for device, curve in curves.items():
        errs = [curve[c][1] for c in sorted(curve)]
        assert errs == sorted(errs, reverse=True), device
