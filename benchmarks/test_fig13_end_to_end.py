"""Bench: Figure 13 — the end-to-end steganography system."""

from repro.experiments import fig13_end_to_end


def test_fig13_end_to_end(benchmark, save_report):
    result = benchmark.pedantic(fig13_end_to_end.run, rounds=1, iterations=1)
    save_report("fig13_end_to_end", result)

    rows = dict(result.rows)
    # Raw channel around the Table 4 bit rate...
    assert 0.04 < rows["raw channel error"] < 0.10
    # ...and the message comes back exactly through key + ECC.
    assert rows["message recovered exactly"] is True
    assert rows["stress hours"] == 10.0
