"""Bench: Figure 3 — software-directed and accelerated aging."""

from repro.experiments import fig03_directed_aging


def test_fig03_directed_aging(benchmark, save_report):
    data = benchmark.pedantic(fig03_directed_aging.run, rounds=1, iterations=1)
    save_report("fig03_abc_directed_aging", data.result_abc)
    save_report("fig03_d_accelerated_aging", data.result_d)

    from collections import defaultdict

    from repro.experiments.asciichart import ascii_chart

    corners = defaultdict(dict)
    for vdd, temp, hrs, ones in data.result_d.rows:
        corners[(vdd, temp)][hrs] = ones
    hours_axis = sorted(next(iter(corners.values())))
    save_report(
        "fig03d_chart",
        ascii_chart(
            hours_axis,
            {
                f"{v}V/{t:.0f}C": [corners[(v, t)][h] for h in hours_axis]
                for (v, t) in sorted(corners)
            },
            title="Figure 3d: %1s vs stress time per (V, T) corner",
            x_label="stress hours", y_label="% of 1s",
        ),
    )

    by_panel = {row[0]: row for row in data.result_abc.rows}
    fresh_to1 = by_panel["(a) unaged"][1]
    # (b) stress holding 0 grows the 1-biased population...
    assert by_panel["(b) aged holding 0"][1] > fresh_to1 + 0.15
    # ...(c) stress holding 1 grows the 0-biased population.
    assert by_panel["(c) aged holding 1"][2] > by_panel["(a) unaged"][2] + 0.15

    # (d): final %1s per corner after 4 h, ordered by acceleration.
    final = {
        (row[0], row[1]): row[3]
        for row in data.result_d.rows
        if row[2] == 4.0
    }
    nominal = final[(1.2, 25.0)]
    hot = final[(1.2, 85.0)]
    high_v = final[(3.3, 25.0)]
    both = final[(3.3, 85.0)]
    # All-1s stress pushes %1s DOWN; voltage is the bigger knob (Fig 3d).
    assert both < high_v < hot < nominal
    assert nominal > 49.5  # nominal conditions barely move
    assert both < 30.0  # the accelerated corner moves a lot
