"""Bench: Table 1 — the device population with verified feasibility."""

from repro.experiments import tab01_devices


def test_tab01_devices(benchmark, save_report):
    result = benchmark.pedantic(tab01_devices.run, rounds=1, iterations=1)
    save_report("tab01_devices", result)

    assert len(result.rows) == 12  # all of the paper's Table 1
    for row in result.rows:
        name, core, sram, flash, access, aging, mfr = row
        # Both feasibility checkmarks hold for every device, as in Table 1.
        assert access is True, name
        assert aging is True, name
    names = result.column("device")
    assert names[0] == "MSP430G2553" and names[-1] == "BCM2837"
    # The cache-based device reports zero on-chip Flash, as in the paper.
    by_name = {row[0]: row for row in result.rows}
    assert by_name["BCM2837"][3] == 0
