"""Bench: Figure 14 — the multiple-snapshot adversary."""

from repro.experiments import fig14_multisnapshot


def test_fig14_multisnapshot(benchmark, save_report):
    data = benchmark.pedantic(fig14_multisnapshot.run, rounds=1, iterations=1)
    save_report("fig14_multisnapshot", data.result)

    rows = {row[0]: row for row in data.result.rows}
    # Every snapshot's weight distribution centres near 64 and stays
    # spatially random — encoding is invisible at every point in time.
    for label, (name, weight, stat, flips) in rows.items():
        assert abs(weight - 64.0) < 2.0, label
        assert abs(stat) < 0.03, label
    # Post-encode snapshot-to-snapshot flips are measurement-noise sized
    # (m1 vs m2 back-to-back, and across 1 h / 1 day / 1 week recovery).
    for label in ("encoded (m2)", "one hour recovery", "one day recovery",
                  "one week recovery"):
        assert rows[label][3] < 0.05, label
    # The week-long drift stays the same order as back-to-back noise.
    assert rows["one week recovery"][3] < 12 * max(rows["encoded (m2)"][3], 1e-3)
