"""Bench: Table 4 — per-device encoding summary."""

from repro.experiments import tab04_devices


def test_tab04_devices(benchmark, save_report):
    result = benchmark.pedantic(tab04_devices.run, rounds=1, iterations=1)
    save_report("tab04_devices", result)

    for device, _, _, temp, measured, paper, hours in result.rows:
        # Measured bit rate within 2 points of the paper's (Table 4).
        assert abs(measured - paper) < 2.0, device
        assert temp == 85.0
        assert hours > 0

    by_name = {row[0]: row for row in result.rows}
    # Paper's ordering: SAML11 best, BCM2837 (cache, lowest overdrive) worst.
    assert by_name["ATSAML11E16A"][4] > by_name["MSP432P401"][4]
    assert by_name["MSP432P401"][4] > by_name["LPC55S69JBD100"][4]
    assert by_name["LPC55S69JBD100"][4] > by_name["BCM2837"][4]
    # Abstract: "over 90% capacity" on the main-memory MCU class.
    assert by_name["MSP432P401"][4] > 90.0
