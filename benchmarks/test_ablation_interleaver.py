"""Ablation bench: interleaving against bursty adversarial damage."""

from repro.experiments import ablations


def test_ablation_interleaver(benchmark, save_report):
    result = benchmark.pedantic(
        ablations.run_interleaver, rounds=1, iterations=1
    )
    save_report("ablation_interleaver", result)

    rows = {row[0]: row for row in result.rows}
    bare = rows["Hamming(7,4) alone"][2]
    stacked = rows["Hamming(7,4) + interleaver"][2]

    # A burst overwhelms bare Hamming blocks but is fully spread (one error
    # per codeword) by the interleaver.
    assert bare > 0.0
    assert stacked == 0.0
