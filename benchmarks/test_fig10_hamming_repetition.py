"""Bench: Figure 10 — repetition + Hamming(7,4) vs theory."""

from repro.experiments import fig10_hamming


def test_fig10_hamming_repetition(benchmark, save_report):
    result = benchmark.pedantic(fig10_hamming.run, rounds=1, iterations=1)
    save_report("fig10_hamming_repetition", result)

    copies = result.column("copies")
    theory = result.column("theoretical_pct")
    repetition = result.column("repetition_pct")
    combined = result.column("rep_hamming_pct")

    from repro.experiments.asciichart import ascii_chart

    save_report(
        "fig10_chart",
        ascii_chart(
            copies,
            {
                "theoretical": theory,
                "repetition": repetition,
                "rep+hamming": combined,
            },
            title="Figure 10: residual error (%) vs copies",
            x_label="copies", y_label="error %",
        ),
    )

    # The measured repetition curve follows the Equation-1 prediction.
    for t, r in zip(theory, repetition):
        assert abs(t - r) < max(1.5, 0.5 * t)
    # Paper: repetition alone hits zero by ~13 copies at the 6.5% channel.
    assert repetition[copies.index(13)] < 0.05
    # The combination reaches (near) zero with far fewer copies.
    assert combined[copies.index(5)] < 0.05
    for c, r in zip(combined, repetition):
        assert c <= r + 1e-9
