"""Ablation bench: number of majority-voted power-on captures (§4.3)."""

from repro.experiments import ablations


def test_ablation_capture_votes(benchmark, save_report):
    result = benchmark.pedantic(
        ablations.run_capture_votes, rounds=1, iterations=1
    )
    save_report("ablation_capture_votes", result)

    errors = dict(result.rows)
    # The error floor is set by manufacturing mismatch, not capture noise:
    # even one capture is within half a point of five (the paper's choice
    # of five is cheap insurance, not a big knob).
    assert abs(errors[1] - errors[5]) < 0.005
    # And nine captures buy nothing beyond five.
    assert abs(errors[9] - errors[5]) < 0.002
