"""Bench: §7.2 — aging complex (regulated) systems."""

from repro.experiments import sec72_complex_systems


def test_sec72_complex_systems(benchmark, save_report):
    result = benchmark.pedantic(
        sec72_complex_systems.run, rounds=1, iterations=1
    )
    save_report("sec72_complex_systems", result)

    rows = {row[0]: row for row in result.rows}
    intact = rows["regulator intact, rail at 5.5 V"]
    bypassed = rows["inductor-pin bypass, core at 2.2 V"]
    control = rows["bypassed, nominal 1.2 V (control)"]

    # The intact regulator clamps the core at its 1.2 V output...
    assert intact[1] == 1.2
    # ...so even a full 120 h recipe encodes nearly nothing.
    assert intact[2] > 0.42
    # The bypass lets the elevated rail reach the cells...
    assert bypassed[1] == 2.2
    # ...and the full recipe lands at Table 4's ~20.8% error.
    assert bypassed[2] < 0.25
    # Nominal conditions are the no-op control either way.
    assert control[2] > 0.42
