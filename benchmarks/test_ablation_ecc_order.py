"""Ablation bench: ECC composition order (paper footnote 7)."""

from repro.experiments import ablations


def test_ablation_ecc_order(benchmark, save_report):
    result = benchmark.pedantic(ablations.run_ecc_order, rounds=1, iterations=1)
    save_report("ablation_ecc_order", result)

    rows = {row[0]: row for row in result.rows}
    forward = rows["Hamming then repetition"]
    reverse = rows["repetition then Hamming"]

    # Same rate either way.
    assert abs(forward[1] - reverse[1]) < 1e-12
    # Footnote 7: "the order of ECCs does not significantly affect the
    # overall error rate" — both residuals are small and close.
    assert forward[2] < 0.01
    assert reverse[2] < 0.01
    assert abs(forward[2] - reverse[2]) < 0.005
