"""Performance microbenchmarks of the substrate hot paths.

Unlike the experiment benches (one-shot regenerations), these run multiple
rounds to give honest throughput numbers for the operations every
experiment leans on: power-on sampling of a full-size 64 KiB array, bulk
AES-CTR keystream generation, Hamming decode, and Moran's I over a full
die grid.
"""

import numpy as np
import pytest

from repro.crypto import AesCtr
from repro.device.catalog import device_spec
from repro.ecc import hamming_7_4
from repro.sram import SRAMArray
from repro.stats import morans_i


@pytest.fixture(scope="module")
def full_size_array():
    """A full 64 KiB MSP432 SRAM (524,288 cells)."""
    tech = device_spec("MSP432P401").technology
    return SRAMArray.from_kib(64, tech, rng=0)


def test_perf_power_cycle_64kib(benchmark, full_size_array):
    """Sampling one power-on state of a full-size array."""
    result = benchmark(full_size_array.power_cycle)
    assert result.size == 64 * 1024 * 8


def test_perf_stress_step_64kib(benchmark, full_size_array):
    """One aging step over a full-size array (the encode inner loop)."""
    arr = full_size_array
    if not arr.powered:
        arr.apply_power()

    def step():
        arr.hold(60.0)

    benchmark(step)


def test_perf_aes_ctr_keystream(benchmark):
    """64 KiB of AES-CTR keystream (one full SRAM image's envelope)."""
    ctr = AesCtr(b"0123456789abcdef", b"perf-nonce12")
    out = benchmark(ctr.keystream, 64 * 1024)
    assert out.size == 64 * 1024


def test_perf_hamming_decode(benchmark):
    """Hamming(7,4) decode of a 64 KiB-equivalent coded stream."""
    code = hamming_7_4()
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2, 4 * 10_000).astype(np.uint8)
    coded = code.encode(data)
    noisy = coded ^ (rng.random(coded.size) < 0.01).astype(np.uint8)
    decoded = benchmark(code.decode, noisy)
    assert decoded.size == data.size


def test_perf_morans_i_full_grid(benchmark):
    """Moran's I over a full 64 KiB die grid (2048 x 256)."""
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, (2048, 256)).astype(np.float64)
    result = benchmark(morans_i, bits)
    assert abs(result.statistic) < 0.02
