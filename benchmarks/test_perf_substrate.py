"""Performance microbenchmarks of the substrate hot paths.

Unlike the experiment benches (one-shot regenerations), these run multiple
rounds to give honest throughput numbers for the operations every
experiment leans on: power-on sampling of a full-size 64 KiB array, bulk
AES-CTR keystream generation, Hamming decode, and Moran's I over a full
die grid.
"""

import time

import numpy as np
import pytest

from repro.crypto import AesCtr
from repro.device.catalog import device_spec
from repro.device import make_device
from repro.ecc import hamming_7_4
from repro.harness.rack import EncodingRack
from repro.sram import SRAMArray
from repro.stats import morans_i
from repro.units import hours


@pytest.fixture(scope="module")
def full_size_array():
    """A full 64 KiB MSP432 SRAM (524,288 cells)."""
    tech = device_spec("MSP432P401").technology
    return SRAMArray.from_kib(64, tech, rng=0)


def _aged_full_array(seed):
    """A deterministically stress-encoded 64 KiB array (the receiver's
    workload: captures happen on arrays that carry a message)."""
    tech = device_spec("MSP432P401").technology
    arr = SRAMArray.from_kib(64, tech, rng=seed)
    arr.apply_power()
    payload = np.random.default_rng(99).integers(0, 2, arr.n_bits)
    arr.write(payload.astype(np.uint8))
    arr.set_voltage(3.0)
    arr.hold(hours(10))
    arr.remove_power()
    return arr


def _seed_loop_capture(arr, n_captures, off_seconds=1.0):
    """The pre-batching capture loop, kept as the speedup baseline: every
    capture rebuilds both dvth arrays, the full offset vector, and a
    full-width noise vector."""
    nbti = arr._nbti
    out = np.empty((n_captures, arr.n_bits), dtype=np.uint8)
    for i in range(n_captures):
        if arr.powered:
            arr.remove_power(drain=True)
        nbti.relax(arr.age_when_1, off_seconds)
        nbti.relax(arr.age_when_0, off_seconds)
        offsets = (
            arr.mismatch
            + nbti.dvth(arr.age_when_0)
            - nbti.dvth(arr.age_when_1)
        )
        sigma = arr._hci.noise_widening(arr.toggle_count, arr.technology.noise_sigma)
        sigma *= float(np.sqrt(arr.temp_k / arr.technology.temp_nominal_k))
        state = (offsets + sigma * arr._rng.standard_normal(arr.n_bits) > 0.0)
        out[i] = state
        arr.powered = True
        arr.vdd = arr.technology.vdd_nominal
        arr._data = out[i]
    arr._data = out[-1].copy()
    return out


def test_perf_power_cycle_64kib(benchmark, full_size_array):
    """Sampling one power-on state of a full-size array."""
    result = benchmark(full_size_array.power_cycle)
    assert result.size == 64 * 1024 * 8


def test_perf_stress_step_64kib(benchmark, full_size_array):
    """One aging step over a full-size array (the encode inner loop)."""
    arr = full_size_array
    if not arr.powered:
        arr.apply_power()

    def step():
        arr.hold(60.0)

    benchmark(step)


def test_perf_aes_ctr_keystream(benchmark):
    """64 KiB of AES-CTR keystream (one full SRAM image's envelope)."""
    ctr = AesCtr(b"0123456789abcdef", b"perf-nonce12")
    out = benchmark(ctr.keystream, 64 * 1024)
    assert out.size == 64 * 1024


def test_perf_hamming_decode(benchmark):
    """Hamming(7,4) decode of a 64 KiB-equivalent coded stream."""
    code = hamming_7_4()
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2, 4 * 10_000).astype(np.uint8)
    coded = code.encode(data)
    noisy = coded ^ (rng.random(coded.size) < 0.01).astype(np.uint8)
    decoded = benchmark(code.decode, noisy)
    assert decoded.size == data.size


def test_perf_batch_capture_64kib(benchmark):
    """Five-capture batched power-on sampling of an encoded 64 KiB array
    (the §4.3 receiver inner loop)."""
    arr = _aged_full_array(seed=0)
    samples = benchmark(arr.capture_power_on_states, 5)
    assert samples.shape == (5, arr.n_bits)


def test_perf_batch_capture_speedup_vs_seed_loop(record_metric):
    """The batch engine must beat the pre-batching loop by >= 5x on the
    5-capture 64 KiB workload while decoding to the same result.

    The two algorithms consume the noise stream differently (full-width
    versus band-only draws), so agreement here is statistical; the
    *bit-exact* batch-vs-loop guarantee for the production engine is
    tests/sram/test_capture_batch.py.
    """
    from repro.bitutils import bit_error_rate, invert_bits, majority_vote

    arr_loop = _aged_full_array(seed=0)
    arr_batch = _aged_full_array(seed=0)
    payload = np.random.default_rng(99).integers(0, 2, arr_loop.n_bits)

    # Same channel error on identical twins (also the warm-up pass).
    vote_loop = majority_vote(_seed_loop_capture(arr_loop, 5))
    vote_batch = majority_vote(arr_batch.capture_power_on_states(5))
    err_loop = bit_error_rate(payload, invert_bits(vote_loop))
    err_batch = bit_error_rate(payload, invert_bits(vote_batch))
    assert err_batch == pytest.approx(err_loop, abs=0.002)

    def best_of(fn, reps=5):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_loop = best_of(lambda: _seed_loop_capture(arr_loop, 5))
    t_batch = best_of(lambda: arr_batch.capture_power_on_states(5))
    speedup = t_loop / t_batch
    print(f"\nbatch capture speedup: {speedup:.1f}x "
          f"({t_loop * 1e3:.1f} ms -> {t_batch * 1e3:.1f} ms)")
    record_metric("batch_capture_speedup", speedup, better="higher", unit="x")
    record_metric("batch_capture_ms", t_batch * 1e3, unit="ms")
    assert speedup >= 5.0


def test_perf_telemetry_disabled_overhead(record_metric):
    """Collecting spans (forced, no sink) must stay within 1.25x of the
    fully-disabled null-span path on the receiver hot path.

    The disabled path itself is guarded against regression by
    ``test_perf_batch_capture_speedup_vs_seed_loop``: the >= 5x gate is
    measured against an *uninstrumented* replica of the pre-batching
    algorithm, so any always-on telemetry cost would erode that margin
    (docs/telemetry.md, overhead contract: < 5% disabled-mode).
    """
    from repro import telemetry

    if telemetry.enabled():  # REPRO_TRACE runs measure the enabled path
        pytest.skip("a sink is attached (REPRO_TRACE): no disabled path")
    arr = _aged_full_array(seed=3)
    arr.capture_power_on_states(5)  # warm the caches

    def best_of(fn, reps=9):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_off = best_of(lambda: arr.capture_power_on_states(5))

    with telemetry.trace("bench", force=True):
        t_collecting = best_of(lambda: arr.capture_power_on_states(5))

    ratio = t_collecting / t_off
    print(f"\ntelemetry collecting/disabled ratio: {ratio:.3f} "
          f"({t_off * 1e3:.2f} ms -> {t_collecting * 1e3:.2f} ms)")
    record_metric("telemetry_collecting_ratio", ratio, unit="x")
    # Span collection is burst-granular: a handful of dict ops per
    # 524,288-cell burst.
    assert ratio < 1.25


def test_perf_telemetry_enabled_overhead(record_metric):
    """With a live RingBufferSink the capture hot path must stay within
    1.25x of the disabled path (record volume is burst-granular, never
    per cell or per capture)."""
    from repro import telemetry
    from repro.telemetry import RingBufferSink

    arr = _aged_full_array(seed=4)
    arr.capture_power_on_states(5)  # warm-up

    def best_of(fn, reps=9):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_disabled = best_of(lambda: arr.capture_power_on_states(5))

    sink = RingBufferSink()
    telemetry.add_sink(sink)
    try:
        t_enabled = best_of(lambda: arr.capture_power_on_states(5))
    finally:
        telemetry.remove_sink(sink)

    assert len(sink) > 0  # it really recorded
    spans = sink.records(type="span", name="sram.capture")
    assert spans and spans[-1]["counters"]["sram.captures"] == 5

    ratio = t_enabled / t_disabled
    print(f"\ntelemetry enabled/disabled ratio: {ratio:.3f} "
          f"({t_disabled * 1e3:.2f} ms -> {t_enabled * 1e3:.2f} ms)")
    record_metric("telemetry_enabled_ratio", ratio, unit="x")
    assert ratio < 1.25


def test_perf_metrics_disabled_fast_path(record_metric):
    """A disabled instrument update must be a per-call triviality.

    The capture hot paths call module-level counters unconditionally;
    while the registry is disabled (the default) each call is one method
    dispatch plus one attribute test.  Gate the per-call cost at an
    absolute 2 microseconds (CPython does this in ~0.1-0.2 us; the
    generous bound absorbs CI noise), mirroring the telemetry null-span
    contract.
    """
    from repro import metrics
    from repro.sram.array import _CAPTURE_CELLS_TOTAL

    assert not metrics.enabled()
    n = 100_000

    def burst():
        inc = _CAPTURE_CELLS_TOTAL.inc
        for _ in range(n):
            inc(8)

    def best_of(fn, reps=5):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    per_call_us = best_of(burst) / n * 1e6
    print(f"\ndisabled metrics inc: {per_call_us:.3f} us/call")
    record_metric("metrics_disabled_inc_us", per_call_us, unit="us")
    # No series may have recorded anything while disabled.
    assert _CAPTURE_CELLS_TOTAL.series()[()].value == 0.0
    assert per_call_us < 2.0


def test_perf_metrics_enabled_overhead(record_metric):
    """With the metrics registry recording, the capture hot path must
    stay within 1.25x of the disabled path (instrument updates are
    burst-granular: one counter bump per 5-capture, 524,288-cell burst).
    """
    from repro import metrics

    arr = _aged_full_array(seed=5)
    arr.capture_power_on_states(5)  # warm the caches

    def best_of(fn, reps=9):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_disabled = best_of(lambda: arr.capture_power_on_states(5))

    metrics.enable()
    try:
        t_enabled = best_of(lambda: arr.capture_power_on_states(5))
        cells = metrics.registry.get("repro_capture_cells_total")
        assert cells.series()[()].value > 0  # it really recorded
    finally:
        metrics.disable()
        metrics.registry.reset_values()

    ratio = t_enabled / t_disabled
    print(f"\nmetrics enabled/disabled ratio: {ratio:.3f} "
          f"({t_disabled * 1e3:.2f} ms -> {t_enabled * 1e3:.2f} ms)")
    record_metric("metrics_enabled_ratio", ratio, unit="x")
    assert ratio < 1.25


def test_perf_rack_measure_throughput(benchmark):
    """Tray-wide channel measurement: 4 boards x 5 captures each."""
    devices = [make_device("MSP432P401", rng=80 + i, sram_kib=4) for i in range(4)]
    rack = EncodingRack(devices)
    rng = np.random.default_rng(5)
    payloads = [
        rng.integers(0, 2, board.device.sram.n_bits).astype(np.uint8)
        for board in rack.boards
    ]
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=10.0)
    errors = benchmark(rack.measure_errors, payloads)
    assert len(errors) == 4


def _encoded_tray(n_devices=8, sram_kib=64, stress_hours=10.0):
    """A staged-and-stressed tray of full-size devices plus its payloads."""
    devices = [
        make_device("MSP432P401", rng=90 + i, sram_kib=sram_kib)
        for i in range(n_devices)
    ]
    rack = EncodingRack(devices)
    rng = np.random.default_rng(7)
    payloads = [
        rng.integers(0, 2, board.device.sram.n_bits).astype(np.uint8)
        for board in rack.boards
    ]
    rack.stage_payloads(payloads)
    rack.stress_all(stress_hours=stress_hours)
    return rack, payloads


def test_perf_fleet_capture_speedup(record_metric):
    """The fleet kernel must beat the naive per-device capture loop by
    >= 10x on the 8-device x 64 KiB x 5-capture tray measurement.

    The baseline is the per-device equivalent of the pre-batching loop
    (``_seed_loop_capture`` applied slot by slot, plus majority vote and
    channel error) — the same convention ``batch_capture_speedup`` uses
    for a single array.  The two consume noise differently (full-width
    versus band-only draws), so agreement is statistical; the bit-exact
    fleet-vs-loop guarantee is the ``fleet.capture_vs_device_loop``
    oracle and tests/core/test_fleetcapture.py.
    """
    from repro.bitutils import bit_error_rate, invert_bits, majority_vote

    rack_loop, payloads = _encoded_tray()
    rack_fleet, _ = _encoded_tray()

    def naive_tray_measure():
        errors = []
        for board, payload in zip(rack_loop.boards, payloads):
            stack = _seed_loop_capture(board.device.sram, 5)
            vote = majority_vote(stack)
            errors.append(bit_error_rate(payload, invert_bits(vote)))
        return errors

    # Same channel error on identical twins (also the warm-up pass).
    err_loop = naive_tray_measure()
    err_fleet = rack_fleet.measure_errors(payloads, n_captures=5)
    for a, b in zip(err_loop, err_fleet):
        assert b == pytest.approx(a, abs=0.002)

    def best_of(fn, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_loop = best_of(naive_tray_measure)
    t_fleet = best_of(
        lambda: rack_fleet.measure_errors(payloads, n_captures=5)
    )
    speedup = t_loop / t_fleet
    print(f"\nfleet capture speedup: {speedup:.1f}x "
          f"({t_loop * 1e3:.1f} ms -> {t_fleet * 1e3:.1f} ms)")
    record_metric("fleet_capture_speedup", speedup, better="higher", unit="x")
    record_metric("fleet_capture_ms", t_fleet * 1e3, unit="ms")
    assert speedup >= 10.0


def test_perf_morans_i_full_grid(benchmark):
    """Moran's I over a full 64 KiB die grid (2048 x 256)."""
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, (2048, 256)).astype(np.float64)
    result = benchmark(morans_i, bits)
    assert abs(result.statistic) < 0.02
